"""Benchmark E11 — Fig. 11: quality on the DBLP-like heterogeneous graph.

Regenerates the F1-vs-ε_H series of LinBP, LinBP* and SBP against BP on the
synthetic DBLP-like workload (see DESIGN.md for the data substitution).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import attach_table
from repro.datasets import generate_dblp_like
from repro.experiments import run_dblp_quality

EPSILONS = tuple(np.logspace(-5, -3, 4).tolist())


@pytest.fixture(scope="module")
def dblp_dataset():
    return generate_dblp_like(num_papers=800, num_authors=480, num_conferences=16,
                              num_terms=220, seed=0)


def test_fig11_dblp_quality(benchmark, dblp_dataset):
    table = benchmark.pedantic(run_dblp_quality,
                               kwargs={"dataset": dblp_dataset,
                                       "epsilons": EPSILONS},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        # Fig. 11b: LinBP/LinBP* track BP very closely; SBP stays high but
        # loses a few points to ties.
        assert row["linbp_f1"] > 0.9
        assert row["linbp_star_f1"] > 0.9
        assert row["sbp_f1"] > 0.85
        assert row["linbp_f1"] >= row["sbp_f1"] - 0.02
