"""Benchmark E2 — Fig. 6a: generation of the synthetic workload suite.

Times the Kronecker-graph generation plus explicit-belief sampling and prints
the regenerated Fig. 6a table (nodes, edges, labeled counts per graph).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import attach_table
from repro.experiments import run_dataset_table


def test_fig6_dataset_table(benchmark, bench_max_index):
    table = benchmark.pedantic(run_dataset_table,
                               kwargs={"max_index": bench_max_index},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    assert len(table) == bench_max_index
    # The paper's growth pattern: nodes triple, edges roughly quadruple.
    for previous, current in zip(table.rows, table.rows[1:]):
        assert current["nodes"] == 3 * previous["nodes"]
        assert current["edges"] > 2.5 * previous["edges"]
    # 5 % / 1 permille of the nodes carry (initial / update) explicit beliefs.
    for row in table.rows:
        assert row["explicit_5pct"] == pytest.approx(0.05 * row["nodes"], rel=0.1)
