"""Ablation benchmarks: echo-cancellation term, solver choice, wvRN baseline.

These accompany the paper's figures with the design-choice studies listed in
DESIGN.md: what the echo-cancellation term costs and buys, when the
closed-form solve beats the iteration, and what the coupling matrix adds over
a homophily-only relational learner.
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import (
    run_baseline_comparison,
    run_echo_cancellation_ablation,
    run_solver_ablation,
)


def test_ablation_echo_cancellation(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_echo_cancellation_ablation,
                               kwargs={"graph_index": graph_index},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        # Inside the convergence region both variants reproduce BP; the star
        # variant is never slower (it skips one dense multiply per iteration).
        assert row["linbp_f1_vs_bp"] > 0.99
        assert row["linbp_star_f1_vs_bp"] > 0.99


def test_ablation_solver_choice(benchmark, bench_max_index):
    max_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_solver_ablation,
                               kwargs={"max_index": max_index},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        assert row["max_belief_difference"] < 1e-9
    # The sparse iteration scales better than the Kronecker factorisation.
    assert table.rows[-1]["iterative_seconds"] < table.rows[-1]["closed_form_seconds"]


def test_ablation_wvrn_baseline(benchmark):
    table = benchmark.pedantic(run_baseline_comparison, kwargs={"num_nodes": 80},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    rows = {row["scenario"]: row for row in table.rows}
    assert rows["heterophily"]["linbp_accuracy"] > rows["heterophily"]["wvrn_accuracy"]
