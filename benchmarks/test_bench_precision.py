"""Benchmark — mixed-precision SpMM throughput (float32 vs float64).

The LinBP update (Eq. 6) is dominated by one sparse-matrix × dense-block
product per iteration, and that product is memory-bandwidth-bound: the
CSR adjacency and the stacked belief block stream through the cache
hierarchy once per sweep.  Halving the bytes (float32) should therefore
buy close to 2× throughput — this module measures exactly that on the
kernel the engine runs, :func:`repro.engine.kernels.spmm`, over a
width-32 stacked block (the shape a ten-query batch of a 3-class
problem actually feeds it).

Two benchmark records are kept in ``BENCH_precision.json``:

* ``test_precision_spmm_float64`` — the exact-arithmetic baseline;
* ``test_precision_spmm_float32`` — the certified fast path.  In full
  mode this test also *asserts* float32 ≥ 1.5× float64 (the claim that
  justifies the Lemma-8 certification machinery); in smoke mode
  (``REPRO_BENCH_SMOKE=1``) the workload is too small for bandwidth to
  dominate, so only the numerical-equivalence assertion runs.

Both dtypes must agree to float32 round-off at every size.
"""

from __future__ import annotations

import os
import time

import numpy as np
import scipy.sparse as sp

from benchmarks.conftest import attach_table
from repro.engine.kernels import spmm
from repro.experiments.runner import ResultTable

#: The CI bench-smoke job (scripts/bench_record.py --smoke) cannot gate
#: on bandwidth ratios: the smoke graph fits in cache and shared runners
#: time noisily.  Smoke mode asserts numerical equivalence only.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_NODES = 5_000 if SMOKE else 150_000
AVG_DEGREE = 15
#: Ten 3-class queries stacked — the block width the batched engine uses.
BLOCK_WIDTH = 32
ASSERTED_SPEEDUP = 1.5

_state = {}


def _workload():
    """One random CSR adjacency + stacked dense block, built once."""
    if not _state:
        rng = np.random.default_rng(11)
        nnz = NUM_NODES * AVG_DEGREE
        rows = rng.integers(0, NUM_NODES, nnz)
        cols = rng.integers(0, NUM_NODES, nnz)
        data = rng.uniform(0.5, 1.5, nnz)
        adjacency = sp.csr_matrix((data, (rows, cols)),
                                  shape=(NUM_NODES, NUM_NODES))
        adjacency.sum_duplicates()
        block = rng.standard_normal((NUM_NODES, BLOCK_WIDTH))
        _state["f64"] = (adjacency, np.ascontiguousarray(block),
                         np.empty_like(block))
        _state["f32"] = (adjacency.astype(np.float32),
                         np.ascontiguousarray(block, dtype=np.float32),
                         np.empty((NUM_NODES, BLOCK_WIDTH), dtype=np.float32))
    return _state


def _best_of(function, repetitions: int = 7) -> float:
    best = np.inf
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_precision_spmm_float64(benchmark):
    """Exact float64 SpMM over the width-32 stacked block (baseline)."""
    adjacency, block, out = _workload()["f64"]
    spmm(adjacency, block, out)  # warm caches / allocator
    benchmark.pedantic(lambda: spmm(adjacency, block, out),
                       rounds=5, iterations=3)


def test_precision_spmm_float32(benchmark):
    """Certified float32 SpMM: equivalent results, ≥ 1.5× throughput."""
    state = _workload()
    adjacency64, block64, out64 = state["f64"]
    adjacency32, block32, out32 = state["f32"]
    spmm(adjacency64, block64, out64)
    spmm(adjacency32, block32, out32)
    # Equivalence first: float32 must match float64 to its own round-off
    # (relative to the result magnitude and the dot-product length).
    scale = max(float(np.abs(out64).max()), 1.0)
    max_error = float(np.abs(out32.astype(np.float64) - out64).max())
    tolerance = np.finfo(np.float32).eps * AVG_DEGREE * 8 * scale
    assert max_error <= tolerance, (
        f"float32 SpMM deviates {max_error:.3e} from float64 "
        f"(allowed {tolerance:.3e})")
    seconds64 = _best_of(lambda: spmm(adjacency64, block64, out64))
    seconds32 = _best_of(lambda: spmm(adjacency32, block32, out32))
    speedup = seconds64 / seconds32
    table = ResultTable("Mixed-precision SpMM — width-32 stacked block")
    table.add_row(nodes=NUM_NODES, nnz=int(adjacency64.nnz),
                  width=BLOCK_WIDTH,
                  float64_ms=seconds64 * 1e3, float32_ms=seconds32 * 1e3,
                  speedup=speedup, max_error=max_error)
    benchmark.pedantic(lambda: spmm(adjacency32, block32, out32),
                       rounds=5, iterations=3)
    attach_table(benchmark, table)
    if not SMOKE:
        assert speedup >= ASSERTED_SPEEDUP, (
            f"float32 SpMM only {speedup:.2f}x faster than float64 "
            f"(need >= {ASSERTED_SPEEDUP}x) - the mixed-precision fast "
            "path is not paying for itself on this host")
