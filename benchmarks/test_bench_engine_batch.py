"""Benchmark — batched engine throughput vs sequential ``linbp()`` calls.

The multi-tenant scenario of the ROADMAP: ten concurrent label-propagation
queries (distinct explicit-belief matrices) against one shared graph.  The
sequential baseline issues ten ordinary :func:`repro.core.linbp.linbp`
calls (each already benefiting from the engine's plan cache); the batched
path stacks all ten queries into one :func:`repro.engine.batch.run_batch`
call.

Two effects drive the speedup, and they dominate at different scales:

* on small graphs the per-call overhead (workspace setup, validation,
  per-iteration bookkeeping) dominates and batching amortises it —
  roughly 2–3× on Kronecker graphs #1–#2;
* on larger graphs the batched SpMM amortises the adjacency traversal
  over all queries, but the dense per-query work does not shrink, so the
  gain tapers to ~1.2–1.5×.

The hard assertion (≥ 2×, required by the engine issue) therefore runs on
the small end of the suite; the larger sizes are reported in the table
without a speedup requirement.  Batched and sequential beliefs must agree
to 1e-10 at every size.
"""

from __future__ import annotations

import os
import time
from typing import List

import numpy as np

from benchmarks.conftest import attach_table
from repro.core.linbp import linbp
from repro.engine import clear_plan_cache, get_plan, run_batch
from repro.experiments.runner import ResultTable

#: The CI bench-smoke job (scripts/bench_record.py --smoke) relaxes the
#: speedup gate: shared runners batch just as well but time noisily.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_QUERIES = 10
EPSILON = 0.001
ASSERTED_SPEEDUP = 1.4 if SMOKE else 2.0
ASSERTED_INDEX = 1  # the hard ≥2x claim runs on Kronecker graph #1


def _query_mix(workload, num_queries: int) -> List[np.ndarray]:
    """Ten distinct explicit-belief matrices over one workload's graph."""
    scales = np.random.default_rng(7).uniform(0.5, 1.5, num_queries)
    return [workload.explicit * scale for scale in scales]


def _best_of(function, repetitions: int = 7) -> float:
    best = np.inf
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(workload):
    coupling = workload.coupling.scaled(EPSILON)
    queries = _query_mix(workload, NUM_QUERIES)
    plan = get_plan(workload.graph, coupling)
    # Warm both paths (plan cache, allocator, CPU caches).
    sequential_results = [linbp(workload.graph, coupling, explicit)
                          for explicit in queries]
    batched_results = run_batch(plan, queries)
    max_error = max(
        float(np.abs(batch.beliefs - sequential.beliefs).max())
        for batch, sequential in zip(batched_results, sequential_results))
    sequential_seconds = _best_of(
        lambda: [linbp(workload.graph, coupling, explicit)
                 for explicit in queries])
    batched_seconds = _best_of(lambda: run_batch(plan, queries))
    return sequential_seconds, batched_seconds, max_error


def test_engine_batch_throughput(benchmark, synthetic_workloads):
    """Batched 10-query propagation vs 10 sequential linbp() calls."""
    clear_plan_cache()
    table = ResultTable(
        f"Engine batch — {NUM_QUERIES} queries, batched vs sequential LinBP")
    asserted_speedup = None
    asserted_batch = None
    for workload in synthetic_workloads:
        sequential_seconds, batched_seconds, max_error = _measure(workload)
        speedup = sequential_seconds / batched_seconds
        if workload.index == ASSERTED_INDEX:
            asserted_speedup = speedup
            coupling = workload.coupling.scaled(EPSILON)
            plan = get_plan(workload.graph, coupling)
            queries = _query_mix(workload, NUM_QUERIES)
            asserted_batch = lambda: run_batch(plan, queries)  # noqa: E731
        table.add_row(
            graph=workload.index,
            nodes=workload.num_nodes,
            edges=workload.num_edges,
            sequential_ms=sequential_seconds * 1e3,
            batched_ms=batched_seconds * 1e3,
            speedup=speedup,
            max_belief_error=max_error,
        )
        assert max_error < 1e-10, \
            f"batched beliefs diverge from sequential on graph #{workload.index}"
    assert asserted_speedup is not None, \
        f"workload #{ASSERTED_INDEX} missing from the suite"
    # The benchmark statistic itself is the batched run on the asserted graph.
    benchmark.pedantic(asserted_batch, rounds=5, iterations=1)
    attach_table(benchmark, table)
    assert asserted_speedup >= ASSERTED_SPEEDUP, (
        f"batched propagation only {asserted_speedup:.2f}x faster than "
        f"sequential on graph #{ASSERTED_INDEX} (need >= {ASSERTED_SPEEDUP}x)")
