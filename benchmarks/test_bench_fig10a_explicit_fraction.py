"""Benchmark E9 — Fig. 10a: runtime versus the fraction of explicit beliefs.

Regenerates the sensitivity sweep: LinBP's cost is essentially flat (slightly
rising), SBP's cost is essentially flat (slightly falling) as the labeled
fraction grows — both effects are minor, which is the figure's point.
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import run_explicit_fraction_sweep

FRACTIONS = (0.05, 0.2, 0.5, 0.8, 0.95)


def test_fig10a_explicit_fraction(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_explicit_fraction_sweep,
                               kwargs={"graph_index": graph_index,
                                       "fractions": FRACTIONS},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    linbp_seconds = [row["linbp_seconds"] for row in table]
    sbp_seconds = [row["sbp_seconds"] for row in table]
    # Neither method should blow up across the sweep (both stay within ~5x).
    assert max(linbp_seconds) < 5 * min(linbp_seconds) + 0.05
    assert max(sbp_seconds) < 5 * min(sbp_seconds) + 0.05
