"""Benchmark — coalesced service throughput vs one-query-at-a-time.

The closed-loop serving scenario of the ROADMAP's north star: 16
concurrent clients issue label-propagation queries against one shared
graph through the :class:`~repro.service.service.PropagationService`.
The baseline drives the *same* requests through the same service layer
one query at a time with coalescing disabled (``window_seconds=0``,
``max_batch=1``), so the comparison isolates exactly what micro-batching
buys: the coalescer collects the concurrent arrivals and dispatches them
as stacked :func:`repro.engine.batch.run_batch` calls, amortising the
sparse adjacency traversal (and the per-call engine overhead) over every
query in the batch.

The asserted claim — **coalesced throughput ≥ 2× sequential at 16
concurrent clients** — runs on a dense-ish 800-node graph where the
SpMM is adjacency-bound (the regime the batched kernel targets).  Under
``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job, via ``scripts/
bench_record.py --smoke``) the graph shrinks and the threshold relaxes:
shared runners coalesce just as well but time far too noisily for a
tight ratio.

Every query's beliefs must agree with a direct sequential
:func:`repro.core.linbp.linbp` call to 1e-10 in both modes — the
throughput is only meaningful if the coalesced answers are the right
ones.
"""

from __future__ import annotations

import os
from typing import Dict, List

import numpy as np

from benchmarks.conftest import attach_table
from repro.core.linbp import linbp
from repro.coupling import synthetic_residual_matrix
from repro.engine import clear_plan_cache
from repro.experiments.runner import ResultTable
from repro.graphs import random_graph
from repro.service import PropagationService, QuerySpec, ServiceHarness

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_CLIENTS = 16
QUERIES_PER_CLIENT = 4 if SMOKE else 9
NUM_NODES = 400 if SMOKE else 800
EDGE_PROBABILITY = 0.08
NUM_ITERATIONS = 12
EPSILON = 0.005
WINDOW_SECONDS = 0.004
ASSERTED_SPEEDUP = 1.4 if SMOKE else 2.0


def _requests(graph, coupling) -> List[Dict]:
    """Distinct single-query requests (same graph/coupling, fresh beliefs)."""
    rng = np.random.default_rng(3)
    base = np.zeros((graph.num_nodes, 3))
    for node in rng.choice(graph.num_nodes, size=12, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        base[node] = [values[0], values[1], -values.sum()]
    scales = rng.uniform(0.5, 1.5, NUM_CLIENTS * QUERIES_PER_CLIENT)
    spec = QuerySpec(num_iterations=NUM_ITERATIONS)
    return [dict(graph_name="g", coupling=coupling,
                 explicit_residuals=base * scale, spec=spec)
            for scale in scales]


def _service(window_seconds: float, max_batch: int) -> PropagationService:
    # No result TTL/caching effects: every request is distinct, but keep
    # the cache tiny so lookups stay on the miss path deterministically.
    service = PropagationService(window_seconds=window_seconds,
                                 max_batch=max_batch,
                                 result_cache_size=1,
                                 result_ttl_seconds=None)
    return service


def test_service_coalesced_throughput(benchmark):
    """16 concurrent closed-loop clients vs one-query-at-a-time."""
    clear_plan_cache()
    graph = random_graph(NUM_NODES, EDGE_PROBABILITY, seed=1)
    coupling = synthetic_residual_matrix(epsilon=EPSILON)
    requests = _requests(graph, coupling)

    sequential_service = _service(window_seconds=0.0, max_batch=1)
    sequential_service.register_graph("g", graph)
    sequential_harness = ServiceHarness(sequential_service)
    sequential_harness.run_sequential(requests[:NUM_CLIENTS])  # warm-up
    # Best-of-3 drives for both modes (the _best_of discipline of the
    # kernel benchmarks): one closed-loop drive is a single ~100 ms
    # wall-clock sample and scheduler noise routinely shifts it by 20%.
    sequential = min((sequential_harness.run_sequential(requests)
                      for _ in range(3)), key=lambda run: run.elapsed_seconds)

    coalesced_service = _service(window_seconds=WINDOW_SECONDS,
                                 max_batch=NUM_CLIENTS)
    coalesced_service.register_graph("g", graph)
    coalesced_harness = ServiceHarness(coalesced_service)
    coalesced_harness.run_concurrent(requests[:2 * NUM_CLIENTS],
                                     num_clients=NUM_CLIENTS)  # warm-up
    coalesced = min((coalesced_harness.run_concurrent(
                        requests, num_clients=NUM_CLIENTS)
                     for _ in range(3)), key=lambda run: run.elapsed_seconds)

    # Correctness first: both modes must reproduce sequential linbp().
    for request, coalesced_result, sequential_result in zip(
            requests, coalesced.results, sequential.results):
        direct = linbp(graph, coupling, request["explicit_residuals"],
                       num_iterations=NUM_ITERATIONS)
        assert np.abs(coalesced_result.beliefs
                      - direct.beliefs).max() < 1e-10
        assert np.abs(sequential_result.beliefs
                      - direct.beliefs).max() < 1e-10

    coalescer_stats = coalesced_service.stats()["coalescer"]
    speedup = coalesced.throughput / sequential.throughput
    table = ResultTable(
        f"Service — {len(requests)} queries, {NUM_CLIENTS} clients, "
        f"coalesced vs one-at-a-time")
    table.add_row(
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        requests=len(requests),
        sequential_rps=sequential.throughput,
        coalesced_rps=coalesced.throughput,
        speedup=speedup,
        batches=coalescer_stats["batches"],
        largest_batch=coalescer_stats["largest_batch"],
    )
    # The benchmark statistic is one coalesced closed-loop drive.
    benchmark.pedantic(
        lambda: coalesced_harness.run_concurrent(requests,
                                                 num_clients=NUM_CLIENTS),
        rounds=3, iterations=1)
    attach_table(benchmark, table)
    assert coalescer_stats["largest_batch"] > 1, \
        "the coalescer never batched anything — check the window"
    assert speedup >= ASSERTED_SPEEDUP, (
        f"coalesced throughput only {speedup:.2f}x one-query-at-a-time "
        f"with {NUM_CLIENTS} clients (need >= {ASSERTED_SPEEDUP}x)")
