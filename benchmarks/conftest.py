"""Shared fixtures for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper.  Two
kinds of benchmarks coexist:

* *timing* benchmarks (Fig. 7a/7b/7d/7e, Fig. 10) use the ``benchmark``
  fixture directly on the algorithm under test, so pytest-benchmark's
  statistics are the reproduced series;
* *quality / analysis* benchmarks (Fig. 4, Fig. 7f/7g, Fig. 11, Appendix G)
  run the corresponding experiment module once inside the benchmark and
  attach the resulting table via ``benchmark.extra_info`` (also printed to
  stdout with ``-s``).

The workload sizes default to the small end of the paper's suite so the whole
harness finishes in minutes; pass ``--bench-max-index`` to grow them.
"""

from __future__ import annotations

import pytest

from repro.datasets import kronecker_suite


def pytest_addoption(parser):
    parser.addoption(
        "--bench-max-index", action="store", type=int, default=3,
        help="largest Kronecker workload index (1-9) used by scalability benches")


@pytest.fixture(scope="session")
def bench_max_index(request) -> int:
    """Largest synthetic workload index used by the scalability benchmarks."""
    return request.config.getoption("--bench-max-index")


@pytest.fixture(scope="session")
def synthetic_workloads(bench_max_index):
    """The Fig. 6a workload suite, generated once per benchmark session."""
    return kronecker_suite(max_index=bench_max_index, seed=0)


def attach_table(benchmark, table) -> None:
    """Store a ResultTable on the benchmark record and echo it to stdout."""
    benchmark.extra_info["table"] = table.rows
    print()
    print(table.to_text())
