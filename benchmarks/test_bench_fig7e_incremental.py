"""Benchmark E6 — Fig. 7e: incremental ΔSBP vs SBP from scratch.

Regenerates the crossover plot: with few new labels ΔSBP wins, as the
fraction of new labels grows its cost approaches (and eventually exceeds) a
full recomputation.
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import run_incremental_beliefs

FRACTIONS = (0.02, 0.1, 0.3, 0.6, 1.0)


def test_fig7e_incremental_beliefs(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(
        run_incremental_beliefs,
        kwargs={"graph_index": graph_index, "new_fractions": FRACTIONS,
                "engine": "memory"},
        rounds=1, iterations=1)
    attach_table(benchmark, table)
    # The repaired region grows monotonically with the update fraction, and
    # for the smallest fraction the incremental update must beat the full
    # recomputation (the left side of the paper's crossover plot).
    repaired = [row["nodes_updated"] for row in table]
    assert repaired == sorted(repaired)
    assert table.rows[0]["delta_sbp_seconds"] < table.rows[0]["sbp_scratch_seconds"]
