"""Benchmark — vectorised SBP engine vs the pre-refactor implementation.

Two claims from the vectorised-SBP issue are asserted here:

* **≥ 5× for ``SBP.run`` + ``add_explicit_beliefs``** on a ≥ 50 k-node
  synthetic graph against the frozen pre-refactor implementation
  (:mod:`repro.core._sbp_reference`: Python-set BFS, ``directed_edges()``
  DAG construction, per-node incremental loops).  The vectorised timing
  *includes* building the geodesic plan from scratch — the plan cache is
  cleared inside every repetition — so the speedup is the kernel win,
  not the cache win.
* **≥ 2× throughput for a 10-query ``run_sbp_batch``** over sequential
  ``SBP.run`` calls sharing the same labeled set (both paths enjoy the
  plan cache; the batch additionally amortises the per-level sweeps and
  the per-call bookkeeping), with batched ≡ sequential to 1e-10.

The equivalence assertions (vectorised ≡ reference, batched ≡ sequential,
both to 1e-10) run on every measurement, so the speedups can never be
bought with a numerically different algorithm.
"""

from __future__ import annotations

import os
import time
from typing import List

import numpy as np

from benchmarks.conftest import attach_table
from repro.core import SBP
from repro.core._sbp_reference import ReferenceSBP
from repro.coupling import synthetic_residual_matrix
from repro.datasets.synthetic_labels import (
    sample_explicit_beliefs,
    sample_explicit_nodes,
)
from repro.engine import clear_plan_cache, get_sbp_plan, run_sbp_batch
from repro.experiments.runner import ResultTable
from repro.graphs import grid_graph

#: ``REPRO_BENCH_SMOKE=1`` (the CI bench-smoke job) shrinks the grids and
#: relaxes the speedup gates: shared runners vectorise just as well but
#: time far too noisily for the tight laptop-calibrated thresholds.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

GRID_SIDE = 64 if SMOKE else 224   # 224 x 224 = 50 176 nodes (>= 50 k)
EXPLICIT_FRACTION = 0.01
UPDATE_FRACTION = 0.002
RUN_UPDATE_SPEEDUP = 2.0 if SMOKE else 5.0
BATCH_QUERIES = 10
BATCH_GRID_SIDE = 40 if SMOKE else 60  # deep levels, overhead-bound regime
BATCH_SPEEDUP = 1.3 if SMOKE else 2.0


def _grid_workload(side: int, seed: int = 0):
    graph = grid_graph(side, side)
    coupling = synthetic_residual_matrix(epsilon=0.5)
    nodes = sample_explicit_nodes(graph.num_nodes, EXPLICIT_FRACTION, seed=seed)
    explicit = sample_explicit_beliefs(graph.num_nodes, 3, nodes, seed=seed + 1)
    update_nodes = sample_explicit_nodes(graph.num_nodes, UPDATE_FRACTION,
                                         seed=seed + 2, exclude=nodes.tolist())
    update = sample_explicit_beliefs(graph.num_nodes, 3, update_nodes,
                                     seed=seed + 3)
    return graph, coupling, explicit, update


def _best_of(function, repetitions: int) -> float:
    best = np.inf
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def test_sbp_run_and_update_speedup(benchmark):
    """Vectorised run + ΔSBP vs the pre-refactor loops on a 50 k-node grid."""
    clear_plan_cache()
    graph, coupling, explicit, update = _grid_workload(GRID_SIDE)

    def reference_pass():
        runner = ReferenceSBP(graph, coupling)
        runner.run(explicit)
        runner.add_explicit_beliefs(update)
        return runner

    def vectorized_pass():
        clear_plan_cache()  # charge the full plan build to every repetition
        runner = SBP(graph, coupling)
        runner.run(explicit)
        runner.add_explicit_beliefs(update)
        return runner

    reference = reference_pass()
    vectorized = vectorized_pass()
    max_error = float(np.abs(vectorized.beliefs - reference.beliefs).max())
    assert max_error < 1e-10, \
        f"vectorised SBP diverges from the reference (max error {max_error})"
    assert np.array_equal(vectorized.geodesic_numbers,
                          reference.geodesic_numbers)

    reference_seconds = _best_of(reference_pass, repetitions=2)
    vectorized_seconds = _best_of(vectorized_pass, repetitions=3)
    speedup = reference_seconds / vectorized_seconds
    table = ResultTable("SBP engine — run + add_explicit_beliefs, "
                        f"{graph.num_nodes} nodes")
    table.add_row(nodes=graph.num_nodes, edges=graph.num_directed_edges,
                  labeled=int(np.count_nonzero(np.any(explicit != 0, axis=1))),
                  reference_s=reference_seconds,
                  vectorized_s=vectorized_seconds,
                  speedup=speedup, max_belief_error=max_error)
    benchmark.pedantic(vectorized_pass, rounds=7, warmup_rounds=1,
                       iterations=1)
    attach_table(benchmark, table)
    assert speedup >= RUN_UPDATE_SPEEDUP, (
        f"vectorised SBP only {speedup:.1f}x faster than the pre-refactor "
        f"implementation (need >= {RUN_UPDATE_SPEEDUP}x)")


def test_sbp_batch_throughput(benchmark):
    """10-query run_sbp_batch vs 10 sequential SBP.run calls, shared labels."""
    clear_plan_cache()
    graph, coupling, explicit, _ = _grid_workload(BATCH_GRID_SIDE, seed=4)
    # Keep only a handful of labels: deep geodesic levels stress the
    # per-level sweep that batching amortises.
    labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0][:5]
    base = np.zeros_like(explicit)
    base[labeled] = explicit[labeled]
    scales = np.random.default_rng(11).uniform(0.5, 1.5, BATCH_QUERIES)
    queries: List[np.ndarray] = [base * scale for scale in scales]

    def sequential():
        return [SBP(graph, coupling).run(query) for query in queries]

    def batched():
        return run_sbp_batch(graph, coupling, queries)

    sequential_results = sequential()   # also warms the shared plan
    batched_results = batched()
    max_error = max(
        float(np.abs(batch.beliefs - single.beliefs).max())
        for batch, single in zip(batched_results, sequential_results))
    assert max_error < 1e-10, \
        f"batched SBP diverges from sequential (max error {max_error})"

    sequential_seconds = _best_of(sequential, repetitions=5)
    batched_seconds = _best_of(batched, repetitions=5)
    speedup = sequential_seconds / batched_seconds
    table = ResultTable(f"SBP engine — {BATCH_QUERIES}-query batch vs "
                        "sequential runs")
    table.add_row(nodes=graph.num_nodes, queries=BATCH_QUERIES,
                  levels=int(get_sbp_plan(graph, labeled).max_level),
                  sequential_ms=sequential_seconds * 1e3,
                  batched_ms=batched_seconds * 1e3,
                  speedup=speedup, max_belief_error=max_error)
    benchmark.pedantic(batched, rounds=15, warmup_rounds=2, iterations=1)
    attach_table(benchmark, table)
    assert speedup >= BATCH_SPEEDUP, (
        f"batched SBP only {speedup:.2f}x faster than sequential runs "
        f"(need >= {BATCH_SPEEDUP}x)")
