"""Benchmarks for the future-work extensions (estimated Ĥ, incremental LinBP).

These cover the two extension points the paper leaves open: learning the
coupling matrix from partially labeled data (footnote 1) and incremental
maintenance of LinBP (Section 8).
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import (
    run_estimated_coupling_experiment,
    run_incremental_linbp_experiment,
)


def test_extension_estimated_coupling(benchmark):
    table = benchmark.pedantic(run_estimated_coupling_experiment,
                               kwargs={"num_papers": 400}, rounds=1, iterations=1)
    attach_table(benchmark, table)
    rows = {row["coupling"]: row for row in table.rows}
    assert rows["estimated from labels"]["linbp_truth_accuracy"] > \
        rows["mis-specified (heterophily)"]["linbp_truth_accuracy"]


def test_extension_incremental_linbp(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_incremental_linbp_experiment,
                               kwargs={"graph_index": graph_index},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        assert row["max_difference_vs_scratch"] < 1e-7
