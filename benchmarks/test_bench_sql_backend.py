"""Benchmark — real SQL execution vs the pure-Python relational engine.

The paper's Section 5.3 claim is that LinBP runs *inside an RDBMS* with
plain joins and aggregates.  This benchmark prices that claim: the same
relational program (one ``UPDATE … FROM`` join-aggregate per iteration)
executed by the stdlib SQLite engine versus the pure-Python
:class:`~repro.relational.table.Table` operators, on the Fig. 6a Kronecker
workloads.

Two gates:

* **equivalence** — both backends must match the in-memory
  :func:`repro.engine.batch.run_batch` beliefs to 1e-10 at every size (the
  benchmark-level restatement of the cross-backend differential suite);
* **speedup** — SQLite must beat the pure-Python tables by the asserted
  ratio on the small asserted workload.  A real SQL engine evaluating the
  very same program slower than interpreted Python row loops would mean
  the backend's SQL is pathological (e.g. a missing join index).

Iteration counts are fixed (``num_iterations``) so both backends do
identical work regardless of convergence behaviour.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import attach_table
from repro.engine import get_plan, run_batch
from repro.experiments.runner import ResultTable
from repro.relational.backends import get_backend

#: The CI bench-smoke job (scripts/bench_record.py --smoke) relaxes the
#: speedup gate: shared runners keep the ratio but time noisily.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

EPSILON = 0.001
NUM_ITERATIONS = 5
ASSERTED_SPEEDUP = 1.2 if SMOKE else 1.5
ASSERTED_INDEX = 1  # the hard speedup claim runs on Kronecker graph #1


def _best_of(function, repetitions: int = 3) -> float:
    best = np.inf
    for _ in range(repetitions):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _measure(workload):
    coupling = workload.coupling.scaled(EPSILON)
    reference = run_batch(get_plan(workload.graph, coupling),
                          [workload.explicit],
                          num_iterations=NUM_ITERATIONS)[0]
    seconds = {}
    max_error = 0.0
    for name in ("python", "sqlite"):
        with get_backend(name) as backend:
            backend.load_graph(workload.graph, coupling, workload.explicit)
            result = backend.run_linbp(num_iterations=NUM_ITERATIONS)
            error = float(np.abs(result.beliefs - reference.beliefs).max())
            max_error = max(max_error, error)
            seconds[name] = _best_of(
                lambda: backend.run_linbp(num_iterations=NUM_ITERATIONS))
    return seconds, max_error


def test_sql_backend_vs_python_tables(benchmark, synthetic_workloads):
    """SQLite-executed LinBP vs the pure-Python Table operators."""
    table = ResultTable(
        f"SQL backend — {NUM_ITERATIONS} LinBP iterations, "
        "SQLite vs pure-Python relational engine")
    asserted_speedup = None
    asserted_workload = None
    for workload in synthetic_workloads:
        seconds, max_error = _measure(workload)
        speedup = seconds["python"] / seconds["sqlite"]
        if workload.index == ASSERTED_INDEX:
            asserted_speedup = speedup
            asserted_workload = workload
        table.add_row(
            graph=workload.index,
            nodes=workload.num_nodes,
            edges=workload.num_edges,
            python_ms=seconds["python"] * 1e3,
            sqlite_ms=seconds["sqlite"] * 1e3,
            speedup=speedup,
            max_belief_error=max_error,
        )
        assert max_error < 1e-10, (
            f"backend beliefs diverge from run_batch on graph "
            f"#{workload.index} (max error {max_error:.3e})")
    assert asserted_speedup is not None, \
        f"workload #{ASSERTED_INDEX} missing from the suite"
    # The benchmark statistic itself is the SQLite run on the asserted graph.
    coupling = asserted_workload.coupling.scaled(EPSILON)
    with get_backend("sqlite") as sqlite_backend:
        sqlite_backend.load_graph(asserted_workload.graph, coupling,
                                  asserted_workload.explicit)
        benchmark.pedantic(
            lambda: sqlite_backend.run_linbp(num_iterations=NUM_ITERATIONS),
            rounds=5, iterations=1)
    attach_table(benchmark, table)
    assert asserted_speedup >= ASSERTED_SPEEDUP, (
        f"SQLite-executed LinBP only {asserted_speedup:.2f}x the pure-Python "
        f"relational engine on graph #{ASSERTED_INDEX} "
        f"(need >= {ASSERTED_SPEEDUP}x)")
