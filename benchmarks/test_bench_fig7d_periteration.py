"""Benchmark E5 — Fig. 7d: per-iteration cost of LinBP vs SBP.

Regenerates the per-iteration timing series: LinBP touches every edge in
every iteration (flat cost), SBP touches each edge at most once across the
whole run (rising then falling cost).
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import run_per_iteration_timing


def test_fig7d_per_iteration(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_per_iteration_timing,
                               kwargs={"graph_index": graph_index,
                                       "num_iterations": 5},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    linbp_edges = [row["linbp_edges"] for row in table if row["linbp_edges"]]
    sbp_total_edges = sum(row["sbp_edges"] for row in table)
    # LinBP revisits all edges every iteration; SBP's total over all
    # iterations never exceeds one pass over the edge set.
    assert len(set(linbp_edges)) == 1
    assert sbp_total_edges <= linbp_edges[0]
