"""Benchmark E4 — Fig. 7b and the SQL columns of Fig. 7c.

Times the relational (SQL-style) implementations: LinBP (Algorithm 1, 5
iterations), SBP (Algorithm 2, until termination), and incremental ΔSBP
(Algorithm 3 applied to the 1 permille update workload).  The paper's shape —
SBP about an order of magnitude faster than relational LinBP, ΔSBP another
factor faster — should show up in the per-group statistics.
"""

from __future__ import annotations

import pytest

from repro.relational.linbp_sql import RelationalLinBP
from repro.relational.sbp_incremental import add_explicit_beliefs_sql
from repro.relational.sbp_sql import RelationalSBP

EPSILON = 0.001
ITERATIONS = 5
INDICES = [1, 2]


def _workload(synthetic_workloads, index):
    workload = synthetic_workloads[index - 1]
    return workload


@pytest.mark.parametrize("index", INDICES)
@pytest.mark.benchmark(group="fig7b-linbp-sql")
def test_fig7b_linbp_sql(benchmark, synthetic_workloads, index):
    workload = _workload(synthetic_workloads, index)
    coupling = workload.coupling.scaled(EPSILON)

    def run():
        return RelationalLinBP(workload.graph, coupling).run(
            workload.explicit, num_iterations=ITERATIONS)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["edges"] = workload.num_edges
    assert result.iterations == ITERATIONS


@pytest.mark.parametrize("index", INDICES)
@pytest.mark.benchmark(group="fig7b-sbp-sql")
def test_fig7b_sbp_sql(benchmark, synthetic_workloads, index):
    workload = _workload(synthetic_workloads, index)
    coupling = workload.coupling.scaled(EPSILON)

    def run():
        return RelationalSBP(workload.graph, coupling).run(workload.explicit)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    benchmark.extra_info["edges"] = workload.num_edges
    assert result.converged


@pytest.mark.parametrize("index", INDICES)
@pytest.mark.benchmark(group="fig7b-delta-sbp-sql")
def test_fig7b_delta_sbp_sql(benchmark, synthetic_workloads, index):
    workload = _workload(synthetic_workloads, index)
    coupling = workload.coupling.scaled(EPSILON)

    def setup():
        runner = RelationalSBP(workload.graph, coupling)
        runner.run(workload.explicit)
        return (runner, workload.explicit_update), {}

    result = benchmark.pedantic(add_explicit_beliefs_sql, setup=setup, rounds=2,
                                iterations=1)
    benchmark.extra_info["edges"] = workload.num_edges
    assert result.extra["nodes_updated"] >= 0
