"""Benchmark E7 — Fig. 7f: recall and precision of LinBP with respect to BP.

Regenerates the quality sweep over the coupling scale; inside the convergence
region LinBP reproduces BP's top-belief assignment essentially perfectly
(the paper reports > 99.9 % accuracy).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import attach_table
from repro.experiments import run_quality_sweep

EPSILONS = tuple(np.logspace(-5, -2.6, 5).tolist())


def test_fig7f_linbp_vs_bp(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_quality_sweep,
                               kwargs={"graph_index": graph_index,
                                       "epsilons": EPSILONS},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        if row["within_sufficient_bound"]:
            assert row["linbp_vs_bp_recall"] > 0.99
            assert row["linbp_vs_bp_precision"] > 0.99
