"""Benchmark E3 — Fig. 7a and the JAVA columns of Fig. 7c.

Times the main-memory implementations of standard BP and LinBP for 5
iterations on each synthetic workload.  The paper's headline shape — LinBP is
orders of magnitude faster than message-passing BP and scales roughly
linearly in the number of edges — should be visible in the pytest-benchmark
statistics grouped by graph index.
"""

from __future__ import annotations

import pytest

from repro.core.bp import belief_propagation
from repro.core.linbp import linbp

EPSILON = 0.001
ITERATIONS = 5


def _workload(synthetic_workloads, index):
    workload = synthetic_workloads[index - 1]
    return workload.graph, workload.coupling.scaled(EPSILON), workload.explicit


@pytest.mark.parametrize("index", [1, 2, 3])
@pytest.mark.benchmark(group="fig7a-linbp")
def test_fig7a_linbp_memory(benchmark, synthetic_workloads, index):
    if index > len(synthetic_workloads):
        pytest.skip("workload index beyond --bench-max-index")
    graph, coupling, explicit = _workload(synthetic_workloads, index)
    result = benchmark(linbp, graph, coupling, explicit, num_iterations=ITERATIONS)
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_directed_edges
    assert result.iterations == ITERATIONS


@pytest.mark.parametrize("index", [1, 2, 3])
@pytest.mark.benchmark(group="fig7a-bp")
def test_fig7a_bp_memory(benchmark, synthetic_workloads, index):
    if index > len(synthetic_workloads):
        pytest.skip("workload index beyond --bench-max-index")
    graph, coupling, explicit = _workload(synthetic_workloads, index)
    result = benchmark(belief_propagation, graph, coupling, explicit,
                       max_iterations=ITERATIONS, tolerance=1e-300)
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_directed_edges
    assert result.iterations == ITERATIONS
