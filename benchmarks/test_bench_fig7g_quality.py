"""Benchmark E8 — Fig. 7g: SBP and LinBP* with respect to LinBP.

Regenerates the second quality panel: LinBP* tracks LinBP almost exactly, SBP
tracks LinBP with small losses caused by exact ties (recall stays higher than
precision, as the paper explains).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import attach_table
from repro.experiments import run_quality_sweep

EPSILONS = tuple(np.logspace(-5, -2.6, 5).tolist())


def test_fig7g_sbp_and_star_vs_linbp(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_quality_sweep,
                               kwargs={"graph_index": graph_index,
                                       "epsilons": EPSILONS},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        if row["within_sufficient_bound"]:
            assert row["linbp_star_vs_linbp_recall"] > 0.99
            assert row["sbp_vs_linbp_f1"] > 0.95
            # Ties make SBP return extra classes: recall >= precision.
            assert row["sbp_vs_linbp_recall"] >= row["sbp_vs_linbp_precision"] - 1e-9
