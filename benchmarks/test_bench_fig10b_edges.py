"""Benchmark E10 — Fig. 10b: incremental edge insertion vs SBP from scratch.

Regenerates the edge-update crossover: ΔSBP (Algorithm 4) beats recomputation
for small fractions of new edges; as the fraction grows the advantage shrinks
and eventually reverses (the paper sees the crossover around 3 %).
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import run_incremental_edges

FRACTIONS = (0.005, 0.01, 0.03, 0.06, 0.10)


def test_fig10b_incremental_edges(benchmark, bench_max_index):
    graph_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_incremental_edges,
                               kwargs={"graph_index": graph_index,
                                       "fractions": FRACTIONS,
                                       "engine": "memory"},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    # More new edges -> more nodes repaired (monotone within noise), and the
    # number of inserted edges matches the requested fractions.
    assert table.rows[0]["num_new_edges"] < table.rows[-1]["num_new_edges"]
    assert all(row["delta_sbp_seconds"] > 0 for row in table)
