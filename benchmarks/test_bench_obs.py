"""Benchmark — telemetry overhead on the hot query path.

The observability layer's core promise is *near-zero cost*: every span
and counter call starts with one module-level flag check, so an
instrumented engine under ``REPRO_OBS_DISABLED=1`` must run the query
path at effectively the uninstrumented speed, and even **enabled**
telemetry must stay within a few percent (the span sites sit outside
the inner SpMM kernels).

Both states are measured in one process by flipping
:func:`repro.obs.set_obs_enabled` around identical batched-engine runs;
min-of-N timing discards scheduler noise.  The gate asserts

* ``disabled / enabled`` overhead below :data:`MAX_OVERHEAD` on the
  asserted Kronecker workload (<5% at full size, per the observability
  issue; relaxed on smoke-sized runs where a single sweep is tens of
  microseconds and the ratio is dominated by timer noise);
* exact belief agreement between the enabled and disabled runs —
  telemetry must never perturb the arithmetic.

``scripts/bench_record.py --suite obs`` records the absolute timings
into ``BENCH_obs.json`` so a creeping slowdown of the *instrumented*
path is caught even if both sides slow down together.
"""

from __future__ import annotations

import os
import time
from typing import List

import numpy as np

from benchmarks.conftest import attach_table
from benchmarks.test_bench_engine_batch import _best_of
from repro.engine import clear_plan_cache, get_plan, run_batch
from repro.experiments.runner import ResultTable
from repro.obs import obs_enabled, set_obs_enabled

#: The CI obs-smoke job (scripts/bench_record.py --smoke --suite obs)
#: runs tiny workloads where one sweep is microseconds and the ratio is
#: timer noise; the full-size gate is the issue's <5%.
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_QUERIES = 10
EPSILON = 0.001
MAX_OVERHEAD = 0.25 if SMOKE else 0.05
#: The <5% gate runs on the largest default workload: a span covers a
#: whole sweep, so its fixed cost amortises with graph size, and tiny
#: graphs (sweeps of tens of microseconds) overstate it structurally.
ASSERTED_INDEX = 1 if SMOKE else 3


def _query_mix(workload, num_queries: int) -> List[np.ndarray]:
    scales = np.random.default_rng(7).uniform(0.5, 1.5, num_queries)
    return [workload.explicit * scale for scale in scales]


def _measure(workload, repetitions: int = 11):
    """(overhead ratio − 1, enabled s, disabled s, max |Δbelief|).

    The two states are timed in *interleaved* pairs (disabled sample,
    then enabled sample, back to back) and the overhead is the **minimum
    over the per-pair ratios**: both samples of the winning pair ran
    under near-identical machine state, so frequency scaling, a noisy
    neighbour or a GC pause inflates individual pairs but cannot fake a
    systematic gap.  True overhead lower-bounds every pair's ratio, so
    the min converges on it from above.  Timing the two states as
    sequential blocks (or taking independent mins) lets machine-state
    drift between the blocks masquerade as overhead — that was measured
    flaking past the gate on shared hardware.
    """
    coupling = workload.coupling.scaled(EPSILON)
    plan = get_plan(workload.graph, coupling)
    queries = _query_mix(workload, NUM_QUERIES)
    assert obs_enabled(), "benchmark requires telemetry on at entry"
    enabled_results = run_batch(plan, queries)  # warm both paths
    try:
        set_obs_enabled(False)
        disabled_results = run_batch(plan, queries)
        best_ratio = float("inf")
        disabled_seconds = enabled_seconds = float("inf")
        for _ in range(repetitions):
            set_obs_enabled(False)
            start = time.perf_counter()
            run_batch(plan, queries)
            disabled_sample = time.perf_counter() - start
            set_obs_enabled(True)
            start = time.perf_counter()
            run_batch(plan, queries)
            enabled_sample = time.perf_counter() - start
            best_ratio = min(best_ratio, enabled_sample / disabled_sample)
            disabled_seconds = min(disabled_seconds, disabled_sample)
            enabled_seconds = min(enabled_seconds, enabled_sample)
    finally:
        set_obs_enabled(True)
    max_error = max(
        float(np.abs(on.beliefs - off.beliefs).max())
        for on, off in zip(enabled_results, disabled_results))
    return best_ratio - 1.0, enabled_seconds, disabled_seconds, max_error


def test_obs_overhead_on_query_path(benchmark, synthetic_workloads):
    """Instrumented vs REPRO_OBS_DISABLED batched propagation."""
    clear_plan_cache()
    table = ResultTable(
        f"Telemetry overhead — {NUM_QUERIES}-query batch, "
        "enabled vs disabled")
    asserted_overhead = None
    asserted_run = None
    for workload in synthetic_workloads:
        overhead, enabled_seconds, disabled_seconds, max_error = \
            _measure(workload)
        if workload.index == ASSERTED_INDEX:
            asserted_overhead = overhead
            coupling = workload.coupling.scaled(EPSILON)
            plan = get_plan(workload.graph, coupling)
            queries = _query_mix(workload, NUM_QUERIES)
            asserted_run = lambda: run_batch(plan, queries)  # noqa: E731
        table.add_row(
            graph=workload.index,
            nodes=workload.num_nodes,
            edges=workload.num_edges,
            enabled_ms=enabled_seconds * 1e3,
            disabled_ms=disabled_seconds * 1e3,
            overhead_pct=overhead * 100.0,
            max_belief_error=max_error,
        )
        assert max_error == 0.0, (
            f"telemetry perturbed beliefs on graph #{workload.index} "
            f"(max error {max_error:g})")
    if asserted_overhead is None:
        # The suite was capped below ASSERTED_INDEX (e.g. a manual
        # --bench-max-index 1 run); gate on the largest workload present.
        asserted_overhead = overhead
        coupling = workload.coupling.scaled(EPSILON)
        plan = get_plan(workload.graph, coupling)
        queries = _query_mix(workload, NUM_QUERIES)
        asserted_run = lambda: run_batch(plan, queries)  # noqa: E731
    # The recorded kernel statistic is the instrumented (enabled) run.
    benchmark.pedantic(asserted_run, rounds=5, iterations=1)
    attach_table(benchmark, table)
    assert asserted_overhead <= MAX_OVERHEAD, (
        f"telemetry adds {asserted_overhead:.1%} to the query path "
        f"(gate: {MAX_OVERHEAD:.0%})")


def test_obs_disabled_skips_span_allocation(benchmark):
    """Microbenchmark: a disabled span is one flag check, no allocation."""
    from repro.obs import span
    from repro.obs.trace import _NOOP

    def disabled_spans():
        for _ in range(10_000):
            with span("bench.noop"):
                pass

    try:
        set_obs_enabled(False)
        assert span("bench.noop", tag=1) is _NOOP
        seconds = _best_of(disabled_spans, repetitions=5)
        benchmark.pedantic(disabled_spans, rounds=3, iterations=1)
    finally:
        set_obs_enabled(True)
    # Under a microsecond per disabled span even on slow shared runners.
    assert seconds / 10_000 < 1e-6, (
        f"disabled span costs {seconds / 10_000 * 1e9:.0f} ns; "
        "the no-op fast path has regressed")
