"""Benchmark — streaming mixed update/query traffic with a p99 gate.

The streaming scenario the async front end and incremental
repartitioning exist for: 16 closed-loop clients drive a sharded
:class:`~repro.service.service.PropagationService` with *mixed*
traffic — one client issues edge-delta updates (in order, so the
snapshot-version chain is deterministic), the other fifteen issue
label-propagation queries, some with a staleness bound of one version.
Every update rides the incremental partition-repair path
(:func:`repro.shard.repair.repair_partition`) instead of a full
re-partition, and queries keep flowing against pinned snapshots while
mutations install new ones.

Gates, in order of importance:

* **Correctness** — every query's beliefs must match a direct
  :func:`repro.core.linbp.linbp` call on the exact graph version the
  service reports having served (``result.extra["snapshot_version"]``),
  to 1e-10.  Repaired partitions must be indistinguishable from fresh
  ones in query results, under concurrency.
* **Repair path exercised** — the service must report one incremental
  repair per edge-delta update and zero full rebuilds.
* **p99 latency** — the 99th-percentile *query* latency must stay under
  a stall budget (:data:`P99_BUDGET_SECONDS`).  The budget is loose on
  purpose: a query on this graph takes single-digit milliseconds, so
  the gate only trips when reads serialise behind mutations (the
  failure mode this layer is designed out of), not on scheduler noise.

Under ``REPRO_BENCH_SMOKE=1`` the graph shrinks and the budget relaxes
further for shared CI runners.  Recorded via ``scripts/bench_record.py
--suite stream`` into ``BENCH_stream.json``.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

import numpy as np

from benchmarks.conftest import attach_table
from repro.core.linbp import linbp
from repro.coupling import synthetic_residual_matrix
from repro.engine import clear_plan_cache
from repro.experiments.runner import ResultTable
from repro.graphs import random_graph
from repro.service import PropagationService, QuerySpec, ServiceHarness

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_CLIENTS = 16
REQUESTS_PER_CLIENT = 6 if SMOKE else 10
NUM_NODES = 240 if SMOKE else 800
EDGE_PROBABILITY = 0.08
NUM_ITERATIONS = 12
EPSILON = 0.005
NUM_SHARDS = 2
EDGES_PER_UPDATE = 3
P99_BUDGET_SECONDS = 1.5 if SMOKE else 0.75


def _edge_deltas(graph, count: int, rng) -> List[List[Tuple[int, int]]]:
    """``count`` disjoint batches of edges absent from ``graph``."""
    adjacency = graph.adjacency
    chosen = set()
    deltas = []
    for _ in range(count):
        delta = []
        while len(delta) < EDGES_PER_UPDATE:
            u, v = rng.integers(0, graph.num_nodes, size=2)
            u, v = int(u), int(v)
            if u == v or (u, v) in chosen or (v, u) in chosen:
                continue
            if adjacency[u, v] != 0:
                continue
            chosen.add((u, v))
            delta.append((u, v))
        deltas.append(delta)
    return deltas


def _requests(graph, coupling,
              deltas: List[List[Tuple[int, int]]]) -> List[Dict]:
    """Mixed workload: client 0 updates in order, clients 1-15 query.

    Request index ``i`` is dealt to client ``i % NUM_CLIENTS`` by the
    harness, so putting every update at ``i % NUM_CLIENTS == 0`` makes
    one client apply the deltas sequentially — the snapshot-version
    chain is then deterministic and each version's expected graph is
    checkable.
    """
    rng = np.random.default_rng(11)
    base = np.zeros((graph.num_nodes, 3))
    for node in rng.choice(graph.num_nodes, size=12, replace=False):
        values = rng.uniform(-0.1, 0.1, size=2)
        base[node] = [values[0], values[1], -values.sum()]
    spec = QuerySpec(num_iterations=NUM_ITERATIONS)
    requests: List[Dict] = []
    update_index = 0
    total = NUM_CLIENTS * REQUESTS_PER_CLIENT
    for i in range(total):
        if i % NUM_CLIENTS == 0 and update_index < len(deltas):
            requests.append(dict(op="update", graph_name="g",
                                 new_edges=deltas[update_index]))
            update_index += 1
        else:
            requests.append(dict(
                graph_name="g", coupling=coupling,
                explicit_residuals=base * rng.uniform(0.5, 1.5),
                spec=spec, max_staleness=1 if i % 3 else 0))
    return requests


def _service() -> PropagationService:
    # Sequential shard executor and no background re-partition thread:
    # the drive must be deterministic to benchmark.  Incremental repair
    # stays on — it is the code under test.
    return PropagationService(window_seconds=0.002, max_batch=NUM_CLIENTS,
                              result_cache_size=64, result_ttl_seconds=None,
                              shards=NUM_SHARDS, shard_executor="sequential",
                              snapshot_history=4,
                              incremental_repartition=True,
                              repartition_drift=None)


def _drive(graph, requests):
    """One fresh-service mixed drive (updates mutate, so never reuse)."""
    service = _service()
    service.register_graph("g", graph)
    harness = ServiceHarness(service)
    run = harness.run_mixed(requests, num_clients=NUM_CLIENTS)
    return service, run


def test_stream_mixed_workload_p99(benchmark):
    """16 mixed closed-loop clients: correctness, repairs, p99 gate."""
    clear_plan_cache()
    graph = random_graph(NUM_NODES, EDGE_PROBABILITY, seed=7)
    coupling = synthetic_residual_matrix(epsilon=EPSILON)
    rng = np.random.default_rng(23)
    num_updates = REQUESTS_PER_CLIENT
    deltas = _edge_deltas(graph, num_updates, rng)
    requests = _requests(graph, coupling, deltas)

    # Expected graph at every snapshot version (updates apply in order).
    graphs = [graph]
    for delta in deltas:
        graphs.append(graphs[-1].with_edges_added(delta))

    _drive(graph, requests)  # warm-up: plan cache, thread pools
    service, run = _drive(graph, requests)

    # Correctness: each query must equal direct linbp() on the exact
    # version the service says it served (staleness-bounded queries may
    # legitimately report an older one).
    query_latencies = []
    checked = 0
    for request, result, latency in zip(requests, run.results,
                                        run.latencies):
        if request.get("op") == "update":
            continue
        query_latencies.append(latency)
        version = result.extra["snapshot_version"]
        direct = linbp(graphs[version], coupling,
                       request["explicit_residuals"],
                       num_iterations=NUM_ITERATIONS)
        assert np.abs(result.beliefs - direct.beliefs).max() < 1e-10
        checked += 1
    assert checked == len(requests) - num_updates

    shard_stats = service.stats()["shards"]["g"]
    assert shard_stats["incremental_repairs"] == num_updates, shard_stats
    assert shard_stats["full_repartitions"] == 0, shard_stats

    query_run_p99 = sorted(query_latencies)[
        max(0, int(np.ceil(0.99 * len(query_latencies))) - 1)]
    table = ResultTable(
        f"Stream — {len(requests)} mixed requests ({num_updates} updates), "
        f"{NUM_CLIENTS} clients, {NUM_SHARDS} shards")
    table.add_row(
        nodes=graph.num_nodes,
        edges=graph.num_edges,
        requests=len(requests),
        updates=num_updates,
        throughput_rps=run.throughput,
        p50_s=run.percentile(50),
        p99_s=run.p99,
        query_p99_s=query_run_p99,
        repairs=shard_stats["incremental_repairs"],
        cut_drift=shard_stats["cut_drift"],
    )
    # The benchmark statistic is one full mixed drive on a fresh service.
    benchmark.pedantic(lambda: _drive(graph, requests),
                       rounds=3, iterations=1)
    attach_table(benchmark, table)
    assert query_run_p99 <= P99_BUDGET_SECONDS, (
        f"p99 query latency {query_run_p99:.3f}s blew the "
        f"{P99_BUDGET_SECONDS}s stall budget — reads are serialising "
        f"behind mutations")
