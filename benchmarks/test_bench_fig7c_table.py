"""Benchmark E3/E4 — Fig. 7c: the combined timing table.

Runs every implementation (memory BP/LinBP, relational LinBP/SBP/ΔSBP) on the
same workloads and prints the combined table with the ratio columns the paper
reports (BP/LinBP, LinBP/SBP, SBP/ΔSBP).
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import run_timing_table


def test_fig7c_combined_timing_table(benchmark, bench_max_index):
    max_index = min(bench_max_index, 3)
    table = benchmark.pedantic(run_timing_table,
                               kwargs={"max_index": max_index, "include_bp": True},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        # The paper's qualitative ordering on every graph:
        # message-passing BP is slower than vectorised LinBP, and the
        # single-pass relational SBP beats iterated relational LinBP.
        assert row["bp_over_linbp"] > 1.0
        assert row["linbp_sql_over_sbp"] > 1.0
