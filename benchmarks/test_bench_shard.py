"""Benchmark — 4-shard pooled propagation vs single-process ``run_batch``.

The sharded subsystem's claim: partition a web-scale-ish graph, run the
same LinBP iteration as block-Jacobi sweeps on a ``multiprocessing``
pool with shared-memory halo exchange, and (a) match the single-matrix
engine's beliefs to 1e-10, (b) beat its wall-clock once there is
hardware to parallelise over.

The workload is a ≥ 200k-node stochastic Kronecker graph (2×2
initiator at power 18 → 262 144 nodes, ~730k undirected edges — the
regime of the paper's graphs #7–#8) carrying a 4-query batch at a fixed
iteration count, so both engines do byte-identical amounts of numerical
work and the comparison isolates the execution strategy.

The asserted speedup is scaled to the machine, because a process pool
cannot beat a single process without cores to run on:

* ≥ 4 CPUs (the benchmark's intended host): pooled must **beat**
  single-process (ratio > 1).
* 2–3 CPUs: partial parallelism; pooled must reach 60 % of
  single-process throughput.
* 1 CPU: pure overhead measurement; pooled must stay within ~7× of
  single-process (catches pathological IPC/copy regressions, the only
  meaningful gate without parallel hardware).

Under ``REPRO_BENCH_SMOKE=1`` (the CI shard-smoke job, via
``scripts/bench_record.py --compare --smoke --suite shard``) the graph
shrinks to 4 096 nodes and only a loose overhead-ratio is gated —
shared runners parallelise too noisily for a tight claim, so the smoke
gate is "equivalence holds and the pool is not pathologically slow".

Correctness is asserted unconditionally: every query's pooled beliefs
must match single-process ``run_batch`` to 1e-10 in all modes.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import attach_table
from repro.coupling import synthetic_residual_matrix
from repro.engine import clear_plan_cache
from repro.engine import batch as engine_batch
from repro.engine import plan as engine_plan
from repro.experiments.runner import ResultTable
from repro.graphs.generators import kronecker_graph
from repro.shard import ShardWorkerPool, get_sharded_plan, partition_graph, run_sharded_batch

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

#: 2×2 symmetric initiator: n = 2**power nodes, edge entries grow ~2.2×
#: per power — power 18 gives the ≥ 200k-node target without the
#: multi-minute generation cost of the 3×3 suite's #8.
INITIATOR = np.array([[0.9, 0.3], [0.3, 0.7]])
POWER = 12 if SMOKE else 18
NUM_SHARDS = 4
NUM_QUERIES = 4
NUM_ITERATIONS = 10
EPSILON = 0.01
EXPLICIT_FRACTION = 0.01
ROUNDS = 3


def _required_speedup() -> float:
    """The asserted pooled/single throughput ratio for this machine."""
    if SMOKE:
        return 0.10
    cpus = os.cpu_count() or 1
    if cpus >= NUM_SHARDS:
        return 1.05
    if cpus >= 2:
        return 0.60
    return 0.15


_WORKLOAD_CACHE: dict = {}


def _workload():
    """Graph + coupling + query batch, generated once per session."""
    if "workload" in _WORKLOAD_CACHE:
        return _WORKLOAD_CACHE["workload"]
    graph = kronecker_graph(POWER, initiator=INITIATOR, seed=5)
    coupling = synthetic_residual_matrix(epsilon=EPSILON)
    rng = np.random.default_rng(0)
    explicits = []
    for _ in range(NUM_QUERIES):
        explicit = np.zeros((graph.num_nodes, 3))
        labeled = rng.choice(graph.num_nodes,
                             max(int(graph.num_nodes * EXPLICIT_FRACTION), 1),
                             replace=False)
        values = rng.uniform(-0.1, 0.1, (labeled.size, 2))
        explicit[labeled, 0] = values[:, 0]
        explicit[labeled, 1] = values[:, 1]
        explicit[labeled, 2] = -values.sum(axis=1)
        explicits.append(explicit)
    _WORKLOAD_CACHE["workload"] = (graph, coupling, explicits)
    return _WORKLOAD_CACHE["workload"]


def _best_of(callable_, rounds: int = ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def test_shard_pool_vs_single_process(benchmark):
    """4-shard pooled sweeps vs one-process run_batch on a 262k-node graph."""
    clear_plan_cache()
    graph, coupling, explicits = _workload()
    plan = engine_plan.get_plan(graph, coupling)

    def single():
        return engine_batch.run_batch(plan, explicits,
                                      num_iterations=NUM_ITERATIONS)

    base_results = single()  # warm-up + reference beliefs
    single_seconds = _best_of(single)

    partition = partition_graph(graph, NUM_SHARDS)
    sharded_plan = get_sharded_plan(partition, coupling)
    stats = partition.stats()
    with ShardWorkerPool(partition) as pool:

        def pooled():
            return run_sharded_batch(sharded_plan, explicits,
                                     num_iterations=NUM_ITERATIONS,
                                     executor=pool)

        pooled_results = pooled()  # warm-up + correctness sample
        pooled_seconds = _best_of(pooled)

        worst = max(np.abs(r.beliefs - b.beliefs).max()
                    for r, b in zip(pooled_results, base_results))
        assert worst < 1e-10, (
            f"pooled beliefs diverged from single-process run_batch "
            f"(max |Δ| = {worst:.3e})")

        speedup = single_seconds / pooled_seconds
        required = _required_speedup()
        table = ResultTable(
            f"Sharded propagation — {graph.num_nodes} nodes, "
            f"{NUM_SHARDS} shards, {NUM_QUERIES} queries x "
            f"{NUM_ITERATIONS} iterations")
        table.add_row(
            nodes=graph.num_nodes,
            edges=graph.num_edges,
            cut_edges=stats.cut_edges,
            cut_fraction=round(stats.cut_fraction, 3),
            balance=round(stats.balance, 3),
            cpus=os.cpu_count() or 1,
            single_s=round(single_seconds, 4),
            pooled_s=round(pooled_seconds, 4),
            speedup=round(speedup, 3),
            required=required,
            max_error=float(worst),
        )
        # The benchmark statistic is one pooled propagation.
        benchmark.pedantic(pooled, rounds=ROUNDS, iterations=1)
        attach_table(benchmark, table)
        assert speedup >= required, (
            f"pooled propagation reached only {speedup:.2f}x single-process "
            f"throughput on {os.cpu_count()} CPU(s) (need >= {required}x; "
            f"with fewer CPUs than shards this gate only bounds overhead)")


def test_shard_partition_cost(benchmark):
    """Partitioning cost and cut quality (recorded into BENCH_shard.json)."""
    graph, _, _ = _workload()
    partition = benchmark(partition_graph, graph, NUM_SHARDS)
    stats = partition.stats()
    # BFS must stay meaningfully below the locality-oblivious baseline.
    baseline = partition_graph(graph, NUM_SHARDS, method="hash").stats()
    assert stats.cut_edges < baseline.cut_edges, (
        f"BFS cut ({stats.cut_edges}) not below hash baseline "
        f"({baseline.cut_edges})")
    assert stats.balance <= 1.2, f"unbalanced partition: {stats.balance:.3f}"
