"""Benchmark — the ablation/autotune sweep, gated on its own contracts.

Two kernels:

* ``test_tune_measure_config`` — one full measured drive of the default
  configuration through :func:`repro.tune.runner.measure_config` (the
  unit of work every sweep repeats ~20×).  Gates that the metrics
  really come off the :mod:`repro.obs` registries: request/query/update
  counts must match the workload and engine sweeps must be non-zero.
* ``test_tune_ablation_sweep`` — a complete one-factor ablation plus
  coordinate-descent selection.  Gates the subsystem's two headline
  contracts: **determinism** (a second sweep over an identically-seeded
  workload produces the same run IDs, statuses and report row order)
  and **no-worse-than-default** (the selected configuration's measured
  p99 and throughput weakly dominate the baseline's on the same
  harness runs), plus the artifact round-trip through
  :meth:`PropagationService.from_config`.

Under ``REPRO_BENCH_SMOKE=1`` the graph and the per-client request
count shrink for shared CI runners.  Recorded via
``scripts/bench_record.py --suite tune`` into ``BENCH_tune.json``.
"""

from __future__ import annotations

import os

from benchmarks.conftest import attach_table
from repro.coupling import synthetic_residual_matrix
from repro.experiments.runner import ResultTable
from repro.graphs import random_graph
from repro.service import PropagationService
from repro.tune import (
    AblationRunner,
    build_report,
    make_mixed_workload,
    measure_config,
    select_config,
    service_config_space,
)

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

NUM_NODES = 100 if SMOKE else 200
EDGE_PROBABILITY = 0.08
EPSILON = 0.005
NUM_CLIENTS = 4 if SMOKE else 6
REQUESTS_PER_CLIENT = 3 if SMOKE else 4
MAX_ITERATIONS = 20
SEED = 0
RUN_TIMEOUT_SECONDS = 120.0


def _workload():
    graph = random_graph(NUM_NODES, EDGE_PROBABILITY, seed=7)
    coupling = synthetic_residual_matrix(epsilon=EPSILON)
    return make_mixed_workload(graph, coupling, seed=SEED,
                               num_clients=NUM_CLIENTS,
                               requests_per_client=REQUESTS_PER_CLIENT,
                               max_iterations=MAX_ITERATIONS)


def test_tune_measure_config(benchmark):
    """One measured drive of the default config; registry-sourced gates."""
    workload = _workload()
    default = service_config_space().default_config()

    metrics = measure_config(workload, default)
    updates = sum(1 for r in workload.requests if r["op"] == "update")
    assert metrics.requests == len(workload.requests)
    assert metrics.updates == updates
    assert metrics.queries == len(workload.requests) - updates
    assert metrics.sweeps > 0, "engine sweep counter never moved"
    assert metrics.cache_hits + metrics.cache_misses == metrics.queries
    assert metrics.p99_seconds > 0 and metrics.throughput_rps > 0

    table = ResultTable(
        f"Tune — one measured drive, {len(workload.requests)} requests, "
        f"{NUM_CLIENTS} clients")
    table.add_row(nodes=NUM_NODES, requests=metrics.requests,
                  queries=metrics.queries, sweeps=metrics.sweeps,
                  p99_ms=metrics.p99_seconds * 1e3,
                  throughput_rps=metrics.throughput_rps)
    benchmark.pedantic(lambda: measure_config(workload, default),
                       rounds=3, iterations=1)
    attach_table(benchmark, table)


def test_tune_ablation_sweep(benchmark):
    """Full sweep + selection: determinism and no-worse-than-default."""
    runner = AblationRunner(_workload(),
                            run_timeout_seconds=RUN_TIMEOUT_SECONDS)
    baseline, runs = runner.run_ablation()
    assert baseline.ok, baseline.error
    report = build_report(baseline, runs)

    # Determinism: an identically-seeded second sweep must produce the
    # same run IDs in the same order with the same statuses, and the
    # same set of measured-vs-skipped report rows.  (Rank order depends
    # on wall-clock timings, so it is asserted in tests/tune with an
    # injected deterministic measure, not here.)
    rerun = AblationRunner(_workload(),
                           run_timeout_seconds=RUN_TIMEOUT_SECONDS)
    baseline2, runs2 = rerun.run_ablation()
    assert baseline2.run_id == baseline.run_id
    assert [(p, v, r.run_id, r.status == "skipped")
            for p, v, r in runs2] == \
           [(p, v, r.run_id, r.status == "skipped") for p, v, r in runs]

    # No-worse-than-default: coordinate descent only accepts Pareto
    # dominators, so the selected config's measured p99/throughput must
    # weakly dominate the baseline's.  Reuses the first runner's
    # memoised records — only accepted-move follow-ups re-measure.
    selection = select_config(runner, rounds=1, margin=0.02)
    assert selection.selected.metrics.p99_seconds \
        <= selection.baseline.metrics.p99_seconds
    assert selection.selected.metrics.throughput_rps \
        >= selection.baseline.metrics.throughput_rps

    # The emitted artifact must round-trip through the consumption path.
    service = PropagationService.from_config(selection.artifact())
    assert service.default_spec is not None
    service.close()

    measured = sum(1 for _, _, r in runs if r.ok)
    skipped = sum(1 for _, _, r in runs if r.status == "skipped")
    table = ResultTable(
        f"Tune — ablation sweep, {len(runs)} one-knob variants")
    table.add_row(nodes=NUM_NODES, variants=len(runs), measured=measured,
                  skipped=skipped,
                  top_knob=report.ranking()[0],
                  baseline_p99_ms=baseline.metrics.p99_seconds * 1e3,
                  selected_p99_ms=(
                      selection.selected.metrics.p99_seconds * 1e3),
                  improved=selection.improved)
    # The benchmark statistic is one fresh full one-factor sweep.
    benchmark.pedantic(
        lambda: AblationRunner(
            _workload(),
            run_timeout_seconds=RUN_TIMEOUT_SECONDS).run_ablation(),
        rounds=1, iterations=1)
    attach_table(benchmark, table)
