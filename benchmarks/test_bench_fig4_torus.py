"""Benchmark E1 — Fig. 4 / Example 20: the torus convergence study.

Regenerates the four panels of Fig. 4 (standardized beliefs and standard
deviations of node v4 for BP, LinBP, LinBP* and SBP across the coupling
scale) and times one full sweep.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import attach_table
from repro.experiments import run_torus_sweep, torus_reference_values


def test_fig4_torus_sweep(benchmark):
    epsilons = np.round(np.logspace(np.log10(0.01), np.log10(0.6), 8), 6).tolist()
    table = benchmark.pedantic(run_torus_sweep, kwargs={"epsilons": epsilons},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    reference = torus_reference_values()
    # The reproduced series must converge to the SBP limit quoted in the paper.
    first_row = table.rows[0]
    assert np.allclose(first_row["linbp_std_beliefs"],
                       reference["sbp_standardized_v4"], atol=0.01)
    # And the divergence point must match the exact criterion (0.488).
    for row in table.rows:
        if row["epsilon"] < 0.45:
            assert row["linbp_converged"]
        if row["epsilon"] > 0.52:
            assert not row["linbp_converged"]
