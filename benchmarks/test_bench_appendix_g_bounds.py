"""Benchmark E12 — Appendix G: convergence-bound comparison.

Regenerates the comparison between the exact LinBP/LinBP* thresholds and the
Mooij–Kappen sufficient bound for standard BP, including the empirical
observation ``ρ(A_edge) + 1 ≈ ρ(A)``.
"""

from __future__ import annotations

from benchmarks.conftest import attach_table
from repro.experiments import run_bound_comparison


def test_appendix_g_bound_comparison(benchmark, bench_max_index):
    max_index = min(bench_max_index, 2)
    table = benchmark.pedantic(run_bound_comparison,
                               kwargs={"max_index": max_index},
                               rounds=1, iterations=1)
    attach_table(benchmark, table)
    for row in table.rows:
        # rho(A_edge) < rho(A), with a gap of roughly one on these graphs.
        assert row["rho_edge_adjacency"] < row["rho_adjacency"]
        assert 0.3 < row["rho_gap"] < 2.5
        # On multi-class network workloads the LinBP* criterion admits a wider
        # range of couplings than the Mooij-Kappen BP bound (c(H) > rho(H)).
        assert row["linbp_star_epsilon_threshold"] > row["mooij_kappen_epsilon_threshold"]
