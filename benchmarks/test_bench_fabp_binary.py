"""Benchmark E13 — Appendix E: the binary-case (FABP) closed form.

Times the scalar k = 2 closed form against the general multi-class LinBP
closed form on the same workload and checks they produce identical scores
(the appendix's equivalence), with the scalar solver being at least as fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fabp import binary_coupling, fabp_closed_form
from repro.core.linbp import linbp_closed_form
from repro.graphs import random_graph

H_RESIDUAL = 0.05


@pytest.fixture(scope="module")
def binary_workload():
    graph = random_graph(800, 0.008, seed=11)
    rng = np.random.default_rng(5)
    scalars = np.zeros(graph.num_nodes)
    labeled = rng.choice(graph.num_nodes, size=40, replace=False)
    scalars[labeled] = rng.choice([-0.1, 0.1], size=labeled.size)
    return graph, scalars


@pytest.mark.benchmark(group="fabp-binary")
def test_binary_scalar_closed_form(benchmark, binary_workload):
    graph, scalars = binary_workload
    result = benchmark(fabp_closed_form, graph, H_RESIDUAL, scalars,
                       variant="linbp")
    assert result.shape == (graph.num_nodes,)


@pytest.mark.benchmark(group="fabp-binary")
def test_binary_via_multiclass_closed_form(benchmark, binary_workload):
    graph, scalars = binary_workload
    explicit = np.column_stack([scalars, -scalars])
    coupling = binary_coupling(H_RESIDUAL)
    result = benchmark(linbp_closed_form, graph, coupling, explicit)
    scalar_reference = fabp_closed_form(graph, H_RESIDUAL, scalars, variant="linbp")
    assert np.allclose(result.beliefs[:, 0], scalar_reference, atol=1e-9)
