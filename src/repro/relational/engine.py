"""Relational operators: selection, projection, joins, aggregation.

Together with :class:`repro.relational.table.Table` this forms the substrate
on which the paper's SQL programs (Algorithms 1–4 and the queries of Fig. 9)
are expressed.  Only the operators those programs need are provided:

* :func:`select` — σ with an arbitrary per-row predicate or equality filters;
* :func:`project` — π onto a subset of columns (optionally renamed);
* :func:`equi_join` — a hash join on equality of one or more column pairs;
* :func:`anti_join` — ``NOT EXISTS`` / ``NOT IN`` filtering (used for the
  ``¬G(t, _)`` literals in Algorithms 2–4);
* :func:`aggregate` — GROUP BY with SUM / MIN / MAX / COUNT aggregates over
  an arbitrary expression of the joined row;
* :func:`union_all` — bag union of union-compatible tables.

Every operator returns a new :class:`Table`; inputs are never modified.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import RelationalError, SchemaError
from repro.relational.table import Table

__all__ = [
    "select",
    "project",
    "equi_join",
    "anti_join",
    "aggregate",
    "union_all",
    "open_backend",
    "run_propagation",
]

RowDict = Dict[str, Any]


def select(table: Table, predicate: Optional[Callable[[RowDict], bool]] = None,
           name: str = "select", **equals: Any) -> Table:
    """σ: keep rows satisfying ``predicate`` and/or the keyword equality filters.

    ``select(table, v=3)`` keeps the rows whose column ``v`` equals 3;
    ``select(table, lambda r: r["g"] < 2)`` applies an arbitrary predicate.
    """
    for column in equals:
        table.column_index(column)  # raise early on unknown columns
    result = Table(name, table.columns)
    rows = []
    for row in table:
        record = dict(zip(table.columns, row))
        if equals and not all(record[column] == value for column, value in equals.items()):
            continue
        if predicate is not None and not predicate(record):
            continue
        rows.append(row)
    result.insert_rows(rows)
    return result


def project(table: Table, columns: Sequence[str],
            rename: Optional[Mapping[str, str]] = None,
            distinct: bool = False, name: str = "project") -> Table:
    """π: keep (and optionally rename) a subset of columns.

    With ``distinct=True`` duplicate output rows are removed (SELECT DISTINCT).
    """
    rename = dict(rename or {})
    indices = [table.column_index(column) for column in columns]
    output_columns = [rename.get(column, column) for column in columns]
    result = Table(name, output_columns)
    seen = set()
    rows = []
    for row in table:
        values = tuple(row[i] for i in indices)
        if distinct:
            if values in seen:
                continue
            seen.add(values)
        rows.append(values)
    result.insert_rows(rows)
    return result


def _qualified_columns(left: Table, right: Table) -> List[str]:
    """Output schema of a join: right-hand columns that collide get a prefix."""
    columns = list(left.columns)
    for column in right.columns:
        if column in left.columns:
            columns.append(f"{right.name}.{column}")
        else:
            columns.append(column)
    return columns


def equi_join(left: Table, right: Table, on: Sequence[Tuple[str, str]],
              name: str = "join") -> Table:
    """Hash join on equality of the given (left_column, right_column) pairs.

    The output contains every column of both inputs; right-hand columns whose
    name collides with a left-hand column are prefixed with the right table's
    name (``"B.b"``), mirroring SQL's qualified column names.
    """
    if not on:
        raise RelationalError("equi_join needs at least one join column pair")
    left_indices = [left.column_index(l) for l, _ in on]
    right_indices = [right.column_index(r) for _, r in on]
    # Build the hash table on the smaller input.
    build_on_right = right.num_rows <= left.num_rows
    build, probe = (right, left) if build_on_right else (left, right)
    build_indices = right_indices if build_on_right else left_indices
    probe_indices = left_indices if build_on_right else right_indices
    buckets: Dict[Tuple[Any, ...], List[Tuple[Any, ...]]] = {}
    for row in build:
        key = tuple(row[i] for i in build_indices)
        buckets.setdefault(key, []).append(row)
    output_columns = _qualified_columns(left, right)
    result = Table(name, output_columns)
    rows = []
    for probe_row in probe:
        key = tuple(probe_row[i] for i in probe_indices)
        for build_row in buckets.get(key, ()):
            left_row, right_row = (probe_row, build_row) if build_on_right \
                else (build_row, probe_row)
            rows.append(tuple(left_row) + tuple(right_row))
    result.insert_rows(rows)
    return result


def anti_join(left: Table, right: Table, on: Sequence[Tuple[str, str]],
              right_predicate: Optional[Callable[[RowDict], bool]] = None,
              name: str = "anti_join") -> Table:
    """Rows of ``left`` with no matching row in ``right`` (NOT EXISTS).

    ``on`` lists (left_column, right_column) equality pairs.  When
    ``right_predicate`` is given, only right-hand rows satisfying it count as
    matches — this expresses literals like ``¬(G(t, g_t), g_t < i)`` from
    Algorithm 3, where the negated atom carries an extra comparison.
    """
    if not on:
        raise RelationalError("anti_join needs at least one join column pair")
    left_indices = [left.column_index(l) for l, _ in on]
    right_indices = [right.column_index(r) for _, r in on]
    keys = set()
    for row in right:
        if right_predicate is not None:
            record = dict(zip(right.columns, row))
            if not right_predicate(record):
                continue
        keys.add(tuple(row[i] for i in right_indices))
    result = Table(name, left.columns)
    result.insert_rows(row for row in left
                       if tuple(row[i] for i in left_indices) not in keys)
    return result


_AGGREGATES: Dict[str, Callable[[List[float]], float]] = {
    "sum": lambda values: sum(values),
    "min": lambda values: min(values),
    "max": lambda values: max(values),
    "count": lambda values: len(values),
    "avg": lambda values: sum(values) / len(values),
}


def aggregate(table: Table, group_by: Sequence[str],
              aggregations: Mapping[str, Tuple[str, Callable[[RowDict], Any]]],
              name: str = "aggregate") -> Table:
    """GROUP BY with one or more aggregates.

    Parameters
    ----------
    table:
        Input relation.
    group_by:
        Columns to group on (may be empty for a single global group).
    aggregations:
        Mapping ``output_column -> (function_name, expression)`` where
        ``function_name`` is one of ``sum``, ``min``, ``max``, ``count``,
        ``avg`` and ``expression`` maps a row dictionary to the value being
        aggregated — e.g. ``{"b": ("sum", lambda r: r["w"] * r["b"] * r["h"])}``
        expresses ``sum(w * b * h)`` from Algorithm 1.
    """
    for column in group_by:
        table.column_index(column)
    for output_column, (function_name, _) in aggregations.items():
        if function_name not in _AGGREGATES:
            raise RelationalError(
                f"unknown aggregate {function_name!r} for column {output_column!r}; "
                f"supported: {sorted(_AGGREGATES)}")
    group_indices = [table.column_index(column) for column in group_by]
    groups: Dict[Tuple[Any, ...], Dict[str, List[Any]]] = {}
    for row in table:
        record = dict(zip(table.columns, row))
        key = tuple(row[i] for i in group_indices)
        bucket = groups.setdefault(key, {column: [] for column in aggregations})
        for output_column, (_, expression) in aggregations.items():
            bucket[output_column].append(expression(record))
    output_columns = list(group_by) + list(aggregations)
    result = Table(name, output_columns)
    rows = []
    for key, bucket in groups.items():
        aggregated = tuple(_AGGREGATES[function_name](bucket[output_column])
                           for output_column, (function_name, _) in aggregations.items())
        rows.append(tuple(key) + aggregated)
    result.insert_rows(rows)
    return result


def union_all(tables: Iterable[Table], name: str = "union_all") -> Table:
    """Bag union of union-compatible tables (same number of columns).

    Column names are taken from the first table; subsequent tables only need
    matching arity, mirroring SQL's positional UNION ALL semantics.
    """
    tables = list(tables)
    if not tables:
        raise RelationalError("union_all needs at least one input table")
    first = tables[0]
    result = Table(name, first.columns)
    for table in tables:
        if len(table.columns) != len(first.columns):
            raise SchemaError(
                f"union_all: table {table.name!r} has {len(table.columns)} columns, "
                f"expected {len(first.columns)}")
        result.insert_rows(table.rows)
    return result


# ---------------------------------------------------------------------- #
# execution-backend dispatch
# ---------------------------------------------------------------------- #
def open_backend(backend: str = "python", database: str = ":memory:"):
    """Open an execution backend for the relational LinBP/SBP programs.

    ``backend`` selects where the relational program actually runs:
    ``"python"`` (these in-memory operators), ``"sqlite"`` (the stdlib SQL
    engine, optionally disk-backed via ``database``) or ``"duckdb"`` (the
    optional columnar engine).  Unknown names raise
    :class:`~repro.exceptions.UnknownBackendError`; a known backend whose
    driver is missing raises
    :class:`~repro.exceptions.BackendUnavailableError` — never a bare
    ``KeyError`` or ``ModuleNotFoundError``.
    """
    from repro.relational.backends import get_backend

    return get_backend(backend, database=database)


def run_propagation(graph, coupling, explicit_residuals, method: str = "linbp",
                    backend: str = "python", database: str = ":memory:",
                    max_iterations: int = 100, tolerance: float = 1e-10,
                    num_iterations=None):
    """Run one relational propagation query on the chosen execution backend.

    The one-stop entry point behind ``repro label --backend``: loads the
    graph into the backend, runs ``method`` (``"linbp"``, ``"linbp*"`` or
    ``"sbp"``) and returns the usual
    :class:`~repro.core.results.PropagationResult`.  All failure modes
    surface as :mod:`repro.exceptions` types: unknown backend or method,
    unavailable driver, and out-of-order use.
    """
    from repro.exceptions import ValidationError

    method_key = method.lower()
    if method_key not in ("linbp", "linbp*", "sbp"):
        raise ValidationError(
            f"unknown relational method {method!r}; "
            "expected one of: linbp, linbp*, sbp")
    with open_backend(backend, database=database) as runner:
        runner.load_graph(graph, coupling, explicit_residuals)
        if method_key == "sbp":
            return runner.run_sbp()
        return runner.run_linbp(max_iterations=max_iterations,
                                tolerance=tolerance,
                                num_iterations=num_iterations,
                                echo_cancellation=(method_key == "linbp"))
