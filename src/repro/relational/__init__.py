"""In-memory relational engine and the paper's SQL-style LinBP/SBP programs."""

from repro.relational.engine import (
    aggregate,
    anti_join,
    equi_join,
    open_backend,
    project,
    run_propagation,
    select,
    union_all,
)
from repro.relational.linbp_sql import RelationalLinBP, linbp_sql
from repro.relational.sbp_incremental import add_edges_sql, add_explicit_beliefs_sql
from repro.relational.sbp_sql import RelationalSBP, sbp_sql
from repro.relational.schema import (
    adjacency_table,
    beliefs_to_matrix,
    coupling_squared_table,
    coupling_table,
    degree_table,
    explicit_belief_table,
    geodesic_to_vector,
    top_belief_query,
)
from repro.relational.table import Table

__all__ = [
    "aggregate",
    "anti_join",
    "equi_join",
    "project",
    "select",
    "union_all",
    "open_backend",
    "run_propagation",
    "RelationalLinBP",
    "linbp_sql",
    "add_edges_sql",
    "add_explicit_beliefs_sql",
    "RelationalSBP",
    "sbp_sql",
    "adjacency_table",
    "beliefs_to_matrix",
    "coupling_squared_table",
    "coupling_table",
    "degree_table",
    "explicit_belief_table",
    "geodesic_to_vector",
    "top_belief_query",
    "Table",
]
