"""Algorithms 3 and 4: incremental maintenance of the relational SBP result.

Both algorithms start from the relations left behind by Algorithm 2
(:class:`repro.relational.sbp_sql.RelationalSBP`) and repair only the part of
the ``G(v, g)`` / ``B(v, c, b)`` relations that the update affects:

* **Algorithm 3** (``ΔSBP: new explicit beliefs``): new labeled nodes enter
  with geodesic number 0; the update then radiates outwards level by level,
  visiting a node ``t`` at level ``i`` only when it is adjacent to a node
  updated at level ``i−1`` and its current geodesic number is not already
  smaller than ``i``.
* **Algorithm 4** (``ΔSBP: new edges``): newly inserted edges create "seed"
  nodes whose geodesic number shrinks (or whose shortest-path set changes);
  the repair then proceeds like Algorithm 3 but geodesic numbers may be
  rewritten more than once, exactly as discussed in Appendix C.

The *numeric core* — which nodes each wave visits and what their repaired
beliefs are — runs through the engine's vectorised frontier repairs
(:func:`repro.engine.sbp_plan.repair_explicit_beliefs` /
:func:`repro.engine.sbp_plan.repair_added_edges`): the relational state is
materialised into matrices once per update, repaired set-at-a-time, and
only the touched rows are written back to the ``G``/``B`` relations.  This
replaces the per-row join/aggregate pipeline the module used to interpret
in Python.  The resulting beliefs and geodesic numbers are identical; the
relations can differ in one representational corner only — a repaired
node whose parent contributions cancel to *exactly* zero keeps no ``B``
rows, where the old aggregate kept explicit ``0.0`` rows.

The return values use the shared :class:`~repro.core.results.PropagationResult`
container; ``extra['nodes_updated']`` reports the amount of repaired state,
which is the quantity behind the ΔSBP-vs-SBP crossover plots (Fig. 7e and
Fig. 10b); ``extra['rows_processed_update']`` counts the parent-edge rows
the repair read plus the belief rows it wrote.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.core.results import PropagationResult
from repro.engine.sbp_plan import (
    RepairStats,
    repair_added_edges,
    repair_explicit_beliefs,
)
from repro.exceptions import ValidationError
from repro.graphs.graph import Edge
from repro.relational import schema
from repro.relational.sbp_sql import RelationalSBP

__all__ = ["add_explicit_beliefs_sql", "add_edges_sql"]


def _require_state(runner: RelationalSBP) -> None:
    if runner.relation_b is None or runner.relation_g is None \
            or runner.relation_a is None or runner.relation_h is None:
        raise ValidationError("run() must be called before incremental updates")


def _materialize_state(runner: RelationalSBP) -> Tuple[np.ndarray, np.ndarray,
                                                       np.ndarray]:
    """Dense ``(beliefs, geodesic, explicit)`` mirrors of the relations.

    Materialised from the relations once, then cached on the runner: the
    repairs mutate these arrays in place, so subsequent ΔSBP calls skip
    the O(n) extraction and only pay for the repaired region (the cost
    Fig. 7e/10b measure).  :meth:`RelationalSBP.run` resets the cache.
    """
    if runner.dense_state is None:
        n = runner.graph.num_nodes
        k = runner.coupling.num_classes
        runner.dense_state = {
            "beliefs": schema.beliefs_to_matrix(runner.relation_b, n, k),
            "geodesic": schema.geodesic_to_vector(runner.relation_g, n),
            "explicit": schema.beliefs_to_matrix(runner.relation_e, n, k),
        }
    state = runner.dense_state
    return state["beliefs"], state["geodesic"], state["explicit"]


def _write_back(runner: RelationalSBP, beliefs: np.ndarray,
                geodesic: np.ndarray, stats: RepairStats) -> int:
    """Upsert the repaired ``G`` rows and rewrite the touched ``B`` rows.

    Only the nodes the repair touched are written; a touched node whose
    belief collapsed to all-zero (it lost its information source) keeps no
    ``B`` rows, matching the delete-then-upsert semantics of the original
    join pipeline.  Returns the number of belief rows written.
    """
    touched = stats.touched
    runner.relation_g.upsert(
        ((int(node), int(geodesic[node])) for node in touched),
        key_columns=("v",))
    touched_set = {int(node) for node in touched}
    runner.relation_b.delete_where(lambda r: r["v"] in touched_set)
    k = beliefs.shape[1]
    rows: List[Tuple[int, int, float]] = []
    for node in touched:
        node = int(node)
        row = beliefs[node]
        if geodesic[node] == 0 or np.any(row != 0.0):
            rows.extend((node, c, float(row[c])) for c in range(k))
    return runner.relation_b.insert_rows(rows)


def add_explicit_beliefs_sql(runner: RelationalSBP,
                             new_residuals: np.ndarray) -> PropagationResult:
    """Algorithm 3: incorporate new explicit beliefs into an SBP result.

    Parameters
    ----------
    runner:
        A :class:`RelationalSBP` whose :meth:`run` has already been called.
    new_residuals:
        ``n x k`` matrix whose non-zero rows are the new (or changed)
        explicit beliefs ``E_n``.
    """
    _require_state(runner)
    matrix = np.asarray(new_residuals, dtype=float)
    if matrix.shape != (runner.graph.num_nodes, runner.coupling.num_classes):
        raise ValidationError(
            f"new beliefs must be "
            f"{runner.graph.num_nodes} x {runner.coupling.num_classes}")
    relation_en = schema.explicit_belief_table(matrix, name="En")
    if relation_en.num_rows == 0:
        return runner._result(nodes_updated=0)
    beliefs, geodesic, explicit = _materialize_state(runner)
    nodes = np.nonzero(np.any(matrix != 0.0, axis=1))[0].astype(np.int64)
    stats = repair_explicit_beliefs(
        runner.graph.adjacency, geodesic, beliefs, explicit,
        runner.coupling.residual, nodes, matrix[nodes])
    runner.relation_e.upsert(relation_en.rows, key_columns=("v", "c"))
    rows_written = _write_back(runner, beliefs, geodesic, stats)
    runner._notify_update("explicit_beliefs", "SBP (SQL)",
                          nodes_updated=stats.nodes_updated,
                          num_labels=int(nodes.size))
    result = runner._result(nodes_updated=stats.nodes_updated)
    result.extra["rows_processed_update"] = stats.edges_touched + rows_written
    return result


def add_edges_sql(runner: RelationalSBP,
                  new_edges: Iterable[Tuple[int, int] | Tuple[int, int, float] | Edge]) -> PropagationResult:
    """Algorithm 4: incorporate new edges into an SBP result.

    The runner's graph and ``A`` relation are replaced by versions containing
    the added edges; geodesic numbers and beliefs are then repaired outwards
    from the seed nodes whose shortest paths the new edges change.
    """
    _require_state(runner)
    edges: List[Edge] = []
    for item in new_edges:
        if isinstance(item, Edge):
            edges.append(item)
        elif len(item) == 2:
            edges.append(Edge(int(item[0]), int(item[1]), 1.0))
        else:
            edges.append(Edge(int(item[0]), int(item[1]), float(item[2])))
    if not edges:
        return runner._result(nodes_updated=0)
    # Line 1: update the adjacency relation (and the bound graph).
    runner.graph = runner.graph.with_edges_added(edges)
    runner.relation_a = schema.adjacency_table(runner.graph)
    beliefs, geodesic, explicit = _materialize_state(runner)
    stats = repair_added_edges(
        runner.graph.adjacency, geodesic, beliefs, explicit,
        runner.coupling.residual,
        np.array([edge.source for edge in edges], dtype=np.int64),
        np.array([edge.target for edge in edges], dtype=np.int64))
    rows_written = _write_back(runner, beliefs, geodesic, stats)
    runner._notify_update("edges", "SBP (SQL)",
                          nodes_updated=stats.nodes_updated,
                          num_edges=len(edges))
    result = runner._result(nodes_updated=stats.nodes_updated)
    result.extra["rows_processed_update"] = stats.edges_touched + rows_written
    return result
