"""Algorithms 3 and 4: incremental maintenance of the relational SBP result.

Both algorithms start from the relations left behind by Algorithm 2
(:class:`repro.relational.sbp_sql.RelationalSBP`) and repair only the part of
the ``G(v, g)`` / ``B(v, c, b)`` relations that the update affects:

* **Algorithm 3** (``ΔSBP: new explicit beliefs``): new labeled nodes enter
  with geodesic number 0; the update then radiates outwards level by level,
  visiting a node ``t`` at level ``i`` only when it is adjacent to a node
  updated at level ``i−1`` and its current geodesic number is not already
  smaller than ``i``.
* **Algorithm 4** (``ΔSBP: new edges``): newly inserted edges create "seed"
  nodes whose geodesic number shrinks (or whose shortest-path set changes);
  the repair then proceeds like Algorithm 3 but geodesic numbers may be
  rewritten more than once, exactly as discussed in Appendix C.

The return values use the shared :class:`~repro.core.results.PropagationResult`
container; ``extra['nodes_updated']`` reports the amount of repaired state,
which is the quantity behind the ΔSBP-vs-SBP crossover plots (Fig. 7e and
Fig. 10b).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.graphs.graph import Edge, Graph
from repro.relational import schema
from repro.relational.engine import aggregate, anti_join, equi_join, project, select
from repro.relational.sbp_sql import RelationalSBP
from repro.relational.table import Table

__all__ = ["add_explicit_beliefs_sql", "add_edges_sql"]


def _require_state(runner: RelationalSBP) -> None:
    if runner.relation_b is None or runner.relation_g is None \
            or runner.relation_a is None or runner.relation_h is None:
        raise ValidationError("run() must be called before incremental updates")


def _recompute_beliefs_for(runner: RelationalSBP, frontier: Table,
                           level_of: Dict[int, int]) -> Tuple[int, int]:
    """Recompute beliefs for every node in ``frontier`` from its level−1 parents.

    ``level_of`` maps every node currently in ``G`` to its geodesic number;
    a frontier node at level ``g`` aggregates over incoming edges whose source
    is at level ``g − 1`` (regardless of whether that source was itself
    updated), which is line 6 of Algorithm 3 / Algorithm 4.

    Returns ``(rows_written, rows_processed)``.
    """
    rows_processed = 0
    # Join: frontier(v, g) ⋈ A(s, t=v, w) ⋈ B(s, c1, b) ⋈ H(c1, c2, h),
    # restricted to sources s with g_s = g_v − 1.
    incoming = equi_join(frontier, runner.relation_a, on=[("v", "t")], name="in_edges")
    rows_processed += incoming.num_rows
    if incoming.num_rows == 0:
        return 0, rows_processed
    parent_level_ok = select(
        incoming,
        predicate=lambda r: level_of.get(r["s"], -10) == r["g"] - 1,
        name="in_edges_prev")
    with_beliefs = equi_join(parent_level_ok, runner.relation_b, on=[("s", "v")],
                             name="in_B")
    rows_processed += with_beliefs.num_rows
    with_coupling = equi_join(with_beliefs, runner.relation_h, on=[("c", "c1")],
                              name="in_B_H")
    rows_processed += with_coupling.num_rows
    new_beliefs = aggregate(with_coupling, group_by=("v", "c2"),
                            aggregations={"b": ("sum",
                                                lambda r: r["w"] * r["b"] * r["h"])},
                            name="B_new")
    # Nodes in the frontier that have no qualifying parent at all must have
    # their old belief rows removed (they may become all-zero when their
    # previous source of information disappeared); nodes with new rows are
    # upserted.
    frontier_nodes = {row[0] for row in frontier}
    runner.relation_b.delete_where(lambda r: r["v"] in frontier_nodes)
    rows_written = runner.relation_b.insert_rows(new_beliefs.rows)
    return rows_written, rows_processed


def add_explicit_beliefs_sql(runner: RelationalSBP,
                             new_residuals: np.ndarray) -> PropagationResult:
    """Algorithm 3: incorporate new explicit beliefs into an SBP result.

    Parameters
    ----------
    runner:
        A :class:`RelationalSBP` whose :meth:`run` has already been called.
    new_residuals:
        ``n x k`` matrix whose non-zero rows are the new (or changed)
        explicit beliefs ``E_n``.
    """
    _require_state(runner)
    matrix = np.asarray(new_residuals, dtype=float)
    if matrix.shape != (runner.graph.num_nodes, runner.coupling.num_classes):
        raise ValidationError(
            f"new beliefs must be "
            f"{runner.graph.num_nodes} x {runner.coupling.num_classes}")
    relation_en = schema.explicit_belief_table(matrix, name="En")
    if relation_en.num_rows == 0:
        return runner._result(nodes_updated=0)
    rows_processed = 0
    nodes_updated = 0
    # Lines 1-2: new labeled nodes get geodesic number 0 and their beliefs.
    new_labeled = project(relation_en, ("v",), distinct=True, name="Gn")
    runner.relation_g.upsert(((row[0], 0) for row in new_labeled),
                             key_columns=("v",))
    labeled_nodes = {row[0] for row in new_labeled}
    runner.relation_b.delete_where(lambda r: r["v"] in labeled_nodes)
    runner.relation_b.insert_rows(relation_en.rows)
    runner.relation_e.upsert(relation_en.rows, key_columns=("v", "c"))
    nodes_updated += len(labeled_nodes)
    # Lines 4-8: radiate the update outwards.
    frontier_nodes = labeled_nodes
    level = 1
    while frontier_nodes:
        level_of = {row[0]: row[1] for row in runner.relation_g}
        # Line 5: neighbours of the previous frontier whose geodesic number is
        # not already smaller than the current level.
        frontier_table = Table("Gn_prev", ("v", "g"))
        frontier_table.insert_rows((node, level - 1) for node in sorted(frontier_nodes))
        reachable = equi_join(frontier_table, runner.relation_a, on=[("v", "s")],
                              name="reach")
        rows_processed += reachable.num_rows
        candidates = project(reachable, ("t",), rename={"t": "v"}, distinct=True,
                             name="candidates")
        next_nodes = {row[0] for row in candidates
                      if level_of.get(row[0], level) >= level}
        if not next_nodes:
            break
        runner.relation_g.upsert(((node, level) for node in sorted(next_nodes)),
                                 key_columns=("v",))
        level_of.update({node: level for node in next_nodes})
        next_frontier_table = Table("Gn", ("v", "g"))
        next_frontier_table.insert_rows((node, level) for node in sorted(next_nodes))
        # Line 6: recompute their beliefs from all level−1 parents.
        _, processed = _recompute_beliefs_for(runner, next_frontier_table, level_of)
        rows_processed += processed
        nodes_updated += len(next_nodes)
        frontier_nodes = next_nodes
        level += 1
    result = runner._result(nodes_updated=nodes_updated)
    result.extra["rows_processed_update"] = rows_processed
    return result


def add_edges_sql(runner: RelationalSBP,
                  new_edges: Iterable[Tuple[int, int] | Tuple[int, int, float] | Edge]) -> PropagationResult:
    """Algorithm 4: incorporate new edges into an SBP result.

    The runner's graph and ``A`` relation are replaced by versions containing
    the added edges; geodesic numbers and beliefs are then repaired outwards
    from the seed nodes whose shortest paths the new edges change.
    """
    _require_state(runner)
    edges: List[Edge] = []
    for item in new_edges:
        if isinstance(item, Edge):
            edges.append(item)
        elif len(item) == 2:
            edges.append(Edge(int(item[0]), int(item[1]), 1.0))
        else:
            edges.append(Edge(int(item[0]), int(item[1]), float(item[2])))
    if not edges:
        return runner._result(nodes_updated=0)
    # Line 1: update the adjacency relation (and the bound graph).
    runner.graph = runner.graph.with_edges_added(edges)
    runner.relation_a = schema.adjacency_table(runner.graph)
    rows_processed = 0
    nodes_updated = 0
    level_of = {row[0]: row[1] for row in runner.relation_g}
    # Line 2: seed nodes — targets of new edges with a now-shorter (or first)
    # geodesic path, or an additional shortest path of the same length.
    seeds: Dict[int, int] = {}
    for edge in edges:
        for source, target in ((edge.source, edge.target),
                               (edge.target, edge.source)):
            if source not in level_of:
                continue
            candidate = level_of[source] + 1
            current = level_of.get(target)
            if current is None or candidate <= current:
                best = min(seeds.get(target, candidate), candidate)
                seeds[target] = best
    frontier: Dict[int, int] = {}
    for node, number in seeds.items():
        level_of[node] = number
        frontier[node] = number
    runner.relation_g.upsert(((node, number) for node, number in sorted(seeds.items())),
                             key_columns=("v",))
    # Lines 3-8: repair the frontier, then keep relaxing neighbours.
    while frontier:
        frontier_table = Table("Gn", ("v", "g"))
        frontier_table.insert_rows(sorted(frontier.items()))
        _, processed = _recompute_beliefs_for(runner, frontier_table, level_of)
        rows_processed += processed
        nodes_updated += len(frontier)
        next_frontier: Dict[int, int] = {}
        for node, number in frontier.items():
            start, end = (runner.graph.adjacency.indptr[node],
                          runner.graph.adjacency.indptr[node + 1])
            for neighbor in runner.graph.adjacency.indices[start:end]:
                neighbor = int(neighbor)
                candidate = number + 1
                current = level_of.get(neighbor)
                if current is None or candidate < current:
                    level_of[neighbor] = candidate
                    next_frontier[neighbor] = candidate
                elif candidate == current:
                    # A parent on a shortest path changed, so the child's
                    # belief needs a refresh even though its level is stable.
                    next_frontier.setdefault(neighbor, current)
        if next_frontier:
            runner.relation_g.upsert(
                ((node, number) for node, number in sorted(next_frontier.items())),
                key_columns=("v",))
        frontier = next_frontier
    result = runner._result(nodes_updated=nodes_updated)
    result.extra["rows_processed_update"] = rows_processed
    return result
