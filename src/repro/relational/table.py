"""A small in-memory relational table.

The paper implements LinBP and SBP in standard SQL (Section 5.3, Section 6.3)
to make the point that both algorithms need nothing beyond joins, group-by
aggregates and iteration.  To reproduce those implementations without an
external DBMS, :mod:`repro.relational` provides a deliberately small
relational engine; this module contains its storage layer.

A :class:`Table` is a named, ordered collection of columns holding Python
values (ints, floats, strings).  Tables are immutable from the outside —
every operator in :mod:`repro.relational.engine` returns a new table — except
for the explicit :meth:`Table.insert_rows` and :meth:`Table.upsert` mutators
that Algorithms 2–4 need for their working relations.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SchemaError, ValidationError

__all__ = ["Table"]

Row = Tuple[Any, ...]


class Table:
    """A named relation with a fixed column schema and a list of rows.

    Parameters
    ----------
    name:
        Relation name, used in error messages and ``repr``.
    columns:
        Ordered column names (must be unique).
    rows:
        Optional initial rows; each row must have one value per column.
    """

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Optional[Iterable[Sequence[Any]]] = None):
        if not columns:
            raise SchemaError("a table needs at least one column")
        if len(set(columns)) != len(columns):
            raise SchemaError(f"duplicate column names in {list(columns)!r}")
        self.name = name
        self.columns: Tuple[str, ...] = tuple(columns)
        self._index_of: Dict[str, int] = {c: i for i, c in enumerate(self.columns)}
        self._rows: List[Row] = []
        if rows is not None:
            self.insert_rows(rows)

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def num_rows(self) -> int:
        """Number of rows currently stored."""
        return len(self._rows)

    @property
    def rows(self) -> List[Row]:
        """The rows as a list of tuples (a shallow copy)."""
        return list(self._rows)

    def column_index(self, column: str) -> int:
        """Position of ``column`` in the schema (raises on unknown columns)."""
        try:
            return self._index_of[column]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {column!r}; "
                f"available: {list(self.columns)}") from None

    def column_values(self, column: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.column_index(column)
        return [row[index] for row in self._rows]

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return f"Table({self.name!r}, columns={list(self.columns)}, rows={len(self)})"

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by column name (for tests/debugging)."""
        return [dict(zip(self.columns, row)) for row in self._rows]

    # ------------------------------------------------------------------ #
    # mutation (used by the working relations of Algorithms 2-4)
    # ------------------------------------------------------------------ #
    def insert_rows(self, rows: Iterable[Sequence[Any]]) -> int:
        """Append rows; returns how many rows were inserted."""
        count = 0
        width = len(self.columns)
        for row in rows:
            values = tuple(row)
            if len(values) != width:
                raise ValidationError(
                    f"row {values!r} has {len(values)} values, "
                    f"table {self.name!r} expects {width}")
            self._rows.append(values)
            count += 1
        return count

    def insert_dicts(self, records: Iterable[Mapping[str, Any]]) -> int:
        """Append rows given as dictionaries keyed by column name."""
        return self.insert_rows(
            tuple(record[column] for column in self.columns) for record in records)

    def upsert(self, rows: Iterable[Sequence[Any]], key_columns: Sequence[str]) -> int:
        """Insert rows, replacing existing rows that match on ``key_columns``.

        This is the ``!Q(...)`` operation of the paper's Datalog notation
        (Fig. 9d): a record is either inserted or an existing one updated.
        Returns the number of rows written (inserted plus replaced).
        """
        key_indices = [self.column_index(column) for column in key_columns]
        position_of_key: Dict[Tuple[Any, ...], int] = {}
        for position, existing in enumerate(self._rows):
            position_of_key[tuple(existing[i] for i in key_indices)] = position
        written = 0
        width = len(self.columns)
        for row in rows:
            values = tuple(row)
            if len(values) != width:
                raise ValidationError(
                    f"row {values!r} has {len(values)} values, "
                    f"table {self.name!r} expects {width}")
            key = tuple(values[i] for i in key_indices)
            if key in position_of_key:
                self._rows[position_of_key[key]] = values
            else:
                position_of_key[key] = len(self._rows)
                self._rows.append(values)
            written += 1
        return written

    def delete_where(self, predicate) -> int:
        """Delete rows for which ``predicate(row_dict)`` is true; returns the count."""
        kept: List[Row] = []
        deleted = 0
        for row in self._rows:
            if predicate(dict(zip(self.columns, row))):
                deleted += 1
            else:
                kept.append(row)
        self._rows = kept
        return deleted

    def clear(self) -> None:
        """Remove all rows (schema is kept)."""
        self._rows = []

    def copy(self, name: Optional[str] = None) -> "Table":
        """A deep-enough copy (rows are immutable tuples)."""
        duplicate = Table(name or self.name, self.columns)
        duplicate._rows = list(self._rows)
        return duplicate
