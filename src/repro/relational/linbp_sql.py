"""Algorithm 1: LinBP expressed with joins and group-by aggregates.

This is the paper's "disk-bound" implementation of LinBP (Section 5.3,
Corollary 10), translated literally onto the in-memory relational engine.
Per iteration it evaluates the two aggregate queries

.. code-block:: text

    V1(t, c2, sum(w * b * h)) :- A(s, t, w), B(s, c1, b), H(c1, c2, h)
    V2(s, c2, sum(d * b * h)) :- D(s, d),   B(s, c1, b), H2(c1, c2, h)

and then refreshes the final-belief relation with

.. code-block:: text

    B(v, c, b1 + b2 - b3) :- E(v, c, b1), V1(v, c, b2), V2(v, c, b3)

implemented — per the paper's footnote 15 — as a UNION ALL of the three
relations (the V2 contribution negated) followed by a grouping on ``(v, c)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.relational import schema
from repro.relational.engine import aggregate, equi_join, project, union_all
from repro.relational.table import Table

__all__ = ["RelationalLinBP", "linbp_sql"]


@dataclass
class RelationalLinBP:
    """LinBP runner over the relational engine (Algorithm 1).

    Parameters
    ----------
    graph:
        The undirected, possibly weighted network.
    coupling:
        The scaled residual coupling matrix ``Ĥ``.
    echo_cancellation:
        False drops the ``V2`` query, giving the relational form of LinBP*.
    """

    graph: Graph
    coupling: CouplingMatrix
    echo_cancellation: bool = True
    #: Filled by :meth:`run`: number of joined rows processed per iteration.
    rows_processed_per_iteration: List[int] = field(default_factory=list)

    def run(self, explicit_residuals: np.ndarray, num_iterations: int = 5,
            tolerance: Optional[float] = None) -> PropagationResult:
        """Run Algorithm 1 for ``num_iterations`` iterations.

        When ``tolerance`` is given the iteration stops early once the largest
        belief change between two iterations falls below it (the stopping rule
        mentioned at the end of Section 5.3).
        """
        if num_iterations < 1:
            raise ValidationError("num_iterations must be >= 1")
        explicit = np.asarray(explicit_residuals, dtype=float)
        if explicit.shape != (self.graph.num_nodes, self.coupling.num_classes):
            raise ValidationError(
                f"explicit beliefs must be "
                f"{self.graph.num_nodes} x {self.coupling.num_classes}")
        relation_a = schema.adjacency_table(self.graph)
        relation_e = schema.explicit_belief_table(explicit)
        relation_h = schema.coupling_table(self.coupling)
        relation_d = schema.degree_table(relation_a)
        relation_h2 = schema.coupling_squared_table(relation_h)
        # Line 1: initialise the final beliefs with the explicit beliefs.
        relation_b = relation_e.copy("B")
        self.rows_processed_per_iteration = []
        history: List[float] = []
        previous = schema.beliefs_to_matrix(relation_b, self.graph.num_nodes,
                                            self.coupling.num_classes)
        iterations_done = 0
        for iteration in range(1, num_iterations + 1):
            iterations_done = iteration
            relation_b, rows_processed = self._iterate(
                relation_a, relation_b, relation_d, relation_e,
                relation_h, relation_h2)
            self.rows_processed_per_iteration.append(rows_processed)
            current = schema.beliefs_to_matrix(relation_b, self.graph.num_nodes,
                                               self.coupling.num_classes)
            change = float(np.max(np.abs(current - previous))) if current.size else 0.0
            history.append(change)
            previous = current
            if tolerance is not None and change < tolerance:
                break
        return PropagationResult(
            beliefs=previous,
            method="LinBP (SQL)" if self.echo_cancellation else "LinBP* (SQL)",
            iterations=iterations_done,
            converged=bool(tolerance is not None and history and history[-1] < tolerance),
            residual_history=history,
            extra={"rows_processed_per_iteration": list(self.rows_processed_per_iteration),
                   "echo_cancellation": self.echo_cancellation,
                   "epsilon": self.coupling.epsilon},
        )

    # ------------------------------------------------------------------ #
    # one iteration of Algorithm 1 (lines 3-4)
    # ------------------------------------------------------------------ #
    def _iterate(self, relation_a: Table, relation_b: Table, relation_d: Table,
                 relation_e: Table, relation_h: Table, relation_h2: Table):
        rows_processed = 0
        # V1(t, c2, sum(w * b * h)) :- A(s, t, w), B(s, c1, b), H(c1, c2, h)
        a_join_b = equi_join(relation_a, relation_b, on=[("s", "v")], name="AB")
        rows_processed += a_join_b.num_rows
        a_b_h = equi_join(a_join_b, relation_h, on=[("c", "c1")], name="ABH")
        rows_processed += a_b_h.num_rows
        view1 = aggregate(a_b_h, group_by=("t", "c2"),
                          aggregations={"b": ("sum",
                                              lambda r: r["w"] * r["b"] * r["h"])},
                          name="V1")
        view1 = project(view1, ("t", "c2", "b"),
                        rename={"t": "v", "c2": "c"}, name="V1")
        contributions = [relation_e.copy("E_pos"), view1]
        if self.echo_cancellation:
            # V2(s, c2, sum(d * b * h)) :- D(s, d), B(s, c1, b), H2(c1, c2, h)
            d_join_b = equi_join(relation_d, relation_b, on=[("s", "v")], name="DB")
            rows_processed += d_join_b.num_rows
            d_b_h2 = equi_join(d_join_b, relation_h2, on=[("c", "c1")], name="DBH2")
            rows_processed += d_b_h2.num_rows
            view2 = aggregate(d_b_h2, group_by=("s", "c2"),
                              aggregations={"b": ("sum",
                                                  lambda r: -r["d"] * r["b"] * r["h"])},
                              name="V2")
            view2 = project(view2, ("s", "c2", "b"),
                            rename={"s": "v", "c2": "c"}, name="V2")
            contributions.append(view2)
        # B(v, c, b1 + b2 - b3): UNION ALL of the contributions, then SUM.
        combined = union_all(contributions, name="B_parts")
        rows_processed += combined.num_rows
        updated = aggregate(combined, group_by=("v", "c"),
                            aggregations={"b": ("sum", lambda r: r["b"])},
                            name="B")
        return updated.copy("B"), rows_processed


def linbp_sql(graph: Graph, coupling: CouplingMatrix,
              explicit_residuals: np.ndarray, num_iterations: int = 5,
              echo_cancellation: bool = True,
              tolerance: Optional[float] = None) -> PropagationResult:
    """Functional one-shot interface to :class:`RelationalLinBP`."""
    runner = RelationalLinBP(graph, coupling, echo_cancellation=echo_cancellation)
    return runner.run(explicit_residuals, num_iterations=num_iterations,
                      tolerance=tolerance)
