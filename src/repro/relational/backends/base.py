"""Backend interface plus the shared SQL program for real database engines.

The paper's headline systems claim (Section 5.3, Section 6.3) is that LinBP
and SBP need nothing beyond standard SQL: joins, GROUP BY aggregates, and a
client loop.  :class:`PropagationBackend` is the engine-neutral interface —
``connect`` / ``load_graph`` / ``run_linbp`` / ``run_sbp`` /
``fetch_beliefs`` — and :class:`SQLBackend` is its generic DB-API driver:
every query the sweeps need is plain portable SQL, so the concrete SQLite
and DuckDB backends only supply a connection and a version string.

The compiled SQL program per algorithm:

* **LinBP** (Algorithm 1, zero-start semantics of
  :func:`repro.engine.batch.run_batch`) — one ``UPDATE beliefs ... FROM``
  per iteration whose source is the UNION ALL of the explicit beliefs, the
  neighbour join-aggregate ``A ⋈ B ⋈ Ĥ`` and (for LinBP, not LinBP*) the
  negated echo term ``D ⋈ B ⋈ Ĥ²``, grouped on ``(v, c)``.  The stopping
  test ``MAX(ABS(b − b_prev))`` also runs in SQL, so convergence is decided
  without shipping beliefs to Python.
* **SBP** (Algorithm 2) — geodesic numbers via a recursive CTE (breadth
  bounded by ``n``, then ``MIN(g) GROUP BY v``), followed by one INSERT per
  level whose per-node segment sums are window functions
  (``SUM(...) OVER (PARTITION BY target, class)`` — the SQL analogue of the
  ``np.add.reduceat`` segment sum in :mod:`repro.engine.sbp_plan`).

Beliefs live in the database for the whole run: with ``materialize=False``
(and :meth:`top_labels`, which ranks beliefs with a window function) a graph
streamed onto disk is labeled without ever building the dense ``n × k``
belief matrix in Python — the out-of-core path the ROADMAP asks for.
"""

from __future__ import annotations

import abc
import itertools
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.results import PropagationResult
from repro.coupling.matrices import CouplingMatrix
from repro.exceptions import BackendStateError, ValidationError
from repro.graphs.graph import Graph

__all__ = ["PropagationBackend", "SQLBackend", "INSERT_CHUNK_ROWS"]

#: Rows per ``executemany`` chunk while streaming edges/beliefs into the
#: database — bounds Python-side memory regardless of graph size.
INSERT_CHUNK_ROWS = 10_000


def _chunks(rows: Iterable[Sequence[Any]], size: int = INSERT_CHUNK_ROWS
            ) -> Iterator[List[Sequence[Any]]]:
    iterator = iter(rows)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


class PropagationBackend(abc.ABC):
    """Engine-neutral execution backend for the relational LinBP/SBP programs.

    Concrete backends: the pure-Python :class:`~repro.relational.backends.
    python_backend.PythonTableBackend` (the paper's algorithms over the
    in-memory :class:`~repro.relational.table.Table` operators) and the real
    database :class:`SQLBackend` subclasses.  All of them implement the same
    zero-start LinBP semantics as :func:`repro.engine.batch.run_batch` and
    the same single-sweep SBP semantics as
    :func:`repro.engine.sbp_plan.run_sbp_batch`, so results — beliefs,
    iteration counts, convergence flags — are interchangeable across
    backends and with the in-memory engines.
    """

    #: Registry name ("python", "sqlite", "duckdb").
    name: str = "?"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can actually run in the current environment."""
        return True

    @classmethod
    def engine_version(cls) -> str:
        """Human-readable version of the underlying engine."""
        return "unknown"

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "PropagationBackend":
        """Open the backend (no-op for in-memory backends); returns self."""
        return self

    def close(self) -> None:
        """Release any held resources (idempotent)."""

    def __enter__(self) -> "PropagationBackend":
        return self.connect()

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # data loading and execution
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def load_graph(self, graph: Graph, coupling: CouplingMatrix,
                   explicit_residuals: np.ndarray) -> None:
        """Load a graph, coupling and explicit beliefs, replacing any state."""

    @abc.abstractmethod
    def run_linbp(self, max_iterations: int = 100, tolerance: float = 1e-10,
                  num_iterations: Optional[int] = None,
                  echo_cancellation: bool = True,
                  materialize: bool = True) -> PropagationResult:
        """Run LinBP sweeps to convergence (``run_batch`` semantics)."""

    @abc.abstractmethod
    def run_sbp(self, materialize: bool = True) -> PropagationResult:
        """Run the single-pass assignment (``run_sbp_batch`` semantics)."""

    @abc.abstractmethod
    def fetch_beliefs(self) -> np.ndarray:
        """The current beliefs as a dense ``n × k`` matrix."""

    @abc.abstractmethod
    def top_labels(self) -> Iterator[Tuple[int, int]]:
        """Stream ``(node, argmax class)`` pairs without densifying beliefs.

        Nodes whose belief row is entirely zero (unreached, unlabeled) are
        omitted — the streaming analogue of the ``−1`` rows of
        :meth:`repro.core.results.PropagationResult.hard_labels`.
        """

    # ------------------------------------------------------------------ #
    # shared validation
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def is_loaded(self) -> bool:
        """True once a graph has been loaded (or restored from disk)."""

    def _require_loaded(self) -> None:
        if not self.is_loaded:
            raise BackendStateError(
                f"backend {self.name!r} has no graph loaded; call "
                "load_graph() (or open a database that already holds one) "
                "before running sweeps or fetching beliefs")

    @staticmethod
    def _check_iteration_args(max_iterations: int, tolerance: float,
                              num_iterations: Optional[int]) -> int:
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        if num_iterations is not None and num_iterations < 1:
            raise ValidationError("num_iterations must be >= 1")
        return num_iterations if num_iterations is not None else max_iterations


# ---------------------------------------------------------------------- #
# the shared SQL program
# ---------------------------------------------------------------------- #
# Section 5.3's relations: edges == A(s,t,w) (both directions), explicit ==
# E(v,c,b), coupling == H(c1,c2,h) holding the *scaled* residual coupling,
# plus the derived degrees == D(v,d) and coupling_sq == H2.  ``beliefs`` /
# ``beliefs_prev`` are the ping-pong pair of the iteration, dense over
# nodes x classes exactly like the engine's buffers.
_TABLES = ("meta", "nodes", "classes", "edges", "explicit", "coupling",
           "coupling_sq", "degrees", "beliefs", "beliefs_prev", "geodesic")

_CREATE_SCHEMA = [
    "CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL)",
    "CREATE TABLE nodes (v INTEGER PRIMARY KEY)",
    "CREATE TABLE classes (c INTEGER PRIMARY KEY)",
    "CREATE TABLE edges (s INTEGER NOT NULL, t INTEGER NOT NULL, "
    "w DOUBLE PRECISION NOT NULL)",
    "CREATE TABLE explicit (v INTEGER NOT NULL, c INTEGER NOT NULL, "
    "b DOUBLE PRECISION NOT NULL, PRIMARY KEY (v, c))",
    "CREATE TABLE coupling (c1 INTEGER NOT NULL, c2 INTEGER NOT NULL, "
    "h DOUBLE PRECISION NOT NULL, PRIMARY KEY (c1, c2))",
    "CREATE TABLE coupling_sq (c1 INTEGER NOT NULL, c2 INTEGER NOT NULL, "
    "h DOUBLE PRECISION NOT NULL, PRIMARY KEY (c1, c2))",
    "CREATE TABLE degrees (v INTEGER PRIMARY KEY, d DOUBLE PRECISION NOT NULL)",
    "CREATE TABLE beliefs (v INTEGER NOT NULL, c INTEGER NOT NULL, "
    "b DOUBLE PRECISION NOT NULL, PRIMARY KEY (v, c))",
    "CREATE TABLE beliefs_prev (v INTEGER NOT NULL, c INTEGER NOT NULL, "
    "b DOUBLE PRECISION NOT NULL, PRIMARY KEY (v, c))",
    "CREATE TABLE geodesic (v INTEGER PRIMARY KEY, g INTEGER NOT NULL)",
    "CREATE INDEX idx_edges_s ON edges (s)",
    "CREATE INDEX idx_edges_t ON edges (t)",
]

#: 0..n-1 without client-side row generation (works in SQLite and DuckDB).
_FILL_NODES = """
INSERT INTO nodes (v)
WITH RECURSIVE seq(v) AS (
    SELECT 0 WHERE ? > 0
    UNION ALL
    SELECT v + 1 FROM seq WHERE v + 1 < ?
)
SELECT v FROM seq
"""

#: D(s, sum(w*w)) :- A(s, t, w)  — the Section 5.2 squared-weight degrees.
_FILL_DEGREES = """
INSERT INTO degrees (v, d)
SELECT s, SUM(w * w) FROM edges GROUP BY s
"""

#: H2 via the self-join of Eq. 20 / Fig. 9a.
_FILL_COUPLING_SQ = """
INSERT INTO coupling_sq (c1, c2, h)
SELECT a.c1, b.c2, SUM(a.h * b.h)
FROM coupling AS a JOIN coupling AS b ON a.c2 = b.c1
GROUP BY a.c1, b.c2
"""

#: Dense zero beliefs — the engine's B^0 = 0 start (run_batch semantics).
_RESET_BELIEFS = [
    "DELETE FROM beliefs",
    "INSERT INTO beliefs (v, c, b) "
    "SELECT nodes.v, classes.c, 0.0 FROM nodes CROSS JOIN classes",
]

_STAGE_PREVIOUS = [
    "DELETE FROM beliefs_prev",
    "INSERT INTO beliefs_prev (v, c, b) SELECT v, c, b FROM beliefs",
]

#: One LinBP iteration (Algorithm 1, lines 3-4) as a single UPDATE ... FROM
#: whose source unions the three contributions of footnote 15 and groups on
#: (v, c).  Rows absent from the source belong to edgeless unlabeled nodes,
#: whose belief is identically zero — exactly what the UPDATE leaves behind.
_LINBP_ECHO_TERM = """
        UNION ALL
        SELECT d.v AS v, h2.c2 AS c, -(d.d * p.b * h2.h) AS b
        FROM degrees AS d
        JOIN beliefs_prev AS p ON p.v = d.v
        JOIN coupling_sq AS h2 ON h2.c1 = p.c"""

_LINBP_UPDATE_TEMPLATE = """
UPDATE beliefs SET b = src.b
FROM (
    SELECT parts.v AS v, parts.c AS c, SUM(parts.b) AS b
    FROM (
        SELECT v, c, b FROM explicit
        UNION ALL
        SELECT e.t AS v, h.c2 AS c, e.w * p.b * h.h AS b
        FROM edges AS e
        JOIN beliefs_prev AS p ON p.v = e.s
        JOIN coupling AS h ON h.c1 = p.c{echo_term}
    ) AS parts
    GROUP BY parts.v, parts.c
) AS src
WHERE beliefs.v = src.v AND beliefs.c = src.c
"""

LINBP_UPDATE_SQL = _LINBP_UPDATE_TEMPLATE.format(echo_term=_LINBP_ECHO_TERM)
LINBP_STAR_UPDATE_SQL = _LINBP_UPDATE_TEMPLATE.format(echo_term="")

#: The stopping test of Section 5.3 — evaluated inside the database.
_MAX_CHANGE = """
SELECT MAX(ABS(beliefs.b - beliefs_prev.b))
FROM beliefs JOIN beliefs_prev
    ON beliefs_prev.v = beliefs.v AND beliefs_prev.c = beliefs.c
"""

#: Geodesic numbers as a recursive CTE: breadth-first walks from the labeled
#: seeds, deduplicated per (node, depth) by UNION and bounded by n (every
#: true geodesic number is < n), then collapsed to the minimum depth.  This
#: is Lemma 17's level partition computed entirely inside the database.
_GEODESIC_CTE = """
INSERT INTO geodesic (v, g)
WITH RECURSIVE walk(v, g) AS (
    SELECT DISTINCT v, 0 FROM explicit
    UNION
    SELECT e.t, walk.g + 1
    FROM walk JOIN edges AS e ON e.s = walk.v
    WHERE walk.g + 1 < ?
)
SELECT v, MIN(g) FROM walk GROUP BY v
"""

#: Level 0 of Algorithm 2: labeled nodes take their explicit beliefs.
_SBP_SEED = [
    "DELETE FROM beliefs",
    "INSERT INTO beliefs (v, c, b) SELECT v, c, b FROM explicit",
]

#: One geodesic level of Algorithm 2, line 5.  The per-(node, class) segment
#: sum over qualifying parent edges — parents exactly one level below, each
#: edge read once — is a window aggregate (SUM OVER PARTITION BY), the SQL
#: analogue of the reduceat segment sum in repro.engine.sbp_plan; the
#: ROW_NUMBER pick keeps one representative row per segment.
SBP_LEVEL_SQL = """
INSERT INTO beliefs (v, c, b)
SELECT v, c, b FROM (
    SELECT cur.v AS v, h.c2 AS c,
           SUM(e.w * p.b * h.h) OVER (PARTITION BY cur.v, h.c2) AS b,
           ROW_NUMBER() OVER (PARTITION BY cur.v, h.c2) AS member
    FROM geodesic AS cur
    JOIN edges AS e ON e.t = cur.v
    JOIN geodesic AS prev ON prev.v = e.s AND prev.g = cur.g - 1
    JOIN beliefs AS p ON p.v = e.s
    JOIN coupling AS h ON h.c1 = p.c
    WHERE cur.g = ?
) AS contributions
WHERE member = 1
"""

#: Fig. 9b's top-belief query as a window rank: the argmax class per node
#: (first class on exact ties, matching np.argmax), skipping all-zero rows.
_TOP_LABELS = """
SELECT v, c FROM (
    SELECT v, c,
           ROW_NUMBER() OVER (PARTITION BY v ORDER BY b DESC, c ASC) AS pick,
           MAX(ABS(b)) OVER (PARTITION BY v) AS magnitude
    FROM beliefs
) AS ranked
WHERE pick = 1 AND magnitude > 0
ORDER BY v
"""


class SQLBackend(PropagationBackend):
    """Generic DB-API 2.0 driver for the shared SQL program.

    Subclasses provide :meth:`_open` (a new connection in autocommit mode —
    the driver manages transactions explicitly with BEGIN/COMMIT/ROLLBACK)
    and :meth:`engine_version`.  Everything else — schema, loading, the
    LinBP/SBP sweeps, convergence, label extraction — is portable SQL
    shared by SQLite and DuckDB.

    Parameters
    ----------
    database:
        ``":memory:"`` (default) or a filesystem path.  A path persists the
        graph and beliefs: reopening the same path restores the loaded
        state without calling :meth:`load_graph` again.
    """

    def __init__(self, database: str = ":memory:"):
        self.database = str(database)
        self._connection = None
        self.num_nodes: Optional[int] = None
        self.num_classes: Optional[int] = None
        self.epsilon: Optional[float] = None

    # ------------------------------------------------------------------ #
    # dialect hooks
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def _open(self):
        """Open and return a DB-API connection in autocommit mode."""

    @classmethod
    @abc.abstractmethod
    def engine_version(cls) -> str:
        """Human-readable version of the underlying engine."""

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def connect(self) -> "SQLBackend":
        """Open the connection (idempotent) and restore persisted metadata."""
        if self._connection is None:
            self._connection = self._open()
            self._restore_meta()
        return self

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    @property
    def is_loaded(self) -> bool:
        return self.num_nodes is not None

    # ------------------------------------------------------------------ #
    # low-level execution helpers
    # ------------------------------------------------------------------ #
    def _cursor(self):
        self.connect()
        return self._connection.cursor()

    def _execute(self, sql: str, parameters: Sequence[Any] = ()):
        cursor = self._cursor()
        cursor.execute(sql, tuple(parameters))
        return cursor

    def _scalar(self, sql: str, parameters: Sequence[Any] = ()):
        row = self._execute(sql, parameters).fetchone()
        return None if row is None else row[0]

    @contextmanager
    def _transaction(self):
        """All-or-nothing execution: roll the database back on any error.

        A sweep that fails mid-iteration must not leave half-updated
        beliefs behind — the previous consistent state (freshly loaded, or
        the last completed run) survives the rollback.
        """
        cursor = self._cursor()
        cursor.execute("BEGIN")
        try:
            yield cursor
        except BaseException:
            self._connection.rollback()
            raise
        self._connection.commit()

    def _table_exists(self, table: str) -> bool:
        try:
            self._execute(f"SELECT 1 FROM {table} LIMIT 1")
        except Exception:
            return False
        return True

    def _restore_meta(self) -> None:
        """Adopt the loaded-graph state persisted in an existing database."""
        if not self._table_exists("meta"):
            return
        values: Dict[str, str] = dict(
            self._execute("SELECT key, value FROM meta").fetchall())
        if "num_nodes" in values and "num_classes" in values:
            self.num_nodes = int(values["num_nodes"])
            self.num_classes = int(values["num_classes"])
            self.epsilon = float(values.get("epsilon", "nan"))

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def load_graph(self, graph: Graph, coupling: CouplingMatrix,
                   explicit_residuals: np.ndarray) -> None:
        """Load an in-memory :class:`Graph` (convenience over load_stream)."""
        explicit = np.asarray(explicit_residuals, dtype=float)
        if explicit.shape != (graph.num_nodes, coupling.num_classes):
            raise ValidationError(
                f"explicit beliefs must be "
                f"{graph.num_nodes} x {coupling.num_classes}, "
                f"got {explicit.shape}")
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        explicit_rows = ((int(node), int(cls), float(explicit[node, cls]))
                         for node in labeled
                         for cls in range(coupling.num_classes))
        edges = ((edge.source, edge.target, edge.weight)
                 for edge in graph.edges())
        self.load_stream(edges, explicit_rows, coupling, graph.num_nodes)

    def load_stream(self, edges: Iterable[Tuple[int, int, float]],
                    explicit_rows: Iterable[Tuple[int, int, float]],
                    coupling: CouplingMatrix, num_nodes: int) -> None:
        """Stream a graph into the database without materializing it.

        ``edges`` yields undirected ``(source, target, weight)`` triples
        (both directions are stored, like the relation ``A``);
        ``explicit_rows`` yields ``(node, class, residual belief)`` rows for
        the labeled nodes.  Both are consumed in bounded chunks, so graphs
        larger than RAM can be loaded onto a disk-backed database.
        """
        if num_nodes < 0:
            raise ValidationError("num_nodes must be non-negative")
        residual = np.asarray(coupling.residual, dtype=float)
        k = residual.shape[0]
        with self._transaction() as cursor:
            for table in _TABLES:
                cursor.execute(f"DROP TABLE IF EXISTS {table}")
            cursor.execute("DROP INDEX IF EXISTS idx_edges_s")
            cursor.execute("DROP INDEX IF EXISTS idx_edges_t")
            for statement in _CREATE_SCHEMA:
                cursor.execute(statement)
            cursor.execute(_FILL_NODES, (num_nodes, num_nodes))
            cursor.executemany("INSERT INTO classes (c) VALUES (?)",
                               [(c,) for c in range(k)])
            for chunk in _chunks(edges):
                directed = [(int(s), int(t), float(w)) for s, t, w in chunk]
                directed += [(t, s, w) for s, t, w in directed]
                cursor.executemany(
                    "INSERT INTO edges (s, t, w) VALUES (?, ?, ?)", directed)
            for chunk in _chunks(explicit_rows):
                cursor.executemany(
                    "INSERT INTO explicit (v, c, b) VALUES (?, ?, ?)",
                    [(int(v), int(c), float(b)) for v, c, b in chunk])
            cursor.executemany(
                "INSERT INTO coupling (c1, c2, h) VALUES (?, ?, ?)",
                [(i, j, float(residual[i, j]))
                 for i in range(k) for j in range(k)])
            cursor.execute(_FILL_COUPLING_SQ)
            cursor.execute(_FILL_DEGREES)
            for statement in _RESET_BELIEFS:
                cursor.execute(statement)
            cursor.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [("num_nodes", str(int(num_nodes))),
                 ("num_classes", str(k)),
                 ("epsilon", repr(float(coupling.epsilon)))])
        self.num_nodes = int(num_nodes)
        self.num_classes = k
        self.epsilon = float(coupling.epsilon)

    # ------------------------------------------------------------------ #
    # LinBP
    # ------------------------------------------------------------------ #
    def run_linbp(self, max_iterations: int = 100, tolerance: float = 1e-10,
                  num_iterations: Optional[int] = None,
                  echo_cancellation: bool = True,
                  materialize: bool = True) -> PropagationResult:
        """Run LinBP (or LinBP*) sweeps inside the database.

        Semantics mirror :func:`repro.engine.batch.run_batch` for a single
        query: beliefs start at zero, every iteration applies Eq. 6 (or
        Eq. 7 without the echo term), and the run stops once the maximum
        belief change drops below ``tolerance`` — or after exactly
        ``num_iterations`` sweeps when that is given.  The whole run is one
        transaction: a failure mid-sweep rolls back to the pre-run state.
        """
        budget = self._check_iteration_args(max_iterations, tolerance,
                                            num_iterations)
        self._require_loaded()
        fixed_iterations = num_iterations is not None
        update_sql = LINBP_UPDATE_SQL if echo_cancellation \
            else LINBP_STAR_UPDATE_SQL
        history: List[float] = []
        iterations = 0
        converged = False
        with self._transaction() as cursor:
            for statement in _RESET_BELIEFS:
                cursor.execute(statement)
            for _ in range(budget):
                iterations += 1
                for statement in _STAGE_PREVIOUS:
                    cursor.execute(statement)
                cursor.execute(update_sql)
                cursor.execute(_MAX_CHANGE)
                row = cursor.fetchone()
                change = float(row[0]) if row and row[0] is not None else 0.0
                history.append(change)
                if not fixed_iterations and change < tolerance:
                    converged = True
                    break
        if fixed_iterations:
            converged = bool(history and history[-1] < tolerance)
        beliefs = self.fetch_beliefs() if materialize \
            else np.zeros((0, self.num_classes))
        return PropagationResult(
            beliefs=beliefs,
            method=("LinBP" if echo_cancellation else "LinBP*")
                   + f" ({self.name})",
            iterations=iterations,
            converged=converged,
            residual_history=history,
            extra={"engine": f"sql-{self.name}",
                   "backend": self.name,
                   "database": self.database,
                   "echo_cancellation": bool(echo_cancellation),
                   "epsilon": self.epsilon,
                   "materialized": bool(materialize)},
        )

    # ------------------------------------------------------------------ #
    # SBP
    # ------------------------------------------------------------------ #
    def run_sbp(self, materialize: bool = True) -> PropagationResult:
        """Run the single-pass assignment (Algorithm 2) inside the database.

        Geodesic numbers come from the recursive CTE; each level ``g ≥ 1``
        is one window-function INSERT reading only the edges from level
        ``g − 1`` (every edge propagates at most once — the "single pass").
        Matches :func:`repro.engine.sbp_plan.run_sbp_batch`: level-0 nodes
        keep their explicit beliefs, unreachable nodes stay zero.
        """
        self._require_loaded()
        with self._transaction() as cursor:
            cursor.execute("DELETE FROM geodesic")
            cursor.execute(_GEODESIC_CTE, (max(self.num_nodes, 1),))
            for statement in _SBP_SEED:
                cursor.execute(statement)
            cursor.execute("SELECT MAX(g) FROM geodesic")
            row = cursor.fetchone()
            max_level = int(row[0]) if row and row[0] is not None else -1
            for level in range(1, max_level + 1):
                cursor.execute(SBP_LEVEL_SQL, (level,))
        beliefs = self.fetch_beliefs() if materialize \
            else np.zeros((0, self.num_classes))
        return PropagationResult(
            beliefs=beliefs,
            method=f"SBP ({self.name})",
            iterations=max(0, max_level),
            converged=True,
            residual_history=[],
            extra={"engine": f"sql-{self.name}",
                   "backend": self.name,
                   "database": self.database,
                   "geodesic_numbers": self.fetch_geodesic_numbers(),
                   "epsilon": self.epsilon,
                   "materialized": bool(materialize)},
        )

    # ------------------------------------------------------------------ #
    # reading results back
    # ------------------------------------------------------------------ #
    def fetch_beliefs(self) -> np.ndarray:
        """The beliefs relation as a dense ``n × k`` matrix (zeros default)."""
        self._require_loaded()
        matrix = np.zeros((self.num_nodes, self.num_classes))
        cursor = self._execute("SELECT v, c, b FROM beliefs")
        for v, c, b in cursor:
            matrix[v, c] = b
        return matrix

    def fetch_geodesic_numbers(self) -> np.ndarray:
        """Geodesic numbers per node (−1 for unreached), from the last SBP run."""
        self._require_loaded()
        numbers = np.full(self.num_nodes, -1, dtype=np.int64)
        for v, g in self._execute("SELECT v, g FROM geodesic"):
            numbers[v] = g
        return numbers

    def iter_beliefs(self) -> Iterator[Tuple[int, int, float]]:
        """Stream ``(node, class, belief)`` rows straight off the cursor."""
        self._require_loaded()
        for v, c, b in self._execute("SELECT v, c, b FROM beliefs ORDER BY v, c"):
            yield int(v), int(c), float(b)

    def top_labels(self) -> Iterator[Tuple[int, int]]:
        self._require_loaded()
        for v, c in self._execute(_TOP_LABELS):
            yield int(v), int(c)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def table_counts(self) -> Dict[str, int]:
        """Row counts of every backend table (capability report / debugging)."""
        counts = {}
        for table in _TABLES:
            if self._table_exists(table):
                counts[table] = int(self._scalar(f"SELECT COUNT(*) FROM {table}"))
        return counts
