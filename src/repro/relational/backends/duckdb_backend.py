"""DuckDB execution backend — optional, gated behind a capability check.

DuckDB is a columnar OLAP engine whose vectorized hash joins make the
per-iteration join-aggregate dramatically faster on large graphs, but it is
an optional third-party dependency.  The import happens lazily inside
:meth:`DuckDBBackend._open`, so merely registering the backend (or printing
``repro sql-info``) never requires the package; selecting it without the
package installed raises :class:`~repro.exceptions.BackendUnavailableError`
— an :class:`ImportError` subclass with an actionable message — instead of
leaking a bare ``ModuleNotFoundError`` from deep inside a sweep.

The SQL program itself is unchanged from :class:`SQLBackend`: DuckDB
supports ``UPDATE ... FROM``, recursive CTEs, window functions and the
``?`` DB-API placeholder style, so no dialect translation is needed.
"""

from __future__ import annotations

import importlib
import importlib.util

from repro.exceptions import BackendUnavailableError
from repro.relational.backends.base import SQLBackend

__all__ = ["DuckDBBackend"]


class DuckDBBackend(SQLBackend):
    """LinBP/SBP over DuckDB (requires the ``duckdb`` package)."""

    name = "duckdb"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("duckdb") is not None

    @classmethod
    def engine_version(cls) -> str:
        if not cls.is_available():
            return "DuckDB (not installed)"
        duckdb = importlib.import_module("duckdb")
        return f"DuckDB {duckdb.__version__}"

    def _open(self):
        try:
            duckdb = importlib.import_module("duckdb")
        except ImportError as exc:
            raise BackendUnavailableError(
                "the duckdb backend requires the optional 'duckdb' package "
                "(pip install duckdb); use --backend sqlite for the "
                "dependency-free baseline") from exc
        return duckdb.connect(self.database)
