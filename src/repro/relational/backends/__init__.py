"""Pluggable execution backends for the relational LinBP/SBP programs.

The paper's claim (Section 5.3) is that linearized belief propagation needs
nothing beyond standard SQL.  This package makes the claim executable three
ways behind one interface:

* ``python`` — :class:`PythonTableBackend`, the paper's relational
  algorithms over the in-memory :class:`~repro.relational.table.Table`
  operators.  Always available; the reference point.
* ``sqlite`` — :class:`SQLiteBackend`, real SQL over the stdlib
  :mod:`sqlite3`.  Always available on any supported CPython; supports
  disk-backed databases for graphs larger than RAM.
* ``duckdb`` — :class:`DuckDBBackend`, the same SQL program over the
  optional DuckDB columnar engine; selected only when the package is
  installed, reported (not crashed on) when it is not.

:func:`get_backend` is the single entry point; it raises
:class:`~repro.exceptions.UnknownBackendError` for typos and
:class:`~repro.exceptions.BackendUnavailableError` (an ``ImportError``)
when a known backend's driver is missing.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.exceptions import UnknownBackendError
from repro.relational.backends.base import PropagationBackend, SQLBackend
from repro.relational.backends.duckdb_backend import DuckDBBackend
from repro.relational.backends.python_backend import PythonTableBackend
from repro.relational.backends.sqlite_backend import SQLiteBackend

__all__ = [
    "PropagationBackend",
    "SQLBackend",
    "PythonTableBackend",
    "SQLiteBackend",
    "DuckDBBackend",
    "BACKENDS",
    "get_backend",
    "available_backends",
    "backend_info",
]

#: Registry of every known backend, in preference order.
BACKENDS: Dict[str, Type[PropagationBackend]] = {
    "python": PythonTableBackend,
    "sqlite": SQLiteBackend,
    "duckdb": DuckDBBackend,
}


def get_backend(name: str, database: str = ":memory:") -> PropagationBackend:
    """Instantiate the backend registered under ``name``.

    Raises :class:`UnknownBackendError` for names outside the registry (the
    message lists the valid ones) and — on :meth:`connect` / first use —
    :class:`~repro.exceptions.BackendUnavailableError` when the backend
    exists but its driver is not installed.
    """
    try:
        backend_class = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(BACKENDS))
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered backends: {known}") from None
    return backend_class(database=database)


def available_backends() -> List[str]:
    """Names of the backends usable right now, in registry order."""
    return [name for name, backend_class in BACKENDS.items()
            if backend_class.is_available()]


def backend_info() -> List[Dict[str, object]]:
    """Capability report for every registered backend (``repro sql-info``)."""
    report = []
    for name, backend_class in BACKENDS.items():
        report.append({
            "name": name,
            "available": bool(backend_class.is_available()),
            "engine": backend_class.engine_version(),
            "kind": "sql" if issubclass(backend_class, SQLBackend)
                    else "in-memory",
        })
    return report
