"""Pure-Python execution backend over the in-memory relational engine.

This backend runs the paper's Algorithm 1 and Algorithm 2 over the
:class:`~repro.relational.table.Table` operators — the same relational
programs as :mod:`repro.relational.linbp_sql` and
:mod:`repro.relational.sbp_sql` — but with the *zero-start* iteration
semantics of :func:`repro.engine.batch.run_batch` (``B⁰ = 0``, so the first
sweep produces ``B¹ = Ê``).  The historical :class:`RelationalLinBP` runner
initialises ``B = E`` before its first sweep and is therefore always one
iteration ahead; aligning the backend with the engine makes iteration
counts and convergence flags directly comparable across every backend and
the in-memory engines, which is what the cross-backend differential suite
asserts.

It is the reference point of the backend family: always available, no SQL
engine involved, and bit-for-bit checkable against the dense engines.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

import numpy as np

from repro.core.results import PropagationResult
from repro.coupling.matrices import CouplingMatrix
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.relational import schema
from repro.relational.backends.base import PropagationBackend
from repro.relational.linbp_sql import RelationalLinBP
from repro.relational.sbp_sql import RelationalSBP
from repro.relational.table import Table

__all__ = ["PythonTableBackend"]


class PythonTableBackend(PropagationBackend):
    """LinBP/SBP over the in-memory :class:`Table` operators (no database)."""

    name = "python"

    def __init__(self, database: str = ":memory:"):
        if database != ":memory:":
            raise ValidationError(
                "the python backend is in-memory only and cannot persist to "
                f"{database!r}; use --backend sqlite for a disk-backed run")
        self.database = database
        self._graph: Optional[Graph] = None
        self._coupling: Optional[CouplingMatrix] = None
        self._explicit: Optional[np.ndarray] = None
        self._beliefs: Optional[np.ndarray] = None

    @classmethod
    def is_available(cls) -> bool:
        return True

    @classmethod
    def engine_version(cls) -> str:
        return "pure-Python Table operators"

    @property
    def is_loaded(self) -> bool:
        return self._graph is not None

    # ------------------------------------------------------------------ #
    # loading
    # ------------------------------------------------------------------ #
    def load_graph(self, graph: Graph, coupling: CouplingMatrix,
                   explicit_residuals: np.ndarray) -> None:
        explicit = np.asarray(explicit_residuals, dtype=float)
        if explicit.shape != (graph.num_nodes, coupling.num_classes):
            raise ValidationError(
                f"explicit beliefs must be "
                f"{graph.num_nodes} x {coupling.num_classes}, "
                f"got {explicit.shape}")
        self._graph = graph
        self._coupling = coupling
        self._explicit = explicit
        self._beliefs = np.zeros_like(explicit)

    # ------------------------------------------------------------------ #
    # LinBP
    # ------------------------------------------------------------------ #
    def run_linbp(self, max_iterations: int = 100, tolerance: float = 1e-10,
                  num_iterations: Optional[int] = None,
                  echo_cancellation: bool = True,
                  materialize: bool = True) -> PropagationResult:
        budget = self._check_iteration_args(max_iterations, tolerance,
                                            num_iterations)
        self._require_loaded()
        fixed_iterations = num_iterations is not None
        runner = RelationalLinBP(self._graph, self._coupling,
                                 echo_cancellation=echo_cancellation)
        relation_a = schema.adjacency_table(self._graph)
        relation_e = schema.explicit_belief_table(self._explicit)
        relation_h = schema.coupling_table(self._coupling)
        relation_d = schema.degree_table(relation_a)
        relation_h2 = schema.coupling_squared_table(relation_h)
        # B^0 = 0: start from an *empty* belief relation (zero-start).
        relation_b = Table("B", ("v", "c", "b"))
        shape = (self._graph.num_nodes, self._coupling.num_classes)
        previous = np.zeros(shape)
        history: List[float] = []
        iterations = 0
        converged = False
        for _ in range(budget):
            iterations += 1
            relation_b, _ = runner._iterate(
                relation_a, relation_b, relation_d, relation_e,
                relation_h, relation_h2)
            current = schema.beliefs_to_matrix(relation_b, *shape)
            change = float(np.max(np.abs(current - previous))) \
                if current.size else 0.0
            history.append(change)
            previous = current
            if not fixed_iterations and change < tolerance:
                converged = True
                break
        if fixed_iterations:
            converged = bool(history and history[-1] < tolerance)
        self._beliefs = previous
        return PropagationResult(
            beliefs=previous if materialize else np.zeros((0, shape[1])),
            method=("LinBP" if echo_cancellation else "LinBP*")
                   + f" ({self.name})",
            iterations=iterations,
            converged=converged,
            residual_history=history,
            extra={"engine": "table-python",
                   "backend": self.name,
                   "echo_cancellation": bool(echo_cancellation),
                   "epsilon": self._coupling.epsilon,
                   "materialized": bool(materialize)},
        )

    # ------------------------------------------------------------------ #
    # SBP
    # ------------------------------------------------------------------ #
    def run_sbp(self, materialize: bool = True) -> PropagationResult:
        self._require_loaded()
        runner = RelationalSBP(self._graph, self._coupling)
        result = runner.run(self._explicit)
        self._beliefs = result.beliefs
        return PropagationResult(
            beliefs=result.beliefs if materialize
                    else np.zeros((0, self._coupling.num_classes)),
            method=f"SBP ({self.name})",
            iterations=max(0, result.iterations),
            converged=True,
            residual_history=[],
            extra={"engine": "table-python",
                   "backend": self.name,
                   "geodesic_numbers": result.extra["geodesic_numbers"],
                   "epsilon": self._coupling.epsilon,
                   "materialized": bool(materialize)},
        )

    # ------------------------------------------------------------------ #
    # reading results back
    # ------------------------------------------------------------------ #
    def fetch_beliefs(self) -> np.ndarray:
        self._require_loaded()
        return np.array(self._beliefs, dtype=float)

    def top_labels(self) -> Iterator[Tuple[int, int]]:
        self._require_loaded()
        beliefs = self._beliefs
        for node in range(beliefs.shape[0]):
            row = beliefs[node]
            if np.any(row != 0.0):
                yield node, int(np.argmax(row))
