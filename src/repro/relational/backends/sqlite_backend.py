"""SQLite execution backend — the always-available stdlib baseline.

SQLite ships with CPython, so this backend needs nothing beyond the
standard library.  The only dialect requirement is ``UPDATE ... FROM``
(SQLite ≥ 3.33, released 2020); :func:`SQLiteBackend.is_available` checks
the linked library version so older interpreters degrade to a capability
report instead of a syntax error mid-sweep.

With ``database=":memory:"`` runs are ephemeral; with a filesystem path the
graph, coupling and beliefs persist — reopening the same path restores the
loaded state, and disk-backed databases are how graphs larger than RAM get
labeled (see ``docs/performance.md``).
"""

from __future__ import annotations

import sqlite3

from repro.exceptions import BackendUnavailableError
from repro.relational.backends.base import SQLBackend

__all__ = ["SQLiteBackend"]

#: UPDATE ... FROM landed in SQLite 3.33.0.
_MIN_VERSION = (3, 33, 0)


class SQLiteBackend(SQLBackend):
    """LinBP/SBP over the stdlib :mod:`sqlite3` module."""

    name = "sqlite"

    @classmethod
    def is_available(cls) -> bool:
        return sqlite3.sqlite_version_info >= _MIN_VERSION

    @classmethod
    def engine_version(cls) -> str:
        return f"SQLite {sqlite3.sqlite_version}"

    def _open(self) -> sqlite3.Connection:
        if not self.is_available():
            raise BackendUnavailableError(
                f"the sqlite backend needs SQLite >= "
                f"{'.'.join(map(str, _MIN_VERSION))} for UPDATE ... FROM; "
                f"this Python links SQLite {sqlite3.sqlite_version}")
        # isolation_level=None disables sqlite3's implicit transaction
        # management so the backend's explicit BEGIN/COMMIT/ROLLBACK in
        # SQLBackend._transaction is the only transaction boundary.
        return sqlite3.connect(self.database, isolation_level=None)
