"""Algorithm 2: the initial SBP belief assignment with joins and aggregates.

The relational SBP program maintains, next to the belief relation
``B(v, c, b)``, a relation ``G(v, g)`` with the geodesic number of every node
reached so far.  Starting from the explicitly labeled nodes (geodesic number
0), every iteration ``i``

1. finds the nodes reachable from the ``i−1`` frontier that are not yet in
   ``G`` (the ``¬G(t, _)`` anti-join), assigns them geodesic number ``i``, and
2. computes their beliefs from *only* the edges that come from the ``i−1``
   frontier — so every edge propagates information at most once, which is
   what the name "single-pass" refers to.

The iteration stops when no new node is added to ``G``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.core.events import UpdateNotifier
from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.relational import schema
from repro.relational.engine import aggregate, anti_join, equi_join, project, select
from repro.relational.table import Table

__all__ = ["RelationalSBP", "sbp_sql"]


@dataclass
class RelationalSBP(UpdateNotifier):
    """SBP runner over the relational engine (Algorithms 2 and 3).

    After :meth:`run`, the relations ``A``, ``B``, ``G``, ``E`` and ``H`` are
    kept on the instance so that the incremental update methods in
    :mod:`repro.relational.sbp_incremental` can continue from them.  Like
    the in-memory runners, it notifies registered update hooks
    (:class:`repro.core.events.UpdateNotifier`) after every mutation.
    """

    graph: Graph
    coupling: CouplingMatrix
    #: Working relations, populated by :meth:`run`.
    relation_a: Optional[Table] = None
    relation_b: Optional[Table] = None
    relation_g: Optional[Table] = None
    relation_e: Optional[Table] = None
    relation_h: Optional[Table] = None
    #: Number of joined rows processed per frontier iteration.
    rows_processed_per_iteration: List[int] = field(default_factory=list)
    #: Dense mirrors of the B/G/E relations kept current by the incremental
    #: updates (:mod:`repro.relational.sbp_incremental`) so repeated ΔSBP
    #: calls skip re-materialising O(n) state.  Reset by :meth:`run`; code
    #: that mutates ``relation_b``/``relation_g``/``relation_e`` directly
    #: must set ``dense_state = None`` to invalidate the mirrors.
    dense_state: Optional[Dict[str, np.ndarray]] = field(default=None,
                                                         repr=False)

    # ------------------------------------------------------------------ #
    # Algorithm 2: initial belief assignment
    # ------------------------------------------------------------------ #
    def run(self, explicit_residuals: np.ndarray) -> PropagationResult:
        """Compute the initial SBP assignment (Algorithm 2)."""
        explicit = np.asarray(explicit_residuals, dtype=float)
        if explicit.shape != (self.graph.num_nodes, self.coupling.num_classes):
            raise ValidationError(
                f"explicit beliefs must be "
                f"{self.graph.num_nodes} x {self.coupling.num_classes}")
        self.relation_a = schema.adjacency_table(self.graph)
        self.relation_e = schema.explicit_belief_table(explicit)
        self.relation_h = schema.coupling_table(self.coupling)
        # Line 1: geodesic number 0 and initial beliefs for labeled nodes.
        self.relation_g = Table("G", ("v", "g"))
        labeled = project(self.relation_e, ("v",), distinct=True)
        self.relation_g.insert_rows((row[0], 0) for row in labeled)
        self.relation_b = self.relation_e.copy("B")
        self.rows_processed_per_iteration = []
        self.dense_state = None
        # Lines 2-7: frontier expansion until G stops growing.
        iteration = 0
        while True:
            iteration += 1
            inserted, rows_processed = self._expand_frontier(iteration)
            self.rows_processed_per_iteration.append(rows_processed)
            if inserted == 0:
                break
        return self._result()

    def _expand_frontier(self, iteration: int) -> Tuple[int, int]:
        """One iteration of lines 4-5 of Algorithm 2.

        Returns ``(new_nodes, rows_processed)``.
        """
        rows_processed = 0
        # Line 4: G(t, i) :- G(s, i-1), A(s, t, _), not G(t, _)
        frontier = select(self.relation_g, g=iteration - 1, name="frontier")
        reachable = equi_join(frontier, self.relation_a, on=[("v", "s")],
                              name="reach")
        rows_processed += reachable.num_rows
        candidates = project(reachable, ("t",), rename={"t": "v"},
                             distinct=True, name="candidates")
        new_nodes = anti_join(candidates, self.relation_g, on=[("v", "v")],
                              name="new_nodes")
        if new_nodes.num_rows == 0:
            return 0, rows_processed
        self.relation_g.insert_rows((row[0], iteration) for row in new_nodes)
        # Line 5: B(t, c2, sum(w*b*h)) :- G(t, i), A(s, t, w), B(s, c1, b),
        #                                 G(s, i-1), H(c1, c2, h)
        previous_frontier = select(self.relation_g, g=iteration - 1, name="Gprev")
        current_frontier = select(self.relation_g, g=iteration, name="Gcur")
        edges_from_previous = equi_join(previous_frontier, self.relation_a,
                                        on=[("v", "s")], name="A_from_prev")
        edges_into_current = equi_join(edges_from_previous, current_frontier,
                                       on=[("t", "v")], name="A_into_cur")
        rows_processed += edges_into_current.num_rows
        with_beliefs = equi_join(edges_into_current, self.relation_b,
                                 on=[("s", "v")], name="A_B")
        rows_processed += with_beliefs.num_rows
        with_coupling = equi_join(with_beliefs, self.relation_h,
                                  on=[("c", "c1")], name="A_B_H")
        rows_processed += with_coupling.num_rows
        new_beliefs = aggregate(with_coupling, group_by=("t", "c2"),
                                aggregations={"b": ("sum",
                                                    lambda r: r["w"] * r["b"] * r["h"])},
                                name="B_new")
        self.relation_b.insert_rows(
            (row[0], row[1], row[2]) for row in new_beliefs)
        return new_nodes.num_rows, rows_processed

    # ------------------------------------------------------------------ #
    # result packaging
    # ------------------------------------------------------------------ #
    def _result(self, nodes_updated: Optional[int] = None) -> PropagationResult:
        beliefs = schema.beliefs_to_matrix(self.relation_b, self.graph.num_nodes,
                                           self.coupling.num_classes)
        geodesic = schema.geodesic_to_vector(self.relation_g, self.graph.num_nodes)
        extra: Dict[str, object] = {
            "geodesic_numbers": geodesic,
            "rows_processed_per_iteration": list(self.rows_processed_per_iteration),
            "epsilon": self.coupling.epsilon,
        }
        if nodes_updated is not None:
            extra["nodes_updated"] = nodes_updated
        return PropagationResult(
            beliefs=beliefs,
            method="SBP (SQL)",
            iterations=int(geodesic.max()) if geodesic.size else 0,
            converged=True,
            residual_history=[],
            extra=extra,
        )


def sbp_sql(graph: Graph, coupling: CouplingMatrix,
            explicit_residuals: np.ndarray) -> PropagationResult:
    """Functional one-shot interface to :class:`RelationalSBP` (Algorithm 2)."""
    runner = RelationalSBP(graph, coupling)
    return runner.run(explicit_residuals)
