"""Relational schema of the paper's SQL implementations.

Section 5.3 stores the problem in three base relations plus two derived ones:

* ``A(s, t, w)``  — the weighted adjacency matrix (both directions of every
  undirected edge, exactly like the matrix ``A``);
* ``E(v, c, b)``  — the explicit (residual) beliefs of labeled nodes;
* ``H(c1, c2, h)`` — the residual coupling matrix ``Ĥ``;
* ``D(v, d)``     — per-node degrees, ``d = Σ w²`` (derived from ``A``);
* ``H2(c1, c2, h)`` — ``Ĥ²`` (derived from ``H``, Eq. 20 / Fig. 9a).

This module converts between the NumPy/:class:`~repro.graphs.graph.Graph`
world and these relations, and provides the final ``top belief`` query of
Fig. 9b.
"""

from __future__ import annotations

from typing import Dict, Set

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.relational.engine import aggregate, equi_join
from repro.relational.table import Table

__all__ = [
    "adjacency_table",
    "explicit_belief_table",
    "coupling_table",
    "degree_table",
    "coupling_squared_table",
    "beliefs_to_matrix",
    "geodesic_to_vector",
    "top_belief_query",
]


def adjacency_table(graph: Graph) -> Table:
    """``A(s, t, w)`` with one row per *directed* edge (both directions)."""
    table = Table("A", ("s", "t", "w"))
    table.insert_rows((edge.source, edge.target, edge.weight)
                      for edge in graph.directed_edges())
    return table


def explicit_belief_table(explicit_residuals: np.ndarray, name: str = "E") -> Table:
    """``E(v, c, b)`` holding only the non-zero rows (labeled nodes)."""
    matrix = np.asarray(explicit_residuals, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError("explicit beliefs must be a 2-D matrix")
    table = Table(name, ("v", "c", "b"))
    labeled = np.nonzero(np.any(matrix != 0.0, axis=1))[0]
    rows = []
    for node in labeled:
        for class_index in range(matrix.shape[1]):
            rows.append((int(node), int(class_index), float(matrix[node, class_index])))
    table.insert_rows(rows)
    return table


def coupling_table(coupling: CouplingMatrix) -> Table:
    """``H(c1, c2, h)`` holding the scaled residual coupling matrix ``Ĥ``."""
    residual = coupling.residual
    table = Table("H", ("c1", "c2", "h"))
    k = residual.shape[0]
    table.insert_rows((i, j, float(residual[i, j]))
                      for i in range(k) for j in range(k))
    return table


def degree_table(adjacency: Table) -> Table:
    """``D(v, d)`` with ``d = Σ w²`` per source node (Section 5.2 degrees).

    Expressed as the aggregate query ``D(s, sum(w*w)) :- A(s, t, w)``.
    """
    return aggregate(adjacency, group_by=("s",),
                     aggregations={"d": ("sum", lambda r: r["w"] * r["w"])},
                     name="D")


def coupling_squared_table(coupling_relation: Table) -> Table:
    """``H2(c1, c2, h)`` computed with the self-join of Eq. 20 / Fig. 9a."""
    from repro.relational.engine import project

    joined = equi_join(coupling_relation, coupling_relation.copy("H_b"),
                       on=[("c2", "c1")], name="H_join")
    # After the join, the left copy contributes (c1, c2, h) and the right copy
    # (H_b.c1 == left c2 by the join) contributes its own c2 and h under
    # qualified names.
    squared = aggregate(joined, group_by=("c1", "H_b.c2"),
                        aggregations={"h": ("sum", lambda r: r["h"] * r["H_b.h"])},
                        name="H2")
    return project(squared, ("c1", "H_b.c2", "h"),
                   rename={"H_b.c2": "c2"}, name="H2").copy("H2")


def beliefs_to_matrix(belief_relation: Table, num_nodes: int,
                      num_classes: int) -> np.ndarray:
    """Convert a ``B(v, c, b)`` relation back into an ``n x k`` matrix."""
    matrix = np.zeros((num_nodes, num_classes))
    v_index = belief_relation.column_index("v")
    c_index = belief_relation.column_index("c")
    b_index = belief_relation.column_index("b")
    for row in belief_relation:
        matrix[row[v_index], row[c_index]] = row[b_index]
    return matrix


def geodesic_to_vector(geodesic_relation: Table, num_nodes: int) -> np.ndarray:
    """Convert a ``G(v, g)`` relation into a vector (−1 for missing nodes)."""
    vector = np.full(num_nodes, -1, dtype=np.int64)
    v_index = geodesic_relation.column_index("v")
    g_index = geodesic_relation.column_index("g")
    for row in geodesic_relation:
        vector[row[v_index]] = row[g_index]
    return vector


def top_belief_query(belief_relation: Table) -> Dict[int, Set[int]]:
    """The top-belief query of Fig. 9b: classes attaining each node's maximum.

    Ties are kept, exactly as in the SQL formulation (the inner query computes
    ``max(b)`` per node and the outer query returns every class matching it).
    """
    maxima = aggregate(belief_relation, group_by=("v",),
                       aggregations={"b": ("max", lambda r: r["b"])}, name="X")
    joined = equi_join(belief_relation, maxima, on=[("v", "v"), ("b", "b")],
                       name="top")
    v_index = joined.column_index("v")
    c_index = joined.column_index("c")
    result: Dict[int, Set[int]] = {}
    for row in joined:
        result.setdefault(int(row[v_index]), set()).add(int(row[c_index]))
    return result
