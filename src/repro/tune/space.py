"""The serving-config knob space: typed parameters, gates, stable run IDs.

PRs 1-8 grew the reproduction into a serving system with many
interacting knobs — shard count, partition method, executor,
micro-batch window, cache sizes, TTLs, precision policy, convergence
tolerance.  This module turns that implicit knob sprawl into an
explicit, typed **configuration space**:

* :class:`Parameter` — one knob: a name, a kind (categorical / int /
  float), the discrete candidate values the tuner may try, a default,
  and an optional *gate* — a validity predicate over ``(value, config,
  context)`` that prices a value against the graph being served and the
  host's capabilities ("``shards > 1`` requires a graph of at least N
  nodes", "the pool executor requires working ``multiprocessing``").
  A gate returns ``None`` when the value is admissible and a short
  human-readable reason when it is not — the reason lands verbatim in
  ablation reports, so a skipped configuration is always explained.
* :class:`ConfigSpace` — an ordered collection of parameters with the
  operations the ablation runner and the autotuner need: the default
  configuration, validation, the one-factor neighbourhood of a baseline
  (every admissible single-knob change), and deterministic config
  hashing.
* :func:`config_id` — the stable run identifier: the SHA-1 of the
  canonical JSON encoding of a configuration.  Content-addressed and
  time-free, so the same configuration gets the same run ID in every
  process on every host — reports from different sweeps can be joined
  on it.
* :func:`service_config_space` — the concrete knob space of
  :class:`~repro.service.service.PropagationService` plus the per-query
  solver knobs (dtype / precision / tolerance), with capability gates
  reusing the same probes the backends use
  (:data:`repro.engine.backend.HAVE_NUMBA`-style import checks,
  ``os.cpu_count()``).

The space is deliberately *discrete*: every parameter enumerates the
handful of values worth trying, because the tuner's unit of work — one
closed-loop harness drive — is far too expensive for continuous
optimisation, and the interesting decisions ("does sharding pay off
here at all?") are categorical anyway.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.exceptions import ValidationError

__all__ = [
    "Parameter",
    "ConfigSpace",
    "TuneContext",
    "config_id",
    "service_config_space",
    "SERVICE_KEYS",
    "QUERY_KEYS",
    "MIN_NODES_PER_SHARD",
]

#: A gate prices one value in the context of a full configuration and a
#: tuning context; ``None`` means admissible, a string is the reason the
#: value is not (shown verbatim in reports).
Gate = Callable[[object, Dict[str, object], "TuneContext"], Optional[str]]

#: ``shards = p`` is only admissible when the graph has at least this
#: many nodes per shard — below that the halo exchange dominates the
#: per-shard work and the configuration is never competitive.
MIN_NODES_PER_SHARD = 64


@dataclass(frozen=True)
class TuneContext:
    """What gates may look at: the graph's size and the host's abilities.

    ``capabilities`` maps capability names (``"pool"``, ``"numba"``,
    ``"cupy"``, ``"duckdb"``) to booleans; :meth:`detect` probes them
    the same way the backends themselves do, so a gate can never admit
    a configuration the execution layer would refuse.
    """

    num_nodes: int
    num_edges: int
    cpu_count: int = 1
    capabilities: Tuple[Tuple[str, bool], ...] = ()

    def capability(self, name: str) -> bool:
        return dict(self.capabilities).get(name, False)

    @classmethod
    def detect(cls, graph) -> "TuneContext":
        """Build a context for ``graph`` by probing the current host."""
        import importlib.util

        from repro.engine.backend import HAVE_NUMBA

        capabilities = (
            ("pool", _have_pool()),
            ("numba", bool(HAVE_NUMBA)),
            ("cupy", importlib.util.find_spec("cupy") is not None),
            ("duckdb", importlib.util.find_spec("duckdb") is not None),
        )
        return cls(num_nodes=graph.num_nodes, num_edges=graph.num_edges,
                   cpu_count=os.cpu_count() or 1,
                   capabilities=capabilities)


def _have_pool() -> bool:
    """Whether ``multiprocessing`` + ``shared_memory`` are importable."""
    try:
        from multiprocessing import shared_memory  # noqa: F401
        import multiprocessing

        multiprocessing.cpu_count()
    except (ImportError, NotImplementedError, OSError):
        return False
    return True


@dataclass(frozen=True)
class Parameter:
    """One knob of the configuration space.

    ``values`` is the full candidate list *including* the default; the
    kind is descriptive (it drives validation messages and the report's
    rendering) — sweeps are always over the discrete ``values``.
    """

    name: str
    kind: str  # "categorical" | "int" | "float"
    values: Tuple[object, ...]
    default: object
    help: str = ""
    gate: Optional[Gate] = field(default=None, compare=False)

    def __post_init__(self):
        if self.kind not in ("categorical", "int", "float"):
            raise ValidationError(
                f"parameter {self.name!r}: unknown kind {self.kind!r} "
                "(expected 'categorical', 'int' or 'float')")
        if not self.values:
            raise ValidationError(
                f"parameter {self.name!r} needs at least one value")
        if self.default not in self.values:
            raise ValidationError(
                f"parameter {self.name!r}: default {self.default!r} is not "
                f"among its values {list(self.values)}")

    def check(self, value: object, config: Dict[str, object],
              context: TuneContext) -> Optional[str]:
        """``None`` when ``value`` is admissible here, else the reason."""
        if value not in self.values:
            return (f"{value!r} is not a candidate value of "
                    f"{self.name!r} (expected one of {list(self.values)})")
        if self.gate is not None:
            return self.gate(value, config, context)
        return None


class ConfigSpace:
    """An ordered set of :class:`Parameter`\\ s and the sweep operations.

    Ordering matters twice: the coordinate-descent tuner walks the
    parameters in declaration order (put the high-leverage knobs first),
    and the canonical JSON behind :func:`config_id` sorts keys, so the
    declaration order never leaks into run IDs.
    """

    def __init__(self, parameters: List[Parameter]):
        names = [parameter.name for parameter in parameters]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise ValidationError(
                f"duplicate parameter name(s): {sorted(duplicates)}")
        self._parameters: Dict[str, Parameter] = {
            parameter.name: parameter for parameter in parameters}

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self._parameters.values())

    def names(self) -> List[str]:
        return list(self._parameters)

    def parameter(self, name: str) -> Parameter:
        parameter = self._parameters.get(name)
        if parameter is None:
            raise ValidationError(
                f"unknown parameter {name!r}; space parameters: "
                f"{self.names()}")
        return parameter

    # ------------------------------------------------------------------ #
    # configurations
    # ------------------------------------------------------------------ #
    def default_config(self) -> Dict[str, object]:
        """The baseline configuration: every parameter at its default."""
        return {parameter.name: parameter.default for parameter in self}

    def validate(self, config: Dict[str, object],
                 context: TuneContext) -> List[str]:
        """Every reason ``config`` is inadmissible (empty = valid).

        Unknown keys and missing parameters are defects too — a
        configuration is always *total* over the space, so hashes of
        valid configs are comparable.
        """
        reasons = []
        unknown = sorted(set(config) - set(self._parameters))
        if unknown:
            reasons.append(f"unknown parameter(s) {unknown}; space "
                           f"parameters: {self.names()}")
        for parameter in self:
            if parameter.name not in config:
                reasons.append(f"missing parameter {parameter.name!r}")
                continue
            reason = parameter.check(config[parameter.name], config, context)
            if reason is not None:
                reasons.append(f"{parameter.name}: {reason}")
        return reasons

    def one_factor_configs(
            self, baseline: Dict[str, object], context: TuneContext,
    ) -> List[Tuple[str, object, Dict[str, object], Optional[str]]]:
        """The one-factor-at-a-time neighbourhood of ``baseline``.

        For every parameter and every non-baseline candidate value,
        yields ``(parameter, value, config, skip_reason)`` where
        ``config`` is the baseline with that single knob changed.
        Inadmissible changes are *returned, not dropped* — their
        ``skip_reason`` explains the gate that refused them, so the
        ablation report can show "pool executor: skipped (no working
        multiprocessing)" instead of silently omitting a row.
        """
        neighbours = []
        for parameter in self:
            for value in parameter.values:
                if value == baseline.get(parameter.name):
                    continue
                config = dict(baseline, **{parameter.name: value})
                reasons = self.validate(config, context)
                neighbours.append((parameter.name, value, config,
                                   "; ".join(reasons) or None))
        return neighbours


def _canonical(value: object) -> object:
    """JSON-stable form of one config value (``None``/bool/int/float/str)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr() round-trips floats exactly and is stable across
        # platforms for the doubles we use; int-valued floats keep
        # their ".0" so 1.0 and 1 hash differently (they configure
        # differently too).
        return float(value)
    raise ValidationError(
        f"config values must be JSON scalars, got {type(value).__name__} "
        f"({value!r})")


def config_id(config: Dict[str, object]) -> str:
    """Stable, content-addressed run identifier for one configuration.

    SHA-1 over the canonical (sorted-key, separators-pinned) JSON
    encoding — no timestamps, no hostnames, no ordering sensitivity:
    the same configuration hashes identically in every process, so run
    IDs from independent sweeps can be joined.
    """
    canonical = {str(key): _canonical(value)
                 for key, value in config.items()}
    encoded = json.dumps(canonical, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return "run-" + hashlib.sha1(encoded).hexdigest()[:16]


# ---------------------------------------------------------------------- #
# the concrete serving space
# ---------------------------------------------------------------------- #

#: Config keys consumed by ``PropagationService.from_config`` (the
#: service constructor knobs).  Everything else in the space is a
#: per-query knob.
SERVICE_KEYS = (
    "shards", "shard_method", "shard_executor", "window_ms", "max_batch",
    "result_cache_size", "result_ttl_seconds", "snapshot_history",
    "incremental_repartition",
)

#: Config keys that parameterise the queries (``QuerySpec`` fields).
QUERY_KEYS = ("dtype", "precision", "tolerance")


def _gate_shards(value, config, context):
    if value == 1:
        return None
    if context.num_nodes < value * MIN_NODES_PER_SHARD:
        return (f"shards={value} requires a graph of at least "
                f"{value * MIN_NODES_PER_SHARD} nodes "
                f"(got {context.num_nodes})")
    return None


def _needs_shards(default):
    """Gate factory: the knob is inert at ``shards == 1``.

    The *default* value stays admissible (an unsharded config legitimately
    carries ``shard_method: "bfs"`` — the knob is inert, not invalid);
    only *changing* the knob on an unsharded config is refused, so
    sweeps don't waste runs re-measuring configurations that cannot
    differ.
    """

    def gate(value, config, context):
        if config.get("shards", 1) == 1 and value != default:
            return "only meaningful when shards > 1"
        return None

    return gate


def _gate_executor(value, config, context):
    if config.get("shards", 1) == 1 and value != "sequential":
        return "only meaningful when shards > 1"
    if value == "pool":
        if not context.capability("pool"):
            return "the pool executor needs working multiprocessing"
        if context.cpu_count < 2:
            return (f"the pool executor needs >= 2 CPUs "
                    f"(got {context.cpu_count})")
    return None


def _gate_float32(value, config, context):
    if value == "float32" and config.get("precision") == "auto":
        return ("auto precision chooses its own dtype; pin "
                "precision='strict' to force float32")
    return None


def service_config_space() -> ConfigSpace:
    """The standard knob space of the propagation serving stack.

    High-leverage knobs first (the coordinate-descent tuner walks the
    declaration order): execution layout, then batching, then caching,
    then numerics.
    """
    return ConfigSpace([
        Parameter("shards", "int", (1, 2, 4), 1,
                  help="partitions per graph (1 = single-matrix engine)",
                  gate=_gate_shards),
        Parameter("shard_method", "categorical", ("bfs", "hash"), "bfs",
                  help="partitioner for sharded graphs",
                  gate=_needs_shards("bfs")),
        Parameter("shard_executor", "categorical",
                  ("sequential", "pool"), "sequential",
                  help="shard sweeps in-process or on a worker pool",
                  gate=_gate_executor),
        Parameter("incremental_repartition", "categorical",
                  (True, False), True,
                  help="repair the partition on edge deltas instead of "
                       "re-running the partitioner",
                  gate=_needs_shards(True)),
        Parameter("window_ms", "float", (0.0, 0.5, 2.0, 5.0), 2.0,
                  help="micro-batch collection window (0 disables "
                       "coalescing)"),
        Parameter("max_batch", "int", (4, 16, 32), 16,
                  help="dispatch a coalesced batch early at this size"),
        Parameter("result_cache_size", "int", (0, 64, 256), 256,
                  help="result-cache LRU capacity (0 disables caching)"),
        Parameter("result_ttl_seconds", "float", (None, 60.0, 300.0), 300.0,
                  help="result-cache entry lifetime (None = LRU only)"),
        Parameter("snapshot_history", "int", (0, 4), 4,
                  help="past snapshot versions retained for "
                       "staleness-bounded reads"),
        Parameter("dtype", "categorical", ("float64", "float32"), "float64",
                  help="kernel element width for strict-precision queries",
                  gate=_gate_float32),
        Parameter("precision", "categorical", ("strict", "auto"), "strict",
                  help="pin the dtype or let the Lemma-8 certificate "
                       "choose"),
        Parameter("tolerance", "float", (1e-10, 1e-8, 1e-6), 1e-10,
                  help="convergence threshold on the max belief change"),
    ])
