"""The ablation runner: execute candidate configs, read metrics off obs.

One *run* = one candidate configuration executed against a fixed,
seeded workload on a **fresh** :class:`~repro.service.service
.PropagationService` built through
:meth:`~repro.service.service.PropagationService.from_config` — the
exact consumption path of a tuned artifact, so the tuner can never
measure a configuration the serving layer would not accept.

Measurement discipline (the part that makes reports trustworthy):

* **Metrics come off the registries, not ad-hoc counters.**  Latency
  percentiles and throughput are read from the harness's
  :class:`~repro.service.harness.HarnessRun`; request/cache/sweep/
  repair accounting is read off :mod:`repro.obs` — the service's own
  always-on registry (fresh per run, because the service is) and a
  before/after *delta* of the process-global registry for the
  engine-level series (``repro_engine_sweeps_total``,
  ``repro_service_result_cache_lookups_total``,
  ``repro_shard_repairs_total``, the coalescer counters).  The runner
  temporarily enables global telemetry around the measured drive and
  restores the caller's setting afterwards.
* **Fairness.**  Every run clears the engine's plan caches and drives
  the workload once un-measured (plan builds, lazy executors, thread
  pools) before the measured drive, so the first candidate is not
  taxed for warming what later candidates inherit.
* **Crash isolation.**  A configuration that raises mid-run is recorded
  as a ``failed`` :class:`RunRecord` carrying the error text; the sweep
  continues.  A configuration that exceeds ``run_timeout_seconds`` is
  recorded as ``timeout`` (its daemon worker thread is abandoned — the
  price of not letting one pathological config sink a whole sweep).
* **Stable run IDs.**  Every record is keyed by
  :func:`repro.tune.space.config_id` — content-addressed, so re-running
  the same sweep yields the same IDs and completed measurements are
  memoised within a runner (coordinate descent revisits neighbours).

Workloads are built once and reused across every candidate:
:func:`make_mixed_workload` produces the closed-loop mixed update/query
shape (the serving scenario the knobs exist for), and
:func:`make_engine_workload` a pure :func:`repro.engine.batch.run_batch`
drive for engine-only sweeps of the numeric knobs.
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.tune.space import (
    SERVICE_KEYS,
    ConfigSpace,
    TuneContext,
    config_id,
    service_config_space,
)

__all__ = [
    "Workload",
    "RunMetrics",
    "RunRecord",
    "AblationRunner",
    "make_mixed_workload",
    "make_engine_workload",
    "measure_config",
]

#: Counter names whose process-global delta a run reports.  These are
#: the obs catalog series the engine/service layers already maintain —
#: the runner never counts anything itself.
_GLOBAL_COUNTERS = (
    "repro_engine_sweeps_total",
    "repro_plan_builds_total",
    "repro_plan_cache_hits_total",
    "repro_service_result_cache_lookups_total",
    "repro_shard_repairs_total",
    "repro_coalescer_batches_total",
    "repro_coalescer_coalesced_requests_total",
)


@dataclass(frozen=True)
class Workload:
    """One reusable, seeded traffic shape driven at every candidate.

    ``kind`` is ``"mixed"`` (closed-loop update/query traffic through a
    full service — the default) or ``"engine"`` (repeated
    ``run_batch`` calls, for sweeps of the numeric knobs alone).
    ``requests`` carry *payloads*, not specs: the runner injects each
    candidate's :class:`~repro.service.spec.QuerySpec` at execution
    time, so one workload serves every configuration.
    """

    kind: str
    graph: object
    coupling: object
    requests: Tuple[Dict, ...] = ()
    explicits: Tuple[np.ndarray, ...] = ()
    num_clients: int = 8
    max_iterations: int = 50
    engine_rounds: int = 5
    graph_name: str = "g"
    description: str = ""

    def __post_init__(self):
        if self.kind not in ("mixed", "engine"):
            raise ValidationError(
                f"unknown workload kind {self.kind!r} "
                "(expected 'mixed' or 'engine')")
        if self.kind == "mixed" and not self.requests:
            raise ValidationError("a mixed workload needs requests")
        if self.kind == "engine" and not self.explicits:
            raise ValidationError("an engine workload needs explicits")


@dataclass(frozen=True)
class RunMetrics:
    """What one measured run produced, all read off existing substrates."""

    requests: int
    queries: int
    updates: int
    elapsed_seconds: float
    throughput_rps: float
    p50_seconds: float
    p99_seconds: float
    query_p99_seconds: float
    cache_hits: int
    cache_misses: int
    cache_hit_rate: float
    sweeps: int
    plan_builds: int
    repairs_incremental: int
    repairs_full: int
    stale_hits: int
    coalesced_batches: int

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "queries": self.queries,
            "updates": self.updates,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_rps": self.throughput_rps,
            "p50_seconds": self.p50_seconds,
            "p99_seconds": self.p99_seconds,
            "query_p99_seconds": self.query_p99_seconds,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "sweeps": self.sweeps,
            "plan_builds": self.plan_builds,
            "repairs_incremental": self.repairs_incremental,
            "repairs_full": self.repairs_full,
            "stale_hits": self.stale_hits,
            "coalesced_batches": self.coalesced_batches,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunMetrics":
        return cls(**{name: data[name] for name in cls.__dataclass_fields__})


@dataclass(frozen=True)
class RunRecord:
    """One candidate's outcome: its stable ID, status, and metrics.

    ``status`` is ``"ok"`` (measured), ``"skipped"`` (a gate refused the
    configuration — ``error`` holds the gate's reason), ``"failed"``
    (the run raised — ``error`` holds the exception) or ``"timeout"``.
    """

    run_id: str
    config: Dict[str, object]
    status: str
    metrics: Optional[RunMetrics] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def as_dict(self) -> Dict[str, object]:
        return {
            "run_id": self.run_id,
            "config": dict(self.config),
            "status": self.status,
            "metrics": self.metrics.as_dict() if self.metrics else None,
            "error": self.error,
        }


# ---------------------------------------------------------------------- #
# workload construction
# ---------------------------------------------------------------------- #
def make_mixed_workload(graph, coupling, *, seed: int = 0,
                        num_clients: int = 8,
                        requests_per_client: int = 6,
                        update_every: int = 8,
                        edges_per_update: int = 3,
                        explicit_nodes: int = 12,
                        max_iterations: int = 50,
                        graph_name: str = "g",
                        description: str = "") -> Workload:
    """A seeded closed-loop mixed update/query workload over ``graph``.

    Every ``update_every``-th request is an edge-delta update (disjoint
    edges absent from the base graph, applied in request order by the
    harness's dealing); the rest are queries over a small pool of
    explicit-belief matrices, a third of them tolerating one version of
    staleness.  The whole shape is a pure function of ``(graph, seed)``
    — two workloads built with the same arguments are identical, which
    is what makes run IDs and sweep results reproducible.
    """
    rng = np.random.default_rng(seed)
    num_classes = coupling.num_classes
    total = num_clients * requests_per_client
    num_updates = max(1, total // max(update_every, 2))

    adjacency = graph.adjacency
    chosen = set()
    deltas: List[List[Tuple[int, int]]] = []
    for _ in range(num_updates):
        delta: List[Tuple[int, int]] = []
        attempts = 0
        while len(delta) < edges_per_update and attempts < 10_000:
            attempts += 1
            u, v = (int(x) for x in rng.integers(0, graph.num_nodes, size=2))
            if u == v or (u, v) in chosen or (v, u) in chosen:
                continue
            if adjacency[u, v] != 0:
                continue
            chosen.add((u, v))
            delta.append((u, v))
        if delta:
            deltas.append(delta)

    base = np.zeros((graph.num_nodes, num_classes))
    nodes = rng.choice(graph.num_nodes,
                       size=min(explicit_nodes, graph.num_nodes),
                       replace=False)
    for node in nodes:
        values = rng.uniform(-0.1, 0.1, size=num_classes - 1)
        base[node] = list(values) + [-values.sum()]

    requests: List[Dict] = []
    update_index = 0
    for i in range(total):
        if i % update_every == 0 and update_index < len(deltas):
            requests.append({"op": "update",
                             "new_edges": list(deltas[update_index])})
            update_index += 1
        else:
            requests.append({
                "op": "query",
                "explicit": base * rng.uniform(0.5, 1.5),
                "max_staleness": 1 if i % 3 else 0,
            })
    return Workload(kind="mixed", graph=graph, coupling=coupling,
                    requests=tuple(requests), num_clients=num_clients,
                    max_iterations=max_iterations, graph_name=graph_name,
                    description=description or
                    f"mixed {total} requests ({update_index} updates), "
                    f"{num_clients} clients, seed {seed}")


def make_engine_workload(graph, coupling, *, seed: int = 0,
                         batch_width: int = 8, rounds: int = 5,
                         explicit_nodes: int = 12,
                         max_iterations: int = 50,
                         graph_name: str = "g",
                         description: str = "") -> Workload:
    """A pure ``run_batch`` workload for engine-only sweeps.

    Only the numeric knobs (dtype / precision / tolerance) matter here;
    the service-layer keys of a candidate are accepted and ignored.
    """
    rng = np.random.default_rng(seed)
    num_classes = coupling.num_classes
    explicits = []
    for _ in range(batch_width):
        explicit = np.zeros((graph.num_nodes, num_classes))
        nodes = rng.choice(graph.num_nodes,
                           size=min(explicit_nodes, graph.num_nodes),
                           replace=False)
        for node in nodes:
            values = rng.uniform(-0.1, 0.1, size=num_classes - 1)
            explicit[node] = list(values) + [-values.sum()]
        explicits.append(explicit)
    return Workload(kind="engine", graph=graph, coupling=coupling,
                    explicits=tuple(explicits), engine_rounds=rounds,
                    max_iterations=max_iterations, graph_name=graph_name,
                    description=description or
                    f"engine batch of {batch_width}, {rounds} rounds, "
                    f"seed {seed}")


# ---------------------------------------------------------------------- #
# registry reading
# ---------------------------------------------------------------------- #
def _counter_totals(registry) -> Dict[Tuple[str, Tuple], float]:
    """Per-(name, label-set) totals of every tracked global counter."""
    totals: Dict[Tuple[str, Tuple], float] = {}
    for name in _GLOBAL_COUNTERS:
        metric = registry.get(name)
        if metric is None or metric.kind != "counter":
            continue
        for labels, value in metric.labeled_values():
            key = (name, tuple(sorted(labels.items())))
            totals[key] = float(value)
    return totals


def _counter_delta(before: Dict, after: Dict, name: str,
                   **labels: str) -> float:
    """Summed before→after growth of one counter, filtered by labels."""
    wanted = set(labels.items())
    total = 0.0
    for (metric_name, label_items), value in after.items():
        if metric_name != name or not wanted.issubset(set(label_items)):
            continue
        total += value - before.get((metric_name, label_items), 0.0)
    return total


# ---------------------------------------------------------------------- #
# measurement
# ---------------------------------------------------------------------- #
def _service_artifact(config: Dict[str, object]) -> Dict[str, object]:
    """The from_config artifact for one candidate (background passes off).

    ``repartition_drift`` is pinned to ``None`` so no drift-triggered
    daemon thread runs during a measurement — the sweep must be
    deterministic and self-contained.
    """
    service = {key: config[key] for key in SERVICE_KEYS if key in config}
    service["repartition_drift"] = None
    return {"version": 1, "service": service}


def _query_spec(workload: Workload, config: Dict[str, object]):
    from repro.service.spec import QuerySpec

    return QuerySpec(
        method="linbp",
        max_iterations=workload.max_iterations,
        tolerance=config.get("tolerance", 1e-10),
        dtype=config.get("dtype", "float64"),
        precision=config.get("precision", "strict"))


def _drive_mixed(workload: Workload, config: Dict[str, object]):
    """One full service lifecycle: build, register, drive, tear down."""
    from repro.service import PropagationService, ServiceHarness

    spec = _query_spec(workload, config)
    requests = []
    for payload in workload.requests:
        if payload["op"] == "update":
            requests.append({"op": "update",
                             "graph_name": workload.graph_name,
                             "new_edges": payload["new_edges"]})
        else:
            requests.append({"op": "query",
                             "graph_name": workload.graph_name,
                             "coupling": workload.coupling,
                             "explicit_residuals": payload["explicit"],
                             "spec": spec,
                             "max_staleness": payload["max_staleness"]})
    service = PropagationService.from_config(_service_artifact(config))
    try:
        service.register_graph(workload.graph_name, workload.graph)
        harness = ServiceHarness(service)
        run = harness.run_mixed(requests, num_clients=workload.num_clients)
    finally:
        service.close()
    return service, run


def _drive_engine(workload: Workload, config: Dict[str, object]):
    """Engine-only drive: ``engine_rounds`` timed stacked batch calls."""
    from repro.engine import batch as engine_batch
    from repro.engine import plan as engine_plan
    from repro.engine import precision as engine_precision
    from repro.service.harness import HarnessRun

    tolerance = float(config.get("tolerance", 1e-10))
    explicits = list(workload.explicits)
    latencies: List[float] = []
    start = time.perf_counter()
    for _ in range(workload.engine_rounds):
        issued = time.perf_counter()
        if config.get("precision", "strict") == "auto":
            engine_precision.run_batch_auto(
                workload.graph, workload.coupling, explicits,
                max_iterations=workload.max_iterations, tolerance=tolerance)
        else:
            plan = engine_plan.get_plan(
                workload.graph, workload.coupling,
                dtype=np.dtype(config.get("dtype", "float64")))
            engine_batch.run_batch(plan, explicits,
                                   max_iterations=workload.max_iterations,
                                   tolerance=tolerance)
        latencies.append(time.perf_counter() - issued)
    elapsed = time.perf_counter() - start
    return HarnessRun(results=[None] * len(latencies),
                      elapsed_seconds=elapsed, latencies=latencies)


def measure_config(workload: Workload,
                   config: Dict[str, object]) -> RunMetrics:
    """Measure one candidate configuration against ``workload``.

    Clears the engine plan caches, drives the workload once un-measured
    (warm-up), snapshots the global registry, drives it again measured,
    and assembles :class:`RunMetrics` from the harness run plus the
    registry deltas.  Global telemetry is enabled for the duration and
    the caller's setting restored after.
    """
    from repro.engine import clear_plan_cache
    from repro.obs import REGISTRY, obs_enabled, set_obs_enabled

    previous = obs_enabled()
    set_obs_enabled(True)
    try:
        clear_plan_cache()
        if workload.kind == "engine":
            _drive_engine(workload, config)  # warm-up: plans, buffers
            before = _counter_totals(REGISTRY)
            run = _drive_engine(workload, config)
            service = None
        else:
            _drive_mixed(workload, config)  # warm-up: plans, pools
            before = _counter_totals(REGISTRY)
            service, run = _drive_mixed(workload, config)
        after = _counter_totals(REGISTRY)
    finally:
        set_obs_enabled(previous)

    if service is not None:
        queries = int(service.registry.counter(
            "repro_service_queries_total").value())
        updates = int(service.registry.counter(
            "repro_service_updates_total").value())
        stale_hits = int(service.registry.counter(
            "repro_service_stale_hits_total").value())
        query_latencies = [
            latency for payload, latency in zip(workload.requests,
                                                run.latencies)
            if payload["op"] == "query"]
    else:
        queries = len(run.latencies)
        updates = 0
        stale_hits = 0
        query_latencies = list(run.latencies)

    hits = _counter_delta(before, after,
                          "repro_service_result_cache_lookups_total",
                          outcome="hit")
    misses = _counter_delta(before, after,
                            "repro_service_result_cache_lookups_total",
                            outcome="miss")
    lookups = hits + misses
    ordered = sorted(query_latencies)
    query_p99 = ordered[max(0, int(np.ceil(0.99 * len(ordered))) - 1)] \
        if ordered else 0.0
    return RunMetrics(
        requests=len(run.latencies),
        queries=queries,
        updates=updates,
        elapsed_seconds=run.elapsed_seconds,
        throughput_rps=run.throughput,
        p50_seconds=run.percentile(50),
        p99_seconds=run.p99,
        query_p99_seconds=query_p99,
        cache_hits=int(hits),
        cache_misses=int(misses),
        cache_hit_rate=(hits / lookups) if lookups else 0.0,
        sweeps=int(_counter_delta(before, after,
                                  "repro_engine_sweeps_total")),
        plan_builds=int(_counter_delta(before, after,
                                       "repro_plan_builds_total")),
        repairs_incremental=int(_counter_delta(
            before, after, "repro_shard_repairs_total",
            kind="incremental")),
        repairs_full=int(_counter_delta(
            before, after, "repro_shard_repairs_total", kind="full")),
        stale_hits=stale_hits,
        coalesced_batches=int(_counter_delta(
            before, after, "repro_coalescer_batches_total")),
    )


# ---------------------------------------------------------------------- #
# the runner
# ---------------------------------------------------------------------- #
class AblationRunner:
    """Run candidate configurations with isolation, timeouts, memoisation.

    Parameters
    ----------
    workload:
        The fixed traffic shape every candidate is measured against.
    space:
        The :class:`~repro.tune.space.ConfigSpace` (default: the
        serving space).
    context:
        Gate context; detected from the workload's graph by default.
    run_timeout_seconds:
        Wall-clock budget per measured run; a run that exceeds it is
        recorded as ``timeout`` and its worker thread abandoned.
    measure:
        The measurement function ``(workload, config) -> RunMetrics``.
        Injectable so determinism tests can replace wall-clock timing
        with a pure function of the configuration; defaults to
        :func:`measure_config`.
    progress:
        Optional callback invoked with every finished
        :class:`RunRecord` (CLI progress lines).
    """

    def __init__(self, workload: Workload, *,
                 space: Optional[ConfigSpace] = None,
                 context: Optional[TuneContext] = None,
                 run_timeout_seconds: float = 120.0,
                 measure: Optional[Callable[[Workload, Dict], RunMetrics]]
                 = None,
                 progress: Optional[Callable[[RunRecord], None]] = None):
        if run_timeout_seconds <= 0:
            raise ValidationError("run_timeout_seconds must be > 0")
        self.workload = workload
        self.space = space if space is not None else service_config_space()
        self.context = context if context is not None \
            else TuneContext.detect(workload.graph)
        self.run_timeout_seconds = float(run_timeout_seconds)
        self.measure = measure if measure is not None else measure_config
        self.progress = progress
        #: Completed records by run ID — coordinate descent revisits
        #: one-factor neighbours, and re-measuring an identical config
        #: would only add noise.
        self.records: Dict[str, RunRecord] = {}

    # ------------------------------------------------------------------ #
    def run_config(self, config: Dict[str, object]) -> RunRecord:
        """Measure one configuration (memoised, isolated, time-bounded)."""
        run_id = config_id(config)
        cached = self.records.get(run_id)
        if cached is not None:
            return cached
        reasons = self.space.validate(config, self.context)
        if reasons:
            record = RunRecord(run_id=run_id, config=dict(config),
                               status="skipped", error="; ".join(reasons))
            return self._finish(record)

        outcome: List[object] = []

        def worker() -> None:
            try:
                outcome.append(self.measure(self.workload, config))
            except BaseException:  # recorded, never propagated
                outcome.append(traceback.format_exc(limit=20))

        thread = threading.Thread(target=worker, daemon=True,
                                  name=f"tune-{run_id}")
        thread.start()
        thread.join(self.run_timeout_seconds)
        if thread.is_alive():
            record = RunRecord(
                run_id=run_id, config=dict(config), status="timeout",
                error=f"run exceeded {self.run_timeout_seconds:.0f}s "
                      "(worker thread abandoned)")
        elif outcome and isinstance(outcome[0], RunMetrics):
            record = RunRecord(run_id=run_id, config=dict(config),
                               status="ok", metrics=outcome[0])
        else:
            error = outcome[0] if outcome else "run produced no result"
            record = RunRecord(run_id=run_id, config=dict(config),
                               status="failed", error=str(error))
        return self._finish(record)

    def _finish(self, record: RunRecord) -> RunRecord:
        self.records[record.run_id] = record
        if self.progress is not None:
            self.progress(record)
        return record

    # ------------------------------------------------------------------ #
    def run_baseline(self) -> RunRecord:
        """Measure the space's default configuration."""
        return self.run_config(self.space.default_config())

    def run_ablation(self) -> Tuple[
            RunRecord, List[Tuple[str, object, RunRecord]]]:
        """One-factor ablation: the baseline plus every single-knob change.

        Returns ``(baseline_record, runs)`` where each entry of ``runs``
        is ``(parameter, value, record)`` — gated-out changes appear as
        ``skipped`` records, crashed ones as ``failed``; the sweep
        always completes.
        """
        baseline_config = self.space.default_config()
        baseline = self.run_config(baseline_config)
        runs: List[Tuple[str, object, RunRecord]] = []
        for parameter, value, config, skip_reason in \
                self.space.one_factor_configs(baseline_config, self.context):
            if skip_reason is not None:
                record = self._finish(RunRecord(
                    run_id=config_id(config), config=config,
                    status="skipped", error=skip_reason))
            else:
                record = self.run_config(config)
            runs.append((parameter, value, record))
        return baseline, runs
