"""``repro.tune`` — ablation and autotuning over the serving knob space.

The serving stack grew many interacting knobs — shard count, partition
method, executor, micro-batch window, cache sizes, TTLs, dtype/
precision policy, convergence tolerance — and this package is the
structured answer to *which of them earn their keep on a given graph*:

* :mod:`repro.tune.space` — the typed config-space model: parameter
  declarations with validity predicates and capability gates, and
  content-addressed config hashing → stable run IDs;
* :mod:`repro.tune.runner` — the ablation runner: executes candidate
  configs against a seeded :meth:`ServiceHarness.run_mixed` closed loop
  (or an engine-only ``run_batch`` drive) with crash isolation and
  per-run timeouts, reading every metric off the :mod:`repro.obs`
  registries;
* :mod:`repro.tune.report` — one-factor ablation deltas vs the
  baseline, ranked into a component-importance report (JSON schema +
  human rendering);
* :mod:`repro.tune.select` — coordinate-descent autotuning that emits
  the per-graph serving-config artifact
  :meth:`PropagationService.from_config` and ``repro serve --config``
  consume.

CLI entry points: ``repro ablate`` and ``repro tune``.  See
docs/tuning.md.
"""

from repro.tune.report import (
    REPORT_SCHEMA_VERSION,
    AblationReport,
    VariantDelta,
    build_report,
    render_report,
)
from repro.tune.runner import (
    AblationRunner,
    RunMetrics,
    RunRecord,
    Workload,
    make_engine_workload,
    make_mixed_workload,
    measure_config,
)
from repro.tune.select import (
    ARTIFACT_KIND,
    ARTIFACT_VERSION,
    SelectionResult,
    make_artifact,
    select_config,
)
from repro.tune.space import (
    MIN_NODES_PER_SHARD,
    QUERY_KEYS,
    SERVICE_KEYS,
    ConfigSpace,
    Parameter,
    TuneContext,
    config_id,
    service_config_space,
)

__all__ = [
    "Parameter",
    "ConfigSpace",
    "TuneContext",
    "config_id",
    "service_config_space",
    "SERVICE_KEYS",
    "QUERY_KEYS",
    "MIN_NODES_PER_SHARD",
    "Workload",
    "RunMetrics",
    "RunRecord",
    "AblationRunner",
    "make_mixed_workload",
    "make_engine_workload",
    "measure_config",
    "AblationReport",
    "VariantDelta",
    "build_report",
    "render_report",
    "REPORT_SCHEMA_VERSION",
    "SelectionResult",
    "select_config",
    "make_artifact",
    "ARTIFACT_VERSION",
    "ARTIFACT_KIND",
]
