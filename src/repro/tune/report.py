"""One-factor ablation analysis: metric deltas → ranked importance.

The runner produces one :class:`~repro.tune.runner.RunRecord` per
single-knob change from the baseline; this module turns those into an
:class:`AblationReport` — a stable JSON document (schema below) plus a
human-readable rendering — ranking each parameter by how much changing
it *alone* moves the workload's headline metrics.

Importance is deliberately simple and legible: for every variant the
report computes the signed relative change vs the baseline for each
headline metric (p99 latency, throughput, cache hit rate, sweeps), and
a parameter's importance is the largest absolute relative change any of
its admissible values produced on p99 or throughput.  A knob nobody
should touch scores near zero; a knob that doubles p99 when flipped
scores 1.0.  Skipped and failed variants are carried in the report with
their reasons — an ablation that silently drops rows is not an
ablation.

JSON schema (``version`` 1)::

    {"version": 1,
     "kind": "repro-ablation-report",
     "workload": "<description>",
     "baseline": {"run_id", "config", "status", "metrics", "error"},
     "parameters": [                       # ranked, most important first
        {"name": "<parameter>",
         "importance": 0.42 | null,        # null: no variant measured
         "variants": [
            {"parameter", "value", "run_id", "status", "error",
             "metrics": {...} | null,
             "deltas": {"p99_seconds": +0.1, ...} | null,  # relative
             "score": 0.42 | null}]}]}

All ordering is deterministic: parameters by (importance desc, name),
variants in the space's declared value order — two runs of the same
sweep render byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.tune.runner import RunRecord

__all__ = ["AblationReport", "VariantDelta", "build_report",
           "render_report", "REPORT_SCHEMA_VERSION"]

REPORT_SCHEMA_VERSION = 1

#: Metrics whose relative change vs baseline every variant reports.
#: The first two are the *headline* pair importance is scored on.
DELTA_METRICS = ("p99_seconds", "throughput_rps", "p50_seconds",
                 "cache_hit_rate", "sweeps")
_HEADLINE = ("p99_seconds", "throughput_rps")


def _relative(candidate: float, baseline: float) -> float:
    """Signed relative change; an absolute change when baseline is 0."""
    if baseline == 0:
        return float(candidate)
    return (candidate - baseline) / abs(baseline)


@dataclass(frozen=True)
class VariantDelta:
    """One single-knob change and how it moved the metrics."""

    parameter: str
    value: object
    record: RunRecord
    #: Relative metric changes vs the baseline (``None`` unless both
    #: this variant and the baseline measured ok).
    deltas: Optional[Dict[str, float]]
    #: max |relative change| over the headline metrics.
    score: Optional[float]

    def as_dict(self) -> Dict[str, object]:
        return {
            "parameter": self.parameter,
            "value": self.value,
            "run_id": self.record.run_id,
            "status": self.record.status,
            "error": self.record.error,
            "metrics": (self.record.metrics.as_dict()
                        if self.record.metrics else None),
            "deltas": dict(self.deltas) if self.deltas is not None else None,
            "score": self.score,
        }


@dataclass(frozen=True)
class AblationReport:
    """A ranked component-importance report over one ablation sweep."""

    workload: str
    baseline: RunRecord
    #: ``(parameter_name, importance, variants)`` ranked most important
    #: first; ``importance`` is ``None`` when no variant measured ok.
    parameters: Tuple[Tuple[str, Optional[float],
                            Tuple[VariantDelta, ...]], ...]

    def as_dict(self) -> Dict[str, object]:
        return {
            "version": REPORT_SCHEMA_VERSION,
            "kind": "repro-ablation-report",
            "workload": self.workload,
            "baseline": self.baseline.as_dict(),
            "parameters": [
                {"name": name,
                 "importance": importance,
                 "variants": [variant.as_dict() for variant in variants]}
                for name, importance, variants in self.parameters],
        }

    def ranking(self) -> List[str]:
        """Parameter names, most important first."""
        return [name for name, _, _ in self.parameters]

    def render(self) -> str:
        return render_report(self)


def build_report(baseline: RunRecord,
                 runs: Sequence[Tuple[str, object, RunRecord]],
                 workload: str = "") -> AblationReport:
    """Assemble the ranked report from a finished one-factor sweep.

    ``runs`` is exactly what
    :meth:`~repro.tune.runner.AblationRunner.run_ablation` returned:
    ``(parameter, value, record)`` triples in the space's declared
    order, including skipped and failed records.
    """
    if baseline.status != "ok" or baseline.metrics is None:
        raise ValidationError(
            "cannot build an ablation report without a measured baseline "
            f"(baseline run {baseline.run_id} is {baseline.status!r}"
            + (f": {baseline.error}" if baseline.error else "") + ")")
    base = baseline.metrics.as_dict()

    by_parameter: Dict[str, List[VariantDelta]] = {}
    order: List[str] = []
    for parameter, value, record in runs:
        if record.ok and record.metrics is not None:
            candidate = record.metrics.as_dict()
            deltas = {name: _relative(float(candidate[name]),
                                      float(base[name]))
                      for name in DELTA_METRICS}
            score = max(abs(deltas[name]) for name in _HEADLINE)
        else:
            deltas, score = None, None
        if parameter not in by_parameter:
            by_parameter[parameter] = []
            order.append(parameter)
        by_parameter[parameter].append(VariantDelta(
            parameter=parameter, value=value, record=record,
            deltas=deltas, score=score))

    ranked: List[Tuple[str, Optional[float], Tuple[VariantDelta, ...]]] = []
    for parameter in order:
        variants = tuple(by_parameter[parameter])
        scores = [v.score for v in variants if v.score is not None]
        ranked.append((parameter, max(scores) if scores else None, variants))
    # Measured parameters first by importance descending; unmeasured
    # (all skipped / failed) last; names break every tie.
    ranked.sort(key=lambda item: (
        item[1] is None, -(item[1] or 0.0), item[0]))
    return AblationReport(workload=workload, baseline=baseline,
                          parameters=tuple(ranked))


def _format_value(value: object) -> str:
    return "None" if value is None else str(value)


def _format_delta(delta: Optional[float]) -> str:
    if delta is None:
        return "-"
    return f"{delta:+.1%}"


def render_report(report: AblationReport) -> str:
    """The human-readable rendering: ranked table plus per-knob rows."""
    base = report.baseline.metrics
    lines = [
        "Ablation report" + (f" — {report.workload}" if report.workload
                             else ""),
        f"baseline {report.baseline.run_id}: "
        f"p99 {base.p99_seconds * 1000.0:.2f}ms, "
        f"throughput {base.throughput_rps:.1f} req/s, "
        f"cache hit rate {base.cache_hit_rate:.0%}, "
        f"sweeps {base.sweeps}",
        "",
        f"{'rank':>4}  {'parameter':<24} {'importance':>10}  detail",
    ]
    for rank, (name, importance, variants) in enumerate(report.parameters,
                                                        start=1):
        shown = "-" if importance is None else f"{importance:.1%}"
        lines.append(f"{rank:>4}  {name:<24} {shown:>10}")
        for variant in variants:
            if variant.deltas is not None:
                detail = (f"p99 {_format_delta(variant.deltas['p99_seconds'])}"
                          f", thr "
                          f"{_format_delta(variant.deltas['throughput_rps'])}")
            else:
                detail = f"{variant.record.status}: {variant.record.error}"
            lines.append(f"      {'':<24} {'':>10}  "
                         f"= {_format_value(variant.value):<12} {detail}")
    return "\n".join(lines) + "\n"
