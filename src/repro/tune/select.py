"""Autotuner: coordinate descent over the space → a serving artifact.

The selection rule is engineered so the acceptance criterion holds *by
construction*: descent starts at the space's default configuration
(always measured), and a move to a one-knob neighbour is accepted only
if the neighbour **Pareto-dominates the incumbent** on the measured
run — p99 no higher AND throughput no lower, with at least a relative
``margin`` improvement on one of the two so wall-clock noise can't walk
the search sideways.  Dominance is transitive, so whatever configuration
the descent ends on is measured-no-worse than the default on both
headline metrics.  A search that finds nothing better returns the
default itself.

The emitted artifact is exactly what
:meth:`repro.service.service.PropagationService.from_config` and
``repro serve --config`` consume::

    {"version": 1,
     "kind": "repro-serving-config",
     "service": {"shards": 1, "window_ms": 2.0, ...},
     "query":   {"dtype": "float64", "precision": "strict",
                 "tolerance": 1e-10},
     "meta":    {...provenance: run IDs, metrics, workload...}}

``meta`` is provenance only — the consumer validates ``service`` and
``query`` strictly and leaves ``meta`` alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ValidationError
from repro.tune.runner import AblationRunner, RunRecord
from repro.tune.space import QUERY_KEYS, SERVICE_KEYS, config_id

__all__ = ["SelectionResult", "select_config", "make_artifact",
           "ARTIFACT_VERSION", "ARTIFACT_KIND"]

ARTIFACT_VERSION = 1
ARTIFACT_KIND = "repro-serving-config"


@dataclass(frozen=True)
class SelectionResult:
    """What the descent chose, with full provenance."""

    config: Dict[str, object]
    run_id: str
    baseline: RunRecord
    selected: RunRecord
    #: One dict per evaluated move: round, parameter, value, run_id,
    #: status, accepted, reason.
    trace: Tuple[Dict[str, object], ...]

    @property
    def improved(self) -> bool:
        return self.selected.run_id != self.baseline.run_id

    def artifact(self, graph_name: str = "g",
                 workload: str = "") -> Dict[str, object]:
        return make_artifact(self.config, graph_name=graph_name,
                             workload=workload, baseline=self.baseline,
                             selected=self.selected)


def _dominates(candidate: RunRecord, incumbent: RunRecord,
               margin: float) -> Tuple[bool, str]:
    """Pareto acceptance test; returns (accepted, reason)."""
    c, i = candidate.metrics, incumbent.metrics
    if c.p99_seconds > i.p99_seconds:
        return False, (f"p99 regressed ({c.p99_seconds:.6f}s > "
                       f"{i.p99_seconds:.6f}s)")
    if c.throughput_rps < i.throughput_rps:
        return False, (f"throughput regressed ({c.throughput_rps:.1f} < "
                       f"{i.throughput_rps:.1f} req/s)")
    p99_gain = (i.p99_seconds - c.p99_seconds) / i.p99_seconds \
        if i.p99_seconds > 0 else 0.0
    thr_gain = (c.throughput_rps - i.throughput_rps) / i.throughput_rps \
        if i.throughput_rps > 0 else 0.0
    if max(p99_gain, thr_gain) < margin:
        return False, (f"improvement below margin "
                       f"(p99 {p99_gain:+.2%}, throughput {thr_gain:+.2%})")
    return True, (f"dominates incumbent "
                  f"(p99 {-p99_gain:+.2%}, throughput {thr_gain:+.2%})")


def select_config(runner: AblationRunner, *, rounds: int = 2,
                  margin: float = 0.02) -> SelectionResult:
    """Coordinate descent from the default config over ``runner``'s space.

    Each round walks the parameters in the space's declared order; for
    every parameter the admissible alternative values (one-knob changes
    from the *current* incumbent) are measured, and the best accepted
    dominator — largest summed relative gain, declared value order
    breaking ties — becomes the new incumbent.  The descent stops after
    a round with no accepted move, or after ``rounds`` rounds.  Every
    evaluation (including skips and rejections) lands in the trace.
    """
    if rounds < 1:
        raise ValidationError("rounds must be >= 1")
    if margin < 0:
        raise ValidationError("margin must be >= 0")
    space, context = runner.space, runner.context
    incumbent_config = space.default_config()
    baseline = runner.run_baseline()
    if not baseline.ok:
        raise ValidationError(
            "the default configuration failed to measure "
            f"({baseline.status}: {baseline.error}) — cannot tune")
    incumbent = baseline
    trace: List[Dict[str, object]] = []

    for round_index in range(1, rounds + 1):
        accepted_any = False
        for parameter in space.names():
            best: Optional[Tuple[float, Dict, RunRecord, object]] = None
            for name, value, config, skip_reason in \
                    space.one_factor_configs(incumbent_config, context):
                if name != parameter:
                    continue
                entry = {"round": round_index, "parameter": parameter,
                         "value": value, "run_id": config_id(config),
                         "accepted": False}
                if skip_reason is not None:
                    entry.update(status="skipped", reason=skip_reason)
                    trace.append(entry)
                    continue
                record = runner.run_config(config)
                entry["status"] = record.status
                if not record.ok:
                    entry["reason"] = record.error
                    trace.append(entry)
                    continue
                ok, reason = _dominates(record, incumbent, margin)
                entry["reason"] = reason
                trace.append(entry)
                if not ok:
                    continue
                i = incumbent.metrics
                gain = ((i.p99_seconds - record.metrics.p99_seconds)
                        / i.p99_seconds if i.p99_seconds > 0 else 0.0) \
                    + ((record.metrics.throughput_rps - i.throughput_rps)
                       / i.throughput_rps if i.throughput_rps > 0 else 0.0)
                # Strictly-better keeps the first (declared-order) value
                # on ties — deterministic under a deterministic measure.
                if best is None or gain > best[0]:
                    best = (gain, config, record, value)
            if best is not None:
                _, incumbent_config, incumbent, value = best
                accepted_any = True
                trace.append({"round": round_index, "parameter": parameter,
                              "value": value, "run_id": incumbent.run_id,
                              "status": "ok", "accepted": True,
                              "reason": "new incumbent"})
        if not accepted_any:
            break

    return SelectionResult(config=dict(incumbent_config),
                           run_id=incumbent.run_id, baseline=baseline,
                           selected=incumbent, trace=tuple(trace))


def make_artifact(config: Dict[str, object], *, graph_name: str = "g",
                  workload: str = "",
                  baseline: Optional[RunRecord] = None,
                  selected: Optional[RunRecord] = None
                  ) -> Dict[str, object]:
    """Build the serving-config artifact ``from_config`` consumes."""
    missing = [key for key in SERVICE_KEYS + QUERY_KEYS if key not in config]
    if missing:
        raise ValidationError(
            f"config is missing parameters {missing!r} — artifacts are "
            "built from complete configurations")
    meta: Dict[str, object] = {"graph_name": graph_name,
                               "run_id": config_id(config)}
    if workload:
        meta["workload"] = workload
    if selected is not None and selected.metrics is not None:
        meta["metrics"] = selected.metrics.as_dict()
    if baseline is not None and baseline.metrics is not None:
        meta["baseline"] = {"run_id": baseline.run_id,
                            "metrics": baseline.metrics.as_dict()}
    return {
        "version": ARTIFACT_VERSION,
        "kind": ARTIFACT_KIND,
        "service": {key: config[key] for key in SERVICE_KEYS},
        "query": {key: config[key] for key in QUERY_KEYS},
        "meta": meta,
    }
