"""Command-line interface: label graphs, analyze convergence, run experiments.

The CLI mirrors how the paper's artifacts would be used from a shell:

``python -m repro label``
    Run BP / LinBP / LinBP* / SBP on a graph stored as an edge list plus a
    belief table (the relational ``A`` and ``E`` layouts of Section 5.3) and
    write the final beliefs and top labels.

``python -m repro analyze``
    Print the convergence report of Lemmas 8/9 for a graph and coupling
    matrix: spectral radii and the largest safe coupling scale.

``python -m repro experiment``
    Re-run one of the paper's experiments (Fig. 4, Fig. 6a, Fig. 7a–g,
    Fig. 10, Fig. 11, Appendix G) and print the resulting table.

``python -m repro serve``
    Run the propagation service: JSON requests (one per line, over stdin
    or TCP), plain-text responses.  Concurrent queries against one graph
    are micro-batched through the engine (see
    :mod:`repro.service.protocol` for the operations).

``python -m repro stats``
    Query a running ``repro serve`` instance for its request counters
    (``stats``) or its full telemetry registry (``--metrics``), over the
    versioned line protocol.

``python -m repro partition``
    Split a graph into shards (BFS edge-cut or hash baseline) and report
    cut size, balance and halo volume — the quantities that decide
    whether sharded propagation (``label --shards``) pays off.

``python -m repro sql-info``
    Report which SQL execution backends (``label --backend``) are usable:
    the pure-Python reference, the stdlib SQLite engine, and the optional
    DuckDB engine.

``python -m repro backends``
    Report which array backends (``label --dtype/--precision``) are
    usable: the numpy host backend, the optional cupy device backend,
    and the in-place/compiled SpMM kernels, with their supported dtypes.

Every command works on plain text files and prints plain text, so results can
be piped into other tools.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from repro import __version__
from repro.core import belief_propagation, convergence, linbp, linbp_star, sbp
from repro.coupling.matrices import CouplingMatrix
from repro.exceptions import ReproError
from repro.graphs import io as graph_io

__all__ = ["main", "build_parser"]

METHODS: Dict[str, Callable] = {
    "bp": belief_propagation,
    "linbp": linbp,
    "linbp*": linbp_star,
    "sbp": sbp,
}


def _positive_int(text: str) -> int:
    """argparse type: an integer >= 1 (clear error on nonsense values)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {value}")
    return value


def _non_negative_int(text: str) -> int:
    """argparse type: an integer >= 0 (clear error on nonsense values)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative integer, got {value}")
    return value


def _non_negative_float(text: str) -> float:
    """argparse type: a finite float >= 0 (clear error on nonsense values)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not np.isfinite(value) or value < 0:
        raise argparse.ArgumentTypeError(
            f"expected a non-negative number, got {text}")
    return value


def _load_coupling(path: Path, epsilon: float) -> CouplingMatrix:
    """Load a coupling matrix from a JSON file.

    The file holds either ``{"residual": [[...]]}`` (an unscaled residual
    matrix Ĥo) or ``{"stochastic": [[...]]}`` (a doubly stochastic matrix as
    in Fig. 1); class names may be supplied under ``"classes"``.
    """
    data = json.loads(Path(path).read_text())
    class_names = data.get("classes")
    if "residual" in data:
        return CouplingMatrix.from_residual(np.asarray(data["residual"], dtype=float),
                                            epsilon=epsilon, class_names=class_names)
    if "stochastic" in data:
        return CouplingMatrix.from_stochastic(np.asarray(data["stochastic"], dtype=float),
                                              epsilon=epsilon, class_names=class_names)
    raise ReproError("coupling file must contain a 'residual' or 'stochastic' matrix")


def _label_sharded(args: argparse.Namespace, graph, coupling, explicit):
    """Run one labeling query through the shard subsystem (``--shards p``)."""
    from repro import engine, shard
    from repro.engine import precision as engine_precision

    if args.method not in ("linbp", "linbp*"):
        raise ReproError(
            f"--shards requires a LinBP-family method (linbp, linbp*); "
            f"{args.method!r} has no block-Jacobi form")
    echo = args.method == "linbp"
    dtype = engine.canonical_dtype(args.dtype)
    if args.precision == "auto":
        # Certify on the cached float64 single-matrix plan (the Lemma 8
        # budget is a property of A, H and the explicit scale, not of the
        # partition), then run the sharded engine in the certified dtype.
        reference = engine.get_plan(graph, coupling, echo_cancellation=echo)
        decision = engine_precision.decide_linbp(
            reference, args.tolerance,
            engine_precision.explicit_scale([explicit]))
        dtype = decision.dtype
        print(f"precision: {decision.reason}", file=sys.stderr)
    partition = shard.partition_graph(graph, args.shards,
                                      method=args.partition_method)
    plan = shard.get_sharded_plan(partition, coupling,
                                  echo_cancellation=echo, dtype=dtype)
    if args.shard_executor == "pool":
        with shard.ShardWorkerPool(partition) as executor:
            return shard.run_sharded_batch(
                plan, [explicit], max_iterations=args.max_iterations,
                executor=executor)[0]
    return shard.run_sharded_batch(plan, [explicit],
                                   max_iterations=args.max_iterations)[0]


def _label_backend(args: argparse.Namespace, graph, coupling, explicit):
    """Run one labeling query on a relational execution backend."""
    from repro.relational.engine import run_propagation

    if args.method == "bp":
        raise ReproError(
            "--backend runs the paper's relational programs; method 'bp' has "
            "no relational form (use linbp, linbp* or sbp)")
    if args.shards > 1:
        raise ReproError("--backend and --shards are mutually exclusive; "
                         "the SQL backends run single-process")
    return run_propagation(graph, coupling, explicit, method=args.method,
                           backend=args.backend, database=args.database,
                           max_iterations=args.max_iterations)


def _label_engine(args: argparse.Namespace, graph, coupling, explicit):
    """Run one labeling query on the batched engine in a requested dtype."""
    from repro import engine

    if args.method == "bp":
        raise ReproError(
            "--dtype/--precision drive the linearized engine; method 'bp' "
            "has no linearized form (use linbp, linbp* or sbp)")
    if args.method == "sbp":
        if args.precision == "auto":
            results, decision = engine.run_sbp_batch_auto(
                graph, coupling, [explicit], tolerance=args.tolerance)
            print(f"precision: {decision.reason}", file=sys.stderr)
            return results[0]
        return engine.run_sbp_batch(graph, coupling, [explicit],
                                    dtype=args.dtype)[0]
    echo = args.method == "linbp"
    if args.precision == "auto":
        results, decision = engine.run_batch_auto(
            graph, coupling, [explicit], echo_cancellation=echo,
            max_iterations=args.max_iterations, tolerance=args.tolerance)
        print(f"precision: {decision.reason}", file=sys.stderr)
        return results[0]
    plan = engine.get_plan(graph, coupling, echo_cancellation=echo,
                           dtype=args.dtype)
    return engine.run_batch(plan, [explicit],
                            max_iterations=args.max_iterations,
                            tolerance=args.tolerance)[0]


def _command_label(args: argparse.Namespace) -> int:
    graph = graph_io.read_edge_list(args.graph, num_nodes=args.num_nodes)
    coupling = _load_coupling(args.coupling, args.epsilon)
    explicit = graph_io.read_belief_table(args.beliefs, num_nodes=graph.num_nodes,
                                          num_classes=coupling.num_classes)
    mixed = args.dtype != "float64" or args.precision != "strict"
    if args.backend is not None:
        if mixed:
            raise ReproError(
                "--backend runs on a SQL engine with its own numeric types; "
                "--dtype/--precision apply to the in-memory engine only")
        result = _label_backend(args, graph, coupling, explicit)
    elif args.shards > 1:
        result = _label_sharded(args, graph, coupling, explicit)
    elif mixed:
        result = _label_engine(args, graph, coupling, explicit)
    else:
        method = METHODS[args.method]
        if args.method in ("bp", "linbp", "linbp*"):
            result = method(graph, coupling, explicit,
                            max_iterations=args.max_iterations)
        else:
            result = method(graph, coupling, explicit)
    print(result.summary())
    labels = result.hard_labels()
    if args.output:
        graph_io.write_belief_table(result.beliefs, args.output,
                                    skip_zero_rows=False)
        print(f"final beliefs written to {args.output}")
    shown = 0
    for node in range(graph.num_nodes):
        if labels[node] < 0:
            continue
        print(f"{node}\t{coupling.name_of(int(labels[node]))}")
        shown += 1
        if args.limit and shown >= args.limit:
            print(f"... ({graph.num_nodes - shown} more nodes)")
            break
    return 0


def _command_analyze(args: argparse.Namespace) -> int:
    graph = graph_io.read_edge_list(args.graph, num_nodes=args.num_nodes)
    coupling = _load_coupling(args.coupling, 1.0)
    report = convergence.analyze(graph, coupling,
                                 include_mooij_kappen=args.mooij_kappen)
    print(f"nodes:                          {graph.num_nodes}")
    print(f"edges (undirected):             {graph.num_edges}")
    print(f"rho(A):                         {report.spectral_radius_adjacency:.6f}")
    print(f"rho(Ho):                        {report.spectral_radius_coupling_unscaled:.6f}")
    print(f"exact epsilon threshold LinBP:  {report.exact_threshold_linbp:.6f}")
    print(f"exact epsilon threshold LinBP*: {report.exact_threshold_linbp_star:.6f}")
    print(f"norm-bound threshold LinBP:     {report.sufficient_threshold_linbp:.6f}")
    print(f"norm-bound threshold LinBP*:    {report.sufficient_threshold_linbp_star:.6f}")
    if report.mooij_kappen_threshold_bp is not None:
        print(f"Mooij-Kappen c(H)*rho(A_edge):  {report.mooij_kappen_threshold_bp:.6f}")
    return 0


EXPERIMENTS: Dict[str, str] = {
    "fig4": "run_torus_sweep",
    "fig6a": "run_dataset_table",
    "fig7a": "run_memory_scalability",
    "fig7b": "run_relational_scalability",
    "fig7c": "run_timing_table",
    "fig7d": "run_per_iteration_timing",
    "fig7e": "run_incremental_beliefs",
    "fig7fg": "run_quality_sweep",
    "fig10a": "run_explicit_fraction_sweep",
    "fig10b": "run_incremental_edges",
    "fig11": "run_dblp_quality",
    "appendix-g": "run_bound_comparison",
}


def _command_experiment(args: argparse.Namespace) -> int:
    import repro.experiments as experiments

    function = getattr(experiments, EXPERIMENTS[args.name])
    table = function()
    print(table.to_text())
    if args.output:
        Path(args.output).write_text(table.to_text() + "\n")
        print(f"\ntable written to {args.output}")
    return 0


def _command_partition(args: argparse.Namespace) -> int:
    from repro import shard

    graph = graph_io.read_edge_list(args.graph, num_nodes=args.num_nodes)
    partition = shard.partition_graph(graph, args.shards, method=args.method)
    print(partition.describe())
    if args.compare:
        other = "hash" if args.method == "bfs" else "bfs"
        baseline = shard.partition_graph(graph, args.shards, method=other)
        stats, other_stats = partition.stats(), baseline.stats()
        print(f"vs {other}: cut edges {other_stats.cut_edges} "
              f"({other_stats.cut_fraction:.1%}), "
              f"balance {other_stats.balance:.3f}, "
              f"halo volume {other_stats.halo_total}")
        if stats.cut_edges < other_stats.cut_edges:
            saved = 1.0 - stats.cut_edges / other_stats.cut_edges
            print(f"{stats.method} cuts {saved:.1%} fewer edges than {other}")
    return 0


def _command_sql_info(args: argparse.Namespace) -> int:
    from repro.relational.backends import backend_info

    print(f"{'backend':<10} {'status':<13} {'kind':<10} engine")
    for entry in backend_info():
        status = "available" if entry["available"] else "unavailable"
        print(f"{entry['name']:<10} {status:<13} {entry['kind']:<10} "
              f"{entry['engine']}")
    return 0


def _command_backends(args: argparse.Namespace) -> int:
    from repro.engine import array_backend_info

    print(f"{'backend':<14} {'status':<13} {'dtypes':<18} engine")
    for entry in array_backend_info():
        status = "available" if entry["available"] else "unavailable"
        dtypes = ",".join(entry["dtypes"])
        print(f"{entry['name']:<14} {status:<13} {dtypes:<18} "
              f"{entry['engine']}")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceSession

    if args.config is not None:
        # A tuned artifact fixes the whole service configuration; the
        # per-knob flags would silently fight it, so refuse the mix.
        flag_defaults = {"window_ms": 2.0, "max_batch": 16,
                         "result_cache_size": 256, "result_ttl": 300.0,
                         "snapshot_history": 4}
        overridden = [f"--{name.replace('_', '-')}"
                      for name, default in flag_defaults.items()
                      if getattr(args, name) != default]
        if overridden:
            print(f"error: --config replaces {', '.join(overridden)}; "
                  "pass either the artifact or the individual flags",
                  file=sys.stderr)
            return 2
        from repro.service import PropagationService

        with open(args.config, "r", encoding="utf-8") as handle:
            artifact = json.load(handle)
        service = PropagationService.from_config(artifact)
        session = ServiceSession(service)
        print(f"repro serve: configuration from {args.config}",
              file=sys.stderr)
    else:
        session = ServiceSession(
            window_seconds=args.window_ms / 1000.0,
            max_batch=args.max_batch,
            result_cache_size=args.result_cache_size,
            result_ttl_seconds=args.result_ttl if args.result_ttl > 0
            else None,
            snapshot_history=args.snapshot_history,
        )
    metrics_server = None
    if args.metrics_port is not None:
        from repro.obs import iter_registries, start_metrics_server

        metrics_server = start_metrics_server(
            args.metrics_port, host=args.host,
            registries=list(iter_registries(session.service.registry)))
        print(f"repro serve: metrics on "
              f"http://{args.host}:{metrics_server.port}/metrics",
              file=sys.stderr)
    try:
        return _run_serve_frontend(args, session)
    finally:
        if metrics_server is not None:
            metrics_server.stop()


def _run_serve_frontend(args: argparse.Namespace,
                        session: "ServiceSession") -> int:
    """Run the selected serve front end (async TCP, stdin, threaded TCP)."""
    from repro.service import LineProtocolServer, serve_stream

    if getattr(args, "use_async", False):
        import asyncio

        from repro.service import serve_async

        if args.port is None:
            print("error: --async needs --port (stdin mode is synchronous)",
                  file=sys.stderr)
            return 2

        def ready(address):
            print(f"repro serve: async, listening on "
                  f"{address[0]}:{address[1]}", file=sys.stderr)

        try:
            asyncio.run(serve_async(
                session, host=args.host, port=args.port,
                max_pending=args.max_pending,
                max_inflight=args.max_inflight,
                workers=args.async_workers, ready=ready))
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        return 0
    if args.port is None:
        print("repro serve: reading JSON requests from stdin "
              "(one per line; {\"op\": \"shutdown\"} to stop)",
              file=sys.stderr)
        serve_stream(session, sys.stdin, sys.stdout)
        return 0
    server = LineProtocolServer((args.host, args.port), session)
    host, port = server.server_address[:2]
    print(f"repro serve: listening on {host}:{port}", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    finally:
        server.server_close()
    return 0


def _tune_workload(args: argparse.Namespace):
    """Build the seeded workload ``repro tune`` / ``repro ablate`` measure.

    Either a real graph (``--graph``, with ``--coupling``) or — the
    benchmark default — a seeded synthetic graph in the streaming
    benchmark's shape.  ``REPRO_BENCH_SMOKE=1`` shrinks the synthetic
    default the same way it shrinks the committed benchmarks.
    """
    import os

    from repro.coupling.presets import synthetic_residual_matrix
    from repro.tune import make_engine_workload, make_mixed_workload

    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
    if args.graph is not None:
        graph = graph_io.read_edge_list(args.graph, num_nodes=args.num_nodes)
        graph_name = args.graph.stem
    else:
        from repro.graphs.generators import random_graph

        nodes = args.nodes if args.nodes is not None else \
            (160 if smoke else 400)
        graph = random_graph(nodes, args.edge_probability, seed=args.seed)
        graph_name = f"random-{nodes}"
    if args.coupling is not None:
        coupling = _load_coupling(args.coupling, args.epsilon)
    else:
        coupling = synthetic_residual_matrix(epsilon=args.epsilon)
    requests_per_client = args.requests_per_client if \
        args.requests_per_client is not None else (4 if smoke else 8)
    if args.workload == "engine":
        return make_engine_workload(
            graph, coupling, seed=args.seed,
            max_iterations=args.max_iterations, graph_name=graph_name)
    return make_mixed_workload(
        graph, coupling, seed=args.seed, num_clients=args.clients,
        requests_per_client=requests_per_client,
        max_iterations=args.max_iterations, graph_name=graph_name)


def _tune_progress(record) -> None:
    detail = ""
    if record.metrics is not None:
        detail = (f" p99 {record.metrics.p99_seconds * 1000.0:.2f}ms, "
                  f"{record.metrics.throughput_rps:.1f} req/s")
    elif record.error:
        detail = f" {record.error.splitlines()[-1]}"
    print(f"  {record.run_id} {record.status}{detail}", file=sys.stderr)


def _tune_runner(args: argparse.Namespace):
    from repro.tune import AblationRunner

    workload = _tune_workload(args)
    print(f"workload: {workload.description}", file=sys.stderr)
    return AblationRunner(workload,
                          run_timeout_seconds=args.run_timeout,
                          progress=_tune_progress)


def _command_ablate(args: argparse.Namespace) -> int:
    from repro.tune import build_report

    runner = _tune_runner(args)
    baseline, runs = runner.run_ablation()
    report = build_report(baseline, runs,
                          workload=runner.workload.description)
    if args.json is not None:
        args.json.write_text(json.dumps(report.as_dict(), indent=2,
                                        sort_keys=True) + "\n")
        print(f"ablation report written to {args.json}", file=sys.stderr)
    sys.stdout.write(report.render())
    return 0


def _command_tune(args: argparse.Namespace) -> int:
    from repro.tune import select_config

    runner = _tune_runner(args)
    selection = select_config(runner, rounds=args.rounds,
                              margin=args.margin)
    artifact = selection.artifact(graph_name=runner.workload.graph_name,
                                  workload=runner.workload.description)
    args.output.write_text(json.dumps(artifact, indent=2, sort_keys=True)
                           + "\n")
    base, best = selection.baseline.metrics, selection.selected.metrics
    print(f"baseline {selection.baseline.run_id}: "
          f"p99 {base.p99_seconds * 1000.0:.2f}ms, "
          f"{base.throughput_rps:.1f} req/s")
    print(f"selected {selection.run_id}: "
          f"p99 {best.p99_seconds * 1000.0:.2f}ms, "
          f"{best.throughput_rps:.1f} req/s"
          + ("" if selection.improved else " (default config kept)"))
    changed = {key: value for key, value in selection.config.items()
               if runner.space.default_config()[key] != value}
    if changed:
        print("changes vs default: " + ", ".join(
            f"{key}={value}" for key, value in sorted(changed.items())))
    print(f"serving config written to {args.output} "
          f"(use: repro serve --config {args.output})")
    return 0


def _print_stats_tree(data: dict, indent: int = 0) -> None:
    for key, value in data.items():
        if isinstance(value, dict):
            print("  " * indent + f"{key}:")
            _print_stats_tree(value, indent + 1)
        else:
            print("  " * indent + f"{key}: {value}")


def _command_stats(args: argparse.Namespace) -> int:
    import socket

    request = {"op": "metrics" if args.metrics else "stats", "v": 1}
    if args.metrics and args.prometheus:
        request["format"] = "prometheus"
    try:
        with socket.create_connection((args.host, args.port),
                                      timeout=args.timeout) as sock:
            sock.sendall((json.dumps(request) + "\n").encode("utf-8"))
            with sock.makefile("r", encoding="utf-8") as reader:
                line = reader.readline()
    except OSError as error:
        print(f"error: cannot reach {args.host}:{args.port}: {error}",
              file=sys.stderr)
        return 2
    if not line.strip():
        print("error: server closed the connection without replying",
              file=sys.stderr)
        return 2
    try:
        reply = json.loads(line)
    except json.JSONDecodeError:
        print(f"error: unparseable reply: {line.strip()}", file=sys.stderr)
        return 2
    if not reply.get("ok"):
        error = reply.get("error", {})
        print(f"error: {error.get('code', 'unknown')}: "
              f"{error.get('message', line.strip())}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(reply, indent=2, sort_keys=True))
    elif args.metrics and args.prometheus:
        sys.stdout.write(reply["prometheus"])
    elif args.metrics:
        _print_stats_tree(reply["metrics"])
    else:
        _print_stats_tree(reply["stats"])
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Linearized and Single-Pass Belief Propagation (VLDB 2015) "
                    "— reproduction CLI")
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    label = subparsers.add_parser(
        "label", help="run BP/LinBP/LinBP*/SBP on an edge list + belief table")
    label.add_argument("--graph", required=True, type=Path,
                       help="edge list file: 'source target [weight]' per line")
    label.add_argument("--beliefs", required=True, type=Path,
                       help="explicit beliefs file: 'node class belief' per line")
    label.add_argument("--coupling", required=True, type=Path,
                       help="JSON file with a 'residual' or 'stochastic' matrix")
    label.add_argument("--method", choices=sorted(METHODS), default="linbp")
    label.add_argument("--epsilon", type=float, default=1.0,
                       help="coupling scale epsilon_H (default: 1.0)")
    label.add_argument("--num-nodes", type=int, default=None,
                       help="total number of nodes (default: inferred)")
    label.add_argument("--max-iterations", type=int, default=100)
    label.add_argument("--tolerance", type=float, default=1e-10,
                       help="convergence threshold on the max belief change "
                            "(default: 1e-10)")
    label.add_argument("--dtype", choices=["float32", "float64"],
                       default="float64",
                       help="arithmetic precision of the in-memory engine "
                            "(default: float64)")
    label.add_argument("--precision", choices=["strict", "auto"],
                       default="strict",
                       help="'strict' runs exactly --dtype; 'auto' runs the "
                            "Lemma-8-certified float32 fast path when its "
                            "rounding budget fits --tolerance and falls "
                            "back to float64 otherwise")
    label.add_argument("--output", type=Path, default=None,
                       help="write the final belief table to this path")
    label.add_argument("--limit", type=int, default=20,
                       help="print at most this many node labels (0 = all)")
    label.add_argument("--shards", type=_positive_int, default=1,
                       help="run the propagation sharded over this many "
                            "partitions (LinBP family only; default: 1 = "
                            "single-matrix engine)")
    label.add_argument("--partition-method", choices=["bfs", "hash"],
                       default="bfs",
                       help="partitioner for --shards > 1 (default: bfs)")
    label.add_argument("--shard-executor", choices=["pool", "sequential"],
                       default="pool",
                       help="run shards on a multiprocessing pool or "
                            "in-process (default: pool)")
    label.add_argument("--backend", choices=["python", "sqlite", "duckdb"],
                       default=None,
                       help="run the relational program on an execution "
                            "backend instead of the in-memory engine "
                            "(linbp/linbp*/sbp only; default: in-memory)")
    label.add_argument("--database", default=":memory:",
                       help="database for --backend sqlite/duckdb; a file "
                            "path persists the graph and beliefs "
                            "(default: ':memory:')")
    label.set_defaults(handler=_command_label)

    analyze = subparsers.add_parser(
        "analyze", help="print the convergence report (Lemmas 8 and 9)")
    analyze.add_argument("--graph", required=True, type=Path)
    analyze.add_argument("--coupling", required=True, type=Path)
    analyze.add_argument("--num-nodes", type=int, default=None)
    analyze.add_argument("--mooij-kappen", action="store_true",
                         help="also compute the Mooij-Kappen BP bound (slow)")
    analyze.set_defaults(handler=_command_analyze)

    experiment = subparsers.add_parser(
        "experiment", help="re-run one of the paper's experiments")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS),
                            help="which table/figure to regenerate")
    experiment.add_argument("--output", type=Path, default=None)
    experiment.set_defaults(handler=_command_experiment)

    partition = subparsers.add_parser(
        "partition", help="split a graph into shards; report cut size and "
                          "balance")
    partition.add_argument("--graph", required=True, type=Path,
                           help="edge list file: 'source target [weight]' "
                                "per line")
    partition.add_argument("--shards", required=True, type=_positive_int,
                           help="number of shards (>= 1)")
    partition.add_argument("--method", choices=["bfs", "hash"], default="bfs",
                           help="partitioner: BFS edge-cut or hash baseline "
                                "(default: bfs)")
    partition.add_argument("--num-nodes", type=int, default=None,
                           help="total number of nodes (default: inferred)")
    partition.add_argument("--compare", action="store_true",
                           help="also partition with the other method and "
                                "report the cut-size difference")
    partition.set_defaults(handler=_command_partition)

    sql_info = subparsers.add_parser(
        "sql-info", help="report which SQL execution backends are usable")
    sql_info.set_defaults(handler=_command_sql_info)

    backends = subparsers.add_parser(
        "backends", help="report which array backends and mixed-precision "
                         "kernels are usable")
    backends.set_defaults(handler=_command_backends)

    serve = subparsers.add_parser(
        "serve", help="run the propagation service (JSON line protocol)")
    serve.add_argument("--port", type=int, default=None,
                       help="TCP port to listen on (0 = pick a free port; "
                            "default: serve stdin/stdout)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for --port (default: 127.0.0.1)")
    serve.add_argument("--window-ms", type=_non_negative_float, default=2.0,
                       help="micro-batching collection window in ms "
                            "(0 disables coalescing; default: 2)")
    serve.add_argument("--max-batch", type=_positive_int, default=16,
                       help="dispatch a batch early at this size (default: 16)")
    serve.add_argument("--result-ttl", type=_non_negative_float, default=300.0,
                       help="result cache TTL in seconds (0 = no expiry; "
                            "default: 300)")
    serve.add_argument("--result-cache-size", type=_non_negative_int,
                       default=256,
                       help="result cache LRU capacity (0 disables result "
                            "caching; default: 256)")
    serve.add_argument("--async", dest="use_async", action="store_true",
                       help="serve with the asyncio front end (admission "
                            "control + per-connection backpressure); "
                            "requires --port")
    serve.add_argument("--max-pending", type=_non_negative_int, default=64,
                       help="async: reject requests above this in-flight "
                            "count with an 'overloaded' error (default: 64)")
    serve.add_argument("--max-inflight", type=_positive_int, default=8,
                       help="async: per-connection cap on unanswered "
                            "requests before reads pause (default: 8)")
    serve.add_argument("--async-workers", type=_positive_int, default=16,
                       help="async: worker threads executing requests "
                            "(default: 16)")
    serve.add_argument("--snapshot-history", type=_non_negative_int,
                       default=4,
                       help="stale snapshot versions kept per graph for "
                            "bounded-staleness queries (default: 4)")
    serve.add_argument("--metrics-port", type=_non_negative_int, default=None,
                       help="also serve Prometheus text metrics over HTTP on "
                            "this port (0 = pick a free port; default: off)")
    serve.add_argument("--config", type=Path, default=None,
                       help="serving-config artifact (from 'repro tune') "
                            "fixing the service and default query settings; "
                            "replaces the per-knob flags")
    serve.set_defaults(handler=_command_serve)

    def add_tune_workload_options(command):
        command.add_argument("--graph", type=Path, default=None,
                             help="edge list file to tune against (default: "
                                  "a seeded synthetic benchmark graph)")
        command.add_argument("--num-nodes", type=int, default=None,
                             help="with --graph: total number of nodes "
                                  "(default: inferred)")
        command.add_argument("--coupling", type=Path, default=None,
                             help="coupling JSON (default: the synthetic "
                                  "3-class residual matrix)")
        command.add_argument("--epsilon", type=float, default=0.005,
                             help="coupling scale epsilon_H (default: 0.005)")
        command.add_argument("--nodes", type=_positive_int, default=None,
                             help="synthetic graph size (default: 400, or "
                                  "160 under REPRO_BENCH_SMOKE=1)")
        command.add_argument("--edge-probability", type=_non_negative_float,
                             default=0.08,
                             help="synthetic graph edge probability "
                                  "(default: 0.08)")
        command.add_argument("--seed", type=_non_negative_int, default=0,
                             help="workload seed; fixing it makes run IDs, "
                                  "rankings and the selected config "
                                  "reproducible (default: 0)")
        command.add_argument("--workload", choices=["mixed", "engine"],
                             default="mixed",
                             help="'mixed' drives a closed-loop update/query "
                                  "service; 'engine' times pure run_batch "
                                  "calls (numeric knobs only; default: "
                                  "mixed)")
        command.add_argument("--clients", type=_positive_int, default=8,
                             help="closed-loop clients of the mixed "
                                  "workload (default: 8)")
        command.add_argument("--requests-per-client", type=_positive_int,
                             default=None,
                             help="requests each client issues (default: 8, "
                                  "or 4 under REPRO_BENCH_SMOKE=1)")
        command.add_argument("--max-iterations", type=_positive_int,
                             default=50,
                             help="solver iteration budget per query "
                                  "(default: 50)")
        command.add_argument("--run-timeout", type=_non_negative_float,
                             default=120.0,
                             help="wall-clock budget per measured config in "
                                  "seconds; a config exceeding it is "
                                  "recorded as timed out (default: 120)")

    ablate = subparsers.add_parser(
        "ablate", help="one-factor ablation over the serving knob space: "
                       "rank each knob's importance on a workload")
    add_tune_workload_options(ablate)
    ablate.add_argument("--json", type=Path, default=None,
                        help="also write the report as JSON to this path")
    ablate.set_defaults(handler=_command_ablate)

    tune = subparsers.add_parser(
        "tune", help="coordinate-descent autotune: select a serving config "
                     "measured no worse than the default")
    add_tune_workload_options(tune)
    tune.add_argument("--rounds", type=_positive_int, default=2,
                      help="coordinate-descent passes over the knob space "
                           "(default: 2)")
    tune.add_argument("--margin", type=_non_negative_float, default=0.02,
                      help="minimum relative improvement to accept a move "
                           "(default: 0.02)")
    tune.add_argument("--output", type=Path, default=Path("tuned.json"),
                      help="where to write the serving-config artifact "
                           "(default: tuned.json)")
    tune.set_defaults(handler=_command_tune)

    stats = subparsers.add_parser(
        "stats", help="query a running 'repro serve' for counters or metrics")
    stats.add_argument("--port", type=_positive_int, required=True,
                       help="TCP port of the running server")
    stats.add_argument("--host", default="127.0.0.1",
                       help="server address (default: 127.0.0.1)")
    stats.add_argument("--metrics", action="store_true",
                       help="fetch the full telemetry registry instead of "
                            "the request counters")
    stats.add_argument("--prometheus", action="store_true",
                       help="with --metrics: print Prometheus text "
                            "exposition instead of the key tree")
    stats.add_argument("--json", action="store_true",
                       help="print the raw v1 JSON reply")
    stats.add_argument("--timeout", type=_non_negative_float, default=5.0,
                       help="connection timeout in seconds (default: 5)")
    stats.set_defaults(handler=_command_stats)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro`` and the console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
