"""Incremental maintenance for LinBP (the paper's Section 8 outlook).

The paper supports incremental updates only for SBP and notes that
"incrementally updating the result of LinBP is more challenging since it
involves general matrix computations ... left for future work" (Section 8).
This module provides the two practical mechanisms that the linear-system view
of LinBP makes available:

* **Label updates by superposition.**  The LinBP fixed point is linear in the
  explicit beliefs (Lemma 12 / Proposition 7):
  ``B̂(Ê + ΔÊ) = B̂(Ê) + B̂(ΔÊ)``.  When new labels arrive it therefore
  suffices to solve the system once for the *delta* right-hand side and add
  the correction — no recomputation over the old labels, and the correction
  iteration starts from zero with a right-hand side supported only on the
  changed nodes, so it converges in few sweeps when the update is local.
* **Edge updates by warm starting.**  Adding edges changes the system matrix,
  so superposition does not apply; instead the iteration is restarted from
  the previous fixed point.  Because the Jacobi iteration's error contracts
  geometrically at rate ``ρ(M)`` and the old solution is already close to the
  new one for small edge changes, the warm start needs far fewer iterations
  than a cold start (the tests assert this).

Both operations leave the maintained solution bit-for-bit consistent with a
full recomputation up to the solver tolerance.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.core.events import UpdateNotifier
from repro.core.linbp import LinBP
from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.graphs.graph import Edge, Graph

__all__ = ["IncrementalLinBP"]


class IncrementalLinBP(UpdateNotifier):
    """Maintain a LinBP solution under label and edge updates.

    Parameters
    ----------
    graph:
        The initial undirected, possibly weighted network.
    coupling:
        The scaled residual coupling matrix ``Ĥ``.
    echo_cancellation:
        True (default) maintains full LinBP, False the LinBP* variant.
    max_iterations, tolerance:
        Budget and stopping threshold used by every (re)solve.

    Notes
    -----
    The instance keeps the current explicit beliefs ``Ê`` and the current
    fixed point ``B̂``; :meth:`add_explicit_beliefs` and :meth:`add_edges`
    update both in place and return the usual
    :class:`~repro.core.results.PropagationResult`, whose
    ``extra['update_iterations']`` records how much work the update needed.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix,
                 echo_cancellation: bool = True, max_iterations: int = 200,
                 tolerance: float = 1e-10):
        self.coupling = coupling
        self.echo_cancellation = echo_cancellation
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self._solver = LinBP(graph, coupling, echo_cancellation=echo_cancellation,
                             max_iterations=max_iterations, tolerance=tolerance)
        self._explicit: Optional[np.ndarray] = None
        self._beliefs: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    @property
    def graph(self) -> Graph:
        """The current graph (replaced by :meth:`add_edges`)."""
        return self._solver.graph

    @property
    def beliefs(self) -> np.ndarray:
        """The current fixed point ``B̂`` (copy)."""
        self._require_state()
        return self._beliefs.copy()

    @property
    def explicit_beliefs(self) -> np.ndarray:
        """The current explicit beliefs ``Ê`` (copy)."""
        self._require_state()
        return self._explicit.copy()

    # ------------------------------------------------------------------ #
    # initial solve
    # ------------------------------------------------------------------ #
    def run(self, explicit_residuals: np.ndarray) -> PropagationResult:
        """Solve the system from scratch and remember the solution."""
        explicit = self._check_shape(explicit_residuals)
        result = self._solver.run(explicit)
        self._explicit = explicit.copy()
        self._beliefs = result.beliefs.copy()
        self._notify_update("run", self._method_name())
        return self._package(result, update_iterations=result.iterations)

    # ------------------------------------------------------------------ #
    # incremental label updates (superposition)
    # ------------------------------------------------------------------ #
    def add_explicit_beliefs(self, new_residuals: Mapping[int, np.ndarray] | np.ndarray) -> PropagationResult:
        """Add (or change) explicit beliefs without re-solving for old labels.

        ``new_residuals`` is either a mapping ``node -> new residual row`` or
        a full matrix whose non-zero rows are the new values.  Rows given here
        *replace* the node's previous explicit beliefs; the correction solved
        for is the difference.
        """
        self._require_state()
        delta = self._delta_from(new_residuals)
        if not np.any(delta):
            return self._package_current(update_iterations=0)
        correction = self._solver.run(delta)
        self._explicit = self._explicit + delta
        self._beliefs = self._beliefs + correction.beliefs
        self._notify_update("explicit_beliefs", self._method_name(),
                            nodes_updated=int(np.count_nonzero(
                                np.any(delta != 0.0, axis=1))))
        return self._package_current(update_iterations=correction.iterations,
                                     converged=correction.converged)

    # ------------------------------------------------------------------ #
    # incremental edge updates (warm start)
    # ------------------------------------------------------------------ #
    def add_edges(self, new_edges: Iterable[Tuple[int, int] | Tuple[int, int, float] | Edge],
                  updated_graph: Optional[Graph] = None) -> PropagationResult:
        """Add edges and repair the solution by warm-started iteration.

        ``updated_graph`` may supply the prebuilt successor graph (it must
        equal ``self.graph.with_edges_added(new_edges)``); the propagation
        service passes it so every maintained view shares one graph object
        — and therefore one cached engine plan — with the snapshot.
        """
        self._require_state()
        edges = list(new_edges)
        if not edges:
            return self._package_current(update_iterations=0)
        new_graph = updated_graph if updated_graph is not None \
            else self.graph.with_edges_added(edges)
        self._solver = LinBP(new_graph, self.coupling,
                             echo_cancellation=self.echo_cancellation,
                             max_iterations=self.max_iterations,
                             tolerance=self.tolerance)
        warm = self._solver.run(self._explicit, initial_beliefs=self._beliefs)
        self._beliefs = warm.beliefs.copy()
        self._notify_update("edges", self._method_name(),
                            num_edges=len(edges))
        return self._package_current(update_iterations=warm.iterations,
                                     converged=warm.converged)

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _method_name(self) -> str:
        return "LinBP (incremental)" if self.echo_cancellation \
            else "LinBP* (incremental)"

    def _require_state(self) -> None:
        if self._beliefs is None or self._explicit is None:
            raise ValidationError("call run() before incremental updates")

    def _check_shape(self, matrix: np.ndarray) -> np.ndarray:
        array = np.asarray(matrix, dtype=float)
        expected = (self.graph.num_nodes, self.coupling.num_classes)
        if array.shape != expected:
            raise ValidationError(f"expected a matrix of shape {expected}, "
                                  f"got {array.shape}")
        return array

    def _delta_from(self, new_residuals: Mapping[int, np.ndarray] | np.ndarray) -> np.ndarray:
        k = self.coupling.num_classes
        delta = np.zeros_like(self._explicit)
        if isinstance(new_residuals, Mapping):
            for node, vector in new_residuals.items():
                array = np.asarray(vector, dtype=float)
                if array.shape != (k,):
                    raise ValidationError(
                        f"belief vector for node {node} must have length {k}")
                delta[int(node)] = array - self._explicit[int(node)]
            return delta
        matrix = self._check_shape(new_residuals)
        changed = np.any(matrix != 0.0, axis=1)
        delta[changed] = matrix[changed] - self._explicit[changed]
        return delta

    def _package(self, result: PropagationResult, update_iterations: int,
                 converged: Optional[bool] = None) -> PropagationResult:
        return PropagationResult(
            beliefs=self._beliefs.copy(),
            method="LinBP (incremental)" if self.echo_cancellation
            else "LinBP* (incremental)",
            iterations=result.iterations,
            converged=result.converged if converged is None else converged,
            residual_history=list(result.residual_history),
            extra={"update_iterations": update_iterations,
                   "echo_cancellation": self.echo_cancellation,
                   "epsilon": self.coupling.epsilon},
        )

    def _package_current(self, update_iterations: int,
                         converged: bool = True) -> PropagationResult:
        return PropagationResult(
            beliefs=self._beliefs.copy(),
            method="LinBP (incremental)" if self.echo_cancellation
            else "LinBP* (incremental)",
            iterations=update_iterations,
            converged=converged,
            residual_history=[],
            extra={"update_iterations": update_iterations,
                   "echo_cancellation": self.echo_cancellation,
                   "epsilon": self.coupling.epsilon},
        )
