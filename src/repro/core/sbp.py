"""Single-Pass Belief Propagation (SBP) with incremental maintenance.

SBP (Section 6 of the paper) is the limit of LinBP as the coupling scale
``ε_H`` tends to zero: the standardized beliefs of a node depend only on its
*nearest* explicitly labeled neighbours.  Concretely (Definition 15), a node
``t`` with geodesic number ``g`` receives

.. math::

    \\hat b_t = \\hat H^{g} \\sum_{p \\in P^g_t} w_p\\, \\hat e_p

summing over all shortest paths ``p`` from labeled nodes to ``t`` (``w_p`` is
the product of edge weights along ``p``).  Equivalently (Lemma 17), SBP equals
LinBP run over the acyclic modified adjacency matrix ``A*`` in which only
edges from geodesic level ``g`` to level ``g+1`` survive — so the computation
needs a single sweep over the levels and touches every edge at most once.

The class :class:`SBP` performs the initial single-pass computation
(Algorithm 2) and supports the two incremental updates from the paper:

* :meth:`SBP.add_explicit_beliefs` — Algorithm 3, new/changed labeled nodes;
* :meth:`SBP.add_edges` — Algorithm 4 (appendix), new edges.

Both updates only touch the nodes whose geodesic number or belief actually
changes, which is what makes SBP attractive for dynamic graphs.

All the numerics route through :mod:`repro.engine.sbp_plan`: the initial
sweep runs on a cached :class:`~repro.engine.sbp_plan.SBPPlan` (vectorised
BFS, per-level CSR slices, ping-pong buffers), and the incremental updates
use its vectorised frontier repairs.  Many queries sharing a labeled set
can be propagated together with
:func:`repro.engine.sbp_plan.run_sbp_batch`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.core.events import UpdateNotifier
from repro.core.results import PropagationResult
from repro.engine import sbp_plan as engine_sbp
from repro.exceptions import ValidationError
from repro.graphs.graph import Edge, Graph

__all__ = ["SBP", "sbp"]


class SBP(UpdateNotifier):
    """Single-pass BP runner with incremental update support.

    Parameters
    ----------
    graph:
        The undirected, possibly weighted network.
    coupling:
        The coupling matrix.  Because SBP's standardized output is invariant
        to the scale ``ε_H`` (Section 6.2), the default scale 1 is normally
        used; the raw belief magnitudes do scale with ``ε_H`` as
        ``ε_H^{g}`` which matters only for Fig. 4d-style plots.

    Notes
    -----
    After :meth:`run`, the instance keeps the computed geodesic numbers and
    beliefs as state so the incremental methods can update them in place.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix):
        self.graph = graph
        self.coupling = coupling
        self._residual = coupling.residual
        self._geodesic: Optional[np.ndarray] = None
        self._beliefs: Optional[np.ndarray] = None
        self._explicit: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # initial single-pass computation (Algorithm 2)
    # ------------------------------------------------------------------ #
    def run(self, explicit_residuals: np.ndarray) -> PropagationResult:
        """Compute SBP beliefs for all nodes in a single sweep over levels.

        The sweep runs on the cached :class:`~repro.engine.sbp_plan.SBPPlan`
        for this graph and labeled set — repeated runs against the same
        labels reuse the geodesic structure and only redo the per-level
        products.  Nodes that cannot reach any labeled node keep all-zero
        beliefs and geodesic number :data:`repro.graphs.geodesic.UNREACHABLE`.
        """
        explicit = self._check_explicit(explicit_residuals)
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        plan = engine_sbp.get_sbp_plan(self.graph, labeled)
        beliefs, edges_touched = plan.propagate(explicit, self._residual)
        self._geodesic = plan.geodesic_numbers.copy()
        self._beliefs = beliefs
        self._explicit = explicit.copy()
        self._notify_update("run", "SBP")
        return self._result(edges_touched=edges_touched)

    # ------------------------------------------------------------------ #
    # incremental update: new explicit beliefs (Algorithm 3)
    # ------------------------------------------------------------------ #
    def add_explicit_beliefs(self, new_residuals: Mapping[int, np.ndarray] | np.ndarray) -> PropagationResult:
        """Incorporate new (or changed) explicit beliefs without a full re-run.

        Parameters
        ----------
        new_residuals:
            Either a mapping ``node -> residual vector`` or a full ``n x k``
            matrix whose non-zero rows are the new explicit beliefs.  All
            nodes and vectors are validated *before* any state is touched,
            so a malformed update leaves the runner unchanged.

        Returns
        -------
        PropagationResult
            The updated full belief matrix.  ``extra['nodes_updated']``
            reports how many nodes had their geodesic number or belief
            recomputed — the quantity that makes ΔSBP cheaper than a full
            recomputation (Fig. 7e).
        """
        self._require_state()
        updates = self._normalize_updates(new_residuals)
        if not updates:
            return self._result(edges_touched=0, nodes_updated=0)
        nodes = np.fromiter(updates.keys(), dtype=np.int64, count=len(updates))
        vectors = np.vstack([updates[int(node)] for node in nodes])
        stats = engine_sbp.repair_explicit_beliefs(
            self.graph.adjacency, self._geodesic, self._beliefs,
            self._explicit, self._residual, nodes, vectors)
        self._notify_update("explicit_beliefs", "SBP",
                            nodes_updated=stats.nodes_updated,
                            num_labels=len(updates))
        return self._result(edges_touched=stats.edges_touched,
                            nodes_updated=stats.nodes_updated)

    # ------------------------------------------------------------------ #
    # incremental update: new edges (Algorithm 4)
    # ------------------------------------------------------------------ #
    def add_edges(self, new_edges: Iterable[Tuple[int, int] | Tuple[int, int, float] | Edge],
                  updated_graph: Optional[Graph] = None) -> PropagationResult:
        """Incorporate new edges without a full re-run (Algorithm 4).

        The graph held by this instance is replaced by a new :class:`Graph`
        containing the added edges; geodesic numbers and beliefs are then
        repaired outwards from the "seed" endpoints whose geodesic number (or
        belief) the new edges change.

        ``updated_graph`` may supply the successor graph directly when the
        caller already built ``self.graph.with_edges_added(new_edges)`` —
        the propagation service does this so every maintained view and the
        service snapshot share *one* graph object (and therefore one set of
        cached engine plans) instead of each rebuilding an identical copy.
        It must equal exactly that successor; passing anything else breaks
        the repair's invariants.
        """
        self._require_state()
        edges = self._normalize_edges(new_edges)
        if not edges:
            return self._result(edges_touched=0, nodes_updated=0)
        # Line 1: update the adjacency matrix.
        self.graph = updated_graph if updated_graph is not None \
            else self.graph.with_edges_added(edges)
        sources = np.array([edge.source for edge in edges], dtype=np.int64)
        targets = np.array([edge.target for edge in edges], dtype=np.int64)
        stats = engine_sbp.repair_added_edges(
            self.graph.adjacency, self._geodesic, self._beliefs,
            self._explicit, self._residual, sources, targets)
        self._notify_update("edges", "SBP",
                            nodes_updated=stats.nodes_updated,
                            num_edges=len(edges))
        return self._result(edges_touched=stats.edges_touched,
                            nodes_updated=stats.nodes_updated)

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    @property
    def geodesic_numbers(self) -> np.ndarray:
        """Geodesic numbers after the last run/update (copy)."""
        self._require_state()
        return self._geodesic.copy()

    @property
    def beliefs(self) -> np.ndarray:
        """Residual final beliefs after the last run/update (copy)."""
        self._require_state()
        return self._beliefs.copy()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _result(self, edges_touched: int, nodes_updated: Optional[int] = None) -> PropagationResult:
        extra: Dict[str, object] = {
            "geodesic_numbers": self._geodesic.copy(),
            "edges_touched": edges_touched,
            "epsilon": self.coupling.epsilon,
        }
        if nodes_updated is not None:
            extra["nodes_updated"] = nodes_updated
        max_level = int(self._geodesic.max()) if self._geodesic.size else 0
        return PropagationResult(
            beliefs=self._beliefs.copy(),
            method="SBP",
            iterations=max(0, max_level),
            converged=True,
            residual_history=[],
            extra=extra,
        )

    def _require_state(self) -> None:
        if self._beliefs is None or self._geodesic is None or self._explicit is None:
            raise ValidationError("call run() before using incremental updates "
                                  "or accessing state")

    def _check_explicit(self, explicit_residuals: np.ndarray) -> np.ndarray:
        explicit = np.asarray(explicit_residuals, dtype=float)
        if explicit.ndim != 2:
            raise ValidationError("explicit beliefs must be a 2-D matrix")
        if explicit.shape[0] != self.graph.num_nodes:
            raise ValidationError(
                f"expected {self.graph.num_nodes} rows, got {explicit.shape[0]}")
        if explicit.shape[1] != self.coupling.num_classes:
            raise ValidationError(
                f"expected {self.coupling.num_classes} columns, "
                f"got {explicit.shape[1]}")
        return explicit

    def _normalize_updates(self, new_residuals: Mapping[int, np.ndarray] | np.ndarray) -> Dict[int, np.ndarray]:
        k = self.coupling.num_classes
        n = self.graph.num_nodes
        updates: Dict[int, np.ndarray] = {}
        if isinstance(new_residuals, Mapping):
            # Validate every node index and vector before returning, so the
            # caller never mutates state from a partially valid mapping (a
            # negative index would otherwise silently address from the end
            # of the belief matrix, an overflowing one would raise after
            # earlier entries were already applied).
            for node, vector in new_residuals.items():
                index = int(node)
                if index < 0 or index >= n:
                    raise ValidationError(
                        f"node {node} out of range [0, {n})")
                array = np.asarray(vector, dtype=float)
                if array.shape != (k,):
                    raise ValidationError(
                        f"belief vector for node {node} must have length {k}")
                updates[index] = array
            return updates
        matrix = np.asarray(new_residuals, dtype=float)
        if matrix.shape != (n, k):
            raise ValidationError(
                f"expected a {n} x {k} matrix of new beliefs")
        for node in np.nonzero(np.any(matrix != 0.0, axis=1))[0]:
            updates[int(node)] = matrix[node]
        return updates

    @staticmethod
    def _normalize_edges(new_edges: Iterable) -> List[Edge]:
        edges: List[Edge] = []
        for item in new_edges:
            if isinstance(item, Edge):
                edges.append(item)
            elif len(item) == 2:
                edges.append(Edge(int(item[0]), int(item[1]), 1.0))
            else:
                edges.append(Edge(int(item[0]), int(item[1]), float(item[2])))
        return edges


def sbp(graph: Graph, coupling: CouplingMatrix,
        explicit_residuals: np.ndarray) -> PropagationResult:
    """Functional one-shot interface to :class:`SBP` (initial computation only)."""
    runner = SBP(graph, coupling)
    return runner.run(explicit_residuals)
