"""Single-Pass Belief Propagation (SBP) with incremental maintenance.

SBP (Section 6 of the paper) is the limit of LinBP as the coupling scale
``ε_H`` tends to zero: the standardized beliefs of a node depend only on its
*nearest* explicitly labeled neighbours.  Concretely (Definition 15), a node
``t`` with geodesic number ``g`` receives

.. math::

    \\hat b_t = \\hat H^{g} \\sum_{p \\in P^g_t} w_p\\, \\hat e_p

summing over all shortest paths ``p`` from labeled nodes to ``t`` (``w_p`` is
the product of edge weights along ``p``).  Equivalently (Lemma 17), SBP equals
LinBP run over the acyclic modified adjacency matrix ``A*`` in which only
edges from geodesic level ``g`` to level ``g+1`` survive — so the computation
needs a single sweep over the levels and touches every edge at most once.

The class :class:`SBP` performs the initial single-pass computation
(Algorithm 2) and supports the two incremental updates from the paper:

* :meth:`SBP.add_explicit_beliefs` — Algorithm 3, new/changed labeled nodes;
* :meth:`SBP.add_edges` — Algorithm 4 (appendix), new edges.

Both updates only touch the nodes whose geodesic number or belief actually
changes, which is what makes SBP attractive for dynamic graphs.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.coupling.matrices import CouplingMatrix
from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.graphs.geodesic import UNREACHABLE, geodesic_levels, modified_adjacency
from repro.graphs.graph import Edge, Graph

__all__ = ["SBP", "sbp"]


class SBP:
    """Single-pass BP runner with incremental update support.

    Parameters
    ----------
    graph:
        The undirected, possibly weighted network.
    coupling:
        The coupling matrix.  Because SBP's standardized output is invariant
        to the scale ``ε_H`` (Section 6.2), the default scale 1 is normally
        used; the raw belief magnitudes do scale with ``ε_H`` as
        ``ε_H^{g}`` which matters only for Fig. 4d-style plots.

    Notes
    -----
    After :meth:`run`, the instance keeps the computed geodesic numbers and
    beliefs as state so the incremental methods can update them in place.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix):
        self.graph = graph
        self.coupling = coupling
        self._residual = coupling.residual
        self._geodesic: Optional[np.ndarray] = None
        self._beliefs: Optional[np.ndarray] = None
        self._explicit: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # initial single-pass computation (Algorithm 2)
    # ------------------------------------------------------------------ #
    def run(self, explicit_residuals: np.ndarray) -> PropagationResult:
        """Compute SBP beliefs for all nodes in a single sweep over levels.

        Nodes that cannot reach any labeled node keep all-zero beliefs and
        geodesic number :data:`repro.graphs.geodesic.UNREACHABLE`.
        """
        explicit = self._check_explicit(explicit_residuals)
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        n, k = explicit.shape
        beliefs = np.zeros((n, k))
        geodesic = np.full(n, UNREACHABLE, dtype=np.int64)
        edges_touched = 0
        if labeled.size:
            levels = geodesic_levels(self.graph, labeled.tolist())
            geodesic = levels.numbers.copy()
            beliefs[labeled] = explicit[labeled]
            dag = modified_adjacency(self.graph, labeled.tolist())
            dag_t = dag.T.tocsr()  # rows: receiving node, columns: senders
            for level in range(1, levels.max_level + 1):
                nodes = levels.nodes_at(level)
                if nodes.size == 0:
                    break
                block = dag_t[nodes]  # (len(nodes) x n) sparse
                edges_touched += block.nnz
                beliefs[nodes] = (block @ beliefs) @ self._residual
        self._geodesic = geodesic
        self._beliefs = beliefs
        self._explicit = explicit.copy()
        return self._result(edges_touched=edges_touched)

    # ------------------------------------------------------------------ #
    # incremental update: new explicit beliefs (Algorithm 3)
    # ------------------------------------------------------------------ #
    def add_explicit_beliefs(self, new_residuals: Mapping[int, np.ndarray] | np.ndarray) -> PropagationResult:
        """Incorporate new (or changed) explicit beliefs without a full re-run.

        Parameters
        ----------
        new_residuals:
            Either a mapping ``node -> residual vector`` or a full ``n x k``
            matrix whose non-zero rows are the new explicit beliefs.

        Returns
        -------
        PropagationResult
            The updated full belief matrix.  ``extra['nodes_updated']``
            reports how many nodes had their geodesic number or belief
            recomputed — the quantity that makes ΔSBP cheaper than a full
            recomputation (Fig. 7e).
        """
        self._require_state()
        updates = self._normalize_updates(new_residuals)
        if not updates:
            return self._result(edges_touched=0, nodes_updated=0)
        beliefs = self._beliefs
        geodesic = self._geodesic
        explicit = self._explicit
        residual = self._residual
        adjacency = self.graph.adjacency
        # Line 1-2 of Algorithm 3: new labeled nodes get geodesic number 0 and
        # their explicit beliefs.
        frontier: List[int] = []
        for node, vector in updates.items():
            explicit[node] = vector
            beliefs[node] = vector
            geodesic[node] = 0
            frontier.append(node)
        nodes_updated = len(frontier)
        edges_touched = 0
        level = 1
        frontier_set = set(frontier)
        while frontier_set:
            # Line 5: nodes adjacent to the previous frontier whose geodesic
            # number is not already smaller than the candidate level.
            candidates = set()
            for node in frontier_set:
                neighbors, _ = self.graph.neighbors(node)
                candidates.update(int(v) for v in neighbors)
            next_frontier = set()
            for node in candidates:
                current = geodesic[node]
                if current != UNREACHABLE and current < level:
                    continue
                next_frontier.add(node)
            # Line 6: recompute beliefs of the next frontier from *all* of
            # their parents at level-1 (updated or not).
            for node in next_frontier:
                geodesic[node] = level
            for node in next_frontier:
                neighbors, weights = self.graph.neighbors(node)
                accumulated = np.zeros(beliefs.shape[1])
                for neighbor, weight in zip(neighbors, weights):
                    if geodesic[neighbor] == level - 1:
                        accumulated += weight * beliefs[neighbor]
                        edges_touched += 1
                beliefs[node] = accumulated @ residual
            nodes_updated += len(next_frontier)
            frontier_set = next_frontier
            level += 1
        return self._result(edges_touched=edges_touched, nodes_updated=nodes_updated)

    # ------------------------------------------------------------------ #
    # incremental update: new edges (Algorithm 4)
    # ------------------------------------------------------------------ #
    def add_edges(self, new_edges: Iterable[Tuple[int, int] | Tuple[int, int, float] | Edge]) -> PropagationResult:
        """Incorporate new edges without a full re-run (Algorithm 4).

        The graph held by this instance is replaced by a new :class:`Graph`
        containing the added edges; geodesic numbers and beliefs are then
        repaired outwards from the "seed" endpoints whose geodesic number (or
        belief) the new edges change.
        """
        self._require_state()
        edges = self._normalize_edges(new_edges)
        if not edges:
            return self._result(edges_touched=0, nodes_updated=0)
        # Line 1: update the adjacency matrix.
        self.graph = self.graph.with_edges_added(edges)
        beliefs = self._beliefs
        geodesic = self._geodesic
        residual = self._residual
        # Line 2: seed nodes are targets of new edges that now have a shorter
        # (or first) geodesic path through the new edge.
        seeds: Dict[int, int] = {}
        for edge in edges:
            for source, target in ((edge.source, edge.target),
                                   (edge.target, edge.source)):
                g_source = geodesic[source]
                g_target = geodesic[target]
                if g_source == UNREACHABLE:
                    continue
                candidate = g_source + 1
                if g_target == UNREACHABLE or candidate < g_target:
                    seeds[target] = min(seeds.get(target, candidate), candidate)
                elif candidate == g_target:
                    # Same geodesic number but a new shortest path: the belief
                    # changes even though the geodesic number does not.
                    seeds[target] = min(seeds.get(target, g_target), g_target)
        nodes_updated = 0
        edges_touched = 0
        frontier: Dict[int, int] = {}
        for node, new_number in seeds.items():
            geodesic[node] = new_number
            frontier[node] = new_number
        # Lines 3-8: recompute beliefs of the frontier, then keep relaxing
        # neighbours whose geodesic number or belief changes.
        while frontier:
            for node in frontier:
                touched = self._recompute_belief(node, beliefs, geodesic, residual)
                edges_touched += touched
            nodes_updated += len(frontier)
            next_frontier: Dict[int, int] = {}
            for node, number in frontier.items():
                neighbors, _ = self.graph.neighbors(node)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    candidate = number + 1
                    current = geodesic[neighbor]
                    if current == UNREACHABLE or candidate < current:
                        geodesic[neighbor] = candidate
                        next_frontier[neighbor] = candidate
                    elif candidate == current and geodesic[node] + 1 == current:
                        # A parent on a shortest path changed its belief, so
                        # the child's belief must be refreshed too.
                        next_frontier.setdefault(neighbor, current)
            frontier = next_frontier
        return self._result(edges_touched=edges_touched, nodes_updated=nodes_updated)

    def _recompute_belief(self, node: int, beliefs: np.ndarray,
                          geodesic: np.ndarray, residual: np.ndarray) -> int:
        """Recompute one node's belief from its level−1 parents; returns edges read."""
        level = geodesic[node]
        if level == 0:
            beliefs[node] = self._explicit[node]
            return 0
        neighbors, weights = self.graph.neighbors(node)
        accumulated = np.zeros(beliefs.shape[1])
        touched = 0
        for neighbor, weight in zip(neighbors, weights):
            if geodesic[neighbor] == level - 1:
                accumulated += weight * beliefs[neighbor]
                touched += 1
        beliefs[node] = accumulated @ residual
        return touched

    # ------------------------------------------------------------------ #
    # state access
    # ------------------------------------------------------------------ #
    @property
    def geodesic_numbers(self) -> np.ndarray:
        """Geodesic numbers after the last run/update (copy)."""
        self._require_state()
        return self._geodesic.copy()

    @property
    def beliefs(self) -> np.ndarray:
        """Residual final beliefs after the last run/update (copy)."""
        self._require_state()
        return self._beliefs.copy()

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _result(self, edges_touched: int, nodes_updated: Optional[int] = None) -> PropagationResult:
        extra: Dict[str, object] = {
            "geodesic_numbers": self._geodesic.copy(),
            "edges_touched": edges_touched,
            "epsilon": self.coupling.epsilon,
        }
        if nodes_updated is not None:
            extra["nodes_updated"] = nodes_updated
        max_level = int(self._geodesic.max()) if self._geodesic.size else 0
        return PropagationResult(
            beliefs=self._beliefs.copy(),
            method="SBP",
            iterations=max(0, max_level),
            converged=True,
            residual_history=[],
            extra=extra,
        )

    def _require_state(self) -> None:
        if self._beliefs is None or self._geodesic is None or self._explicit is None:
            raise ValidationError("call run() before using incremental updates "
                                  "or accessing state")

    def _check_explicit(self, explicit_residuals: np.ndarray) -> np.ndarray:
        explicit = np.asarray(explicit_residuals, dtype=float)
        if explicit.ndim != 2:
            raise ValidationError("explicit beliefs must be a 2-D matrix")
        if explicit.shape[0] != self.graph.num_nodes:
            raise ValidationError(
                f"expected {self.graph.num_nodes} rows, got {explicit.shape[0]}")
        if explicit.shape[1] != self.coupling.num_classes:
            raise ValidationError(
                f"expected {self.coupling.num_classes} columns, "
                f"got {explicit.shape[1]}")
        return explicit

    def _normalize_updates(self, new_residuals: Mapping[int, np.ndarray] | np.ndarray) -> Dict[int, np.ndarray]:
        k = self.coupling.num_classes
        updates: Dict[int, np.ndarray] = {}
        if isinstance(new_residuals, Mapping):
            for node, vector in new_residuals.items():
                array = np.asarray(vector, dtype=float)
                if array.shape != (k,):
                    raise ValidationError(
                        f"belief vector for node {node} must have length {k}")
                updates[int(node)] = array
            return updates
        matrix = np.asarray(new_residuals, dtype=float)
        if matrix.shape != (self.graph.num_nodes, k):
            raise ValidationError(
                f"expected a {self.graph.num_nodes} x {k} matrix of new beliefs")
        for node in np.nonzero(np.any(matrix != 0.0, axis=1))[0]:
            updates[int(node)] = matrix[node]
        return updates

    @staticmethod
    def _normalize_edges(new_edges: Iterable) -> List[Edge]:
        edges: List[Edge] = []
        for item in new_edges:
            if isinstance(item, Edge):
                edges.append(item)
            elif len(item) == 2:
                edges.append(Edge(int(item[0]), int(item[1]), 1.0))
            else:
                edges.append(Edge(int(item[0]), int(item[1]), float(item[2])))
        return edges


def sbp(graph: Graph, coupling: CouplingMatrix,
        explicit_residuals: np.ndarray) -> PropagationResult:
    """Functional one-shot interface to :class:`SBP` (initial computation only)."""
    runner = SBP(graph, coupling)
    return runner.run(explicit_residuals)
