"""Common result container returned by every propagation algorithm.

All algorithms in :mod:`repro.core` (standard BP, LinBP, LinBP*, SBP, FABP)
return a :class:`PropagationResult`, so downstream code — quality metrics,
experiments, examples — can treat them uniformly.  The residual final-belief
matrix is the primary payload; convergence diagnostics and timing live in the
metadata fields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

import numpy as np

from repro.beliefs.beliefs import BeliefMatrix, top_belief_sets

__all__ = ["PropagationResult"]


@dataclass
class PropagationResult:
    """Final beliefs plus convergence diagnostics of a propagation run.

    Attributes
    ----------
    beliefs:
        Residual (centered) final beliefs ``B̂`` as an ``n x k`` array.
    method:
        Human-readable name of the algorithm that produced the result
        (``"BP"``, ``"LinBP"``, ``"LinBP*"``, ``"SBP"``, ...).
    iterations:
        Number of iterations performed (0 for closed-form solutions and for
        single-pass algorithms that do not iterate over the whole graph).
    converged:
        Whether the stopping criterion was met within the iteration budget.
        Closed-form and single-pass methods always report True.
    residual_history:
        Maximum absolute belief change per iteration (empty for closed forms).
    extra:
        Free-form metadata (e.g. spectral radii, per-iteration timings).
    """

    beliefs: np.ndarray
    method: str
    iterations: int = 0
    converged: bool = True
    residual_history: List[float] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        # Preserve the engine's element type (float32 results stay
        # float32); only non-float input (lists, ints) is promoted.
        self.beliefs = np.asarray(self.beliefs)
        if not np.issubdtype(self.beliefs.dtype, np.floating):
            self.beliefs = np.asarray(self.beliefs, dtype=float)

    # ------------------------------------------------------------------ #
    # convenience views
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.beliefs.shape[0]

    @property
    def num_classes(self) -> int:
        """Number of classes."""
        return self.beliefs.shape[1]

    def belief_matrix(self) -> BeliefMatrix:
        """The final beliefs wrapped in a :class:`BeliefMatrix`."""
        return BeliefMatrix(self.beliefs)

    def top_beliefs(self, tie_tolerance: float = 1e-10) -> List[Set[int]]:
        """Top-belief assignment (sets of classes, allowing ties) per node."""
        return top_belief_sets(self.beliefs, tie_tolerance=tie_tolerance)

    def hard_labels(self) -> np.ndarray:
        """Argmax labels per node (−1 for all-zero rows)."""
        return self.belief_matrix().hard_labels()

    def standardized_beliefs(self) -> np.ndarray:
        """Row-wise standardization ζ(B̂) (Definition 11)."""
        return self.belief_matrix().standardized()

    def final_residual(self) -> Optional[float]:
        """Last recorded iteration-to-iteration change (None for closed forms)."""
        return self.residual_history[-1] if self.residual_history else None

    def summary(self) -> str:
        """One-line human-readable summary used by the examples."""
        status = "converged" if self.converged else "NOT converged"
        residual = self.final_residual()
        residual_text = f", final delta={residual:.3g}" if residual is not None else ""
        return (f"{self.method}: {self.num_nodes} nodes x {self.num_classes} classes, "
                f"{self.iterations} iterations, {status}{residual_text}")
