"""Frozen pre-vectorisation SBP implementation (reference/baseline only).

This module preserves, verbatim in spirit, the per-node implementation of
SBP and its geodesic helpers as they existed *before* the vectorised
engine layer (:mod:`repro.engine.sbp_plan`) replaced them: Python-set
frontier expansion for the multi-source BFS, ``directed_edges()``
iteration for the Lemma-17 DAG, a fresh CSR slice multiplied against the
full belief matrix per level, and neighbour-by-neighbour Python loops for
both incremental updates.

It exists for two reasons and must not be used by production code paths:

* the equivalence tests assert that the vectorised engine reproduces
  these results to 1e-10, including after chains of incremental updates;
* the ``benchmarks/test_bench_sbp_engine.py`` speedup claims are measured
  against this baseline.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

import numpy as np
import scipy.sparse as sp

from repro.coupling.matrices import CouplingMatrix
from repro.exceptions import ValidationError
from repro.graphs.geodesic import UNREACHABLE, GeodesicLevels
from repro.graphs.graph import Edge, Graph

__all__ = [
    "reference_geodesic_numbers",
    "reference_modified_adjacency",
    "reference_shortest_path_weights",
    "ReferenceSBP",
]


def reference_geodesic_numbers(graph: Graph,
                               labeled_nodes: Iterable[int]) -> np.ndarray:
    """Pre-refactor multi-source BFS: Python sets, one node at a time."""
    labeled = sorted(set(int(node) for node in labeled_nodes))
    numbers = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    if not labeled:
        return numbers
    for node in labeled:
        if node < 0 or node >= graph.num_nodes:
            raise ValidationError(
                f"labeled node {node} out of range [0, {graph.num_nodes})")
    frontier = np.array(labeled, dtype=np.int64)
    numbers[frontier] = 0
    adjacency = graph.adjacency
    level = 0
    while frontier.size:
        level += 1
        candidates = set()
        for node in frontier:
            start, end = adjacency.indptr[node], adjacency.indptr[node + 1]
            candidates.update(adjacency.indices[start:end].tolist())
        next_frontier = [node for node in candidates
                         if numbers[node] == UNREACHABLE]
        if not next_frontier:
            break
        next_frontier_array = np.array(sorted(next_frontier), dtype=np.int64)
        numbers[next_frontier_array] = level
        frontier = next_frontier_array
    return numbers


def _reference_levels(graph: Graph, labeled_nodes: Iterable[int]) -> GeodesicLevels:
    numbers = reference_geodesic_numbers(graph, labeled_nodes)
    reachable = numbers[numbers != UNREACHABLE]
    max_level = int(reachable.max()) if reachable.size else -1
    levels = [np.sort(np.nonzero(numbers == g)[0]) for g in range(max_level + 1)]
    unreachable = np.sort(np.nonzero(numbers == UNREACHABLE)[0])
    return GeodesicLevels(numbers=numbers, levels=levels, unreachable=unreachable)


def reference_modified_adjacency(graph: Graph,
                                 labeled_nodes: Iterable[int]) -> sp.csr_matrix:
    """Pre-refactor ``A*``: one Python iteration over ``directed_edges()``."""
    numbers = reference_geodesic_numbers(graph, labeled_nodes)
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for edge in graph.directed_edges():
        g_source, g_target = numbers[edge.source], numbers[edge.target]
        if g_source == UNREACHABLE or g_target == UNREACHABLE:
            continue
        if g_target == g_source + 1:
            rows.append(edge.source)
            cols.append(edge.target)
            data.append(edge.weight)
    n = graph.num_nodes
    return sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()


def reference_shortest_path_weights(graph: Graph,
                                    labeled_nodes: List[int]) -> sp.csr_matrix:
    """Pre-refactor path weights: lil_matrix rows + per-neighbour toarray."""
    labeled = [int(node) for node in labeled_nodes]
    if len(set(labeled)) != len(labeled):
        raise ValidationError("labeled_nodes must not contain duplicates")
    levels = _reference_levels(graph, labeled)
    n = graph.num_nodes
    n_labeled = len(labeled)
    weights = sp.lil_matrix((n, n_labeled))
    for j, node in enumerate(labeled):
        weights[node, j] = 1.0
    dag = reference_modified_adjacency(graph, labeled)
    dag_csc = dag.tocsc()
    for level in range(1, levels.max_level + 1):
        for node in levels.nodes_at(level):
            start, end = dag_csc.indptr[node], dag_csc.indptr[node + 1]
            in_neighbors = dag_csc.indices[start:end]
            in_weights = dag_csc.data[start:end]
            if in_neighbors.size == 0:
                continue
            accumulated = np.zeros(n_labeled)
            for neighbor, weight in zip(in_neighbors, in_weights):
                accumulated += weight * weights[neighbor].toarray().ravel()
            weights[node] = accumulated
    return weights.tocsr()


class ReferenceSBP:
    """Pre-refactor SBP runner (Algorithms 2–4 with per-node Python loops).

    Mirrors the public surface of :class:`repro.core.sbp.SBP` but returns
    raw state instead of :class:`PropagationResult` containers; it is only
    ever used to check and benchmark the vectorised implementation.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix):
        self.graph = graph
        self.coupling = coupling
        self._residual = coupling.residual
        self._geodesic: np.ndarray = None
        self._beliefs: np.ndarray = None
        self._explicit: np.ndarray = None

    @property
    def beliefs(self) -> np.ndarray:
        return self._beliefs.copy()

    @property
    def geodesic_numbers(self) -> np.ndarray:
        return self._geodesic.copy()

    # -- Algorithm 2 -------------------------------------------------- #
    def run(self, explicit_residuals: np.ndarray) -> np.ndarray:
        explicit = np.asarray(explicit_residuals, dtype=float)
        labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
        n, k = explicit.shape
        beliefs = np.zeros((n, k))
        geodesic = np.full(n, UNREACHABLE, dtype=np.int64)
        if labeled.size:
            levels = _reference_levels(self.graph, labeled.tolist())
            geodesic = levels.numbers.copy()
            beliefs[labeled] = explicit[labeled]
            dag = reference_modified_adjacency(self.graph, labeled.tolist())
            dag_t = dag.T.tocsr()
            for level in range(1, levels.max_level + 1):
                nodes = levels.nodes_at(level)
                if nodes.size == 0:
                    break
                block = dag_t[nodes]
                beliefs[nodes] = (block @ beliefs) @ self._residual
        self._geodesic = geodesic
        self._beliefs = beliefs
        self._explicit = explicit.copy()
        return beliefs.copy()

    # -- Algorithm 3 -------------------------------------------------- #
    def add_explicit_beliefs(self,
                             new_residuals: Mapping[int, np.ndarray] | np.ndarray
                             ) -> np.ndarray:
        updates = self._normalize_updates(new_residuals)
        if not updates:
            return self._beliefs.copy()
        beliefs = self._beliefs
        geodesic = self._geodesic
        explicit = self._explicit
        residual = self._residual
        frontier: List[int] = []
        for node, vector in updates.items():
            explicit[node] = vector
            beliefs[node] = vector
            geodesic[node] = 0
            frontier.append(node)
        level = 1
        frontier_set = set(frontier)
        while frontier_set:
            candidates = set()
            for node in frontier_set:
                neighbors, _ = self.graph.neighbors(node)
                candidates.update(int(v) for v in neighbors)
            next_frontier = set()
            for node in candidates:
                current = geodesic[node]
                if current != UNREACHABLE and current < level:
                    continue
                next_frontier.add(node)
            for node in next_frontier:
                geodesic[node] = level
            for node in next_frontier:
                neighbors, weights = self.graph.neighbors(node)
                accumulated = np.zeros(beliefs.shape[1])
                for neighbor, weight in zip(neighbors, weights):
                    if geodesic[neighbor] == level - 1:
                        accumulated += weight * beliefs[neighbor]
                beliefs[node] = accumulated @ residual
            frontier_set = next_frontier
            level += 1
        return beliefs.copy()

    # -- Algorithm 4 -------------------------------------------------- #
    def add_edges(self, new_edges: Iterable) -> np.ndarray:
        edges = [item if isinstance(item, Edge)
                 else Edge(int(item[0]), int(item[1]),
                           float(item[2]) if len(item) > 2 else 1.0)
                 for item in new_edges]
        if not edges:
            return self._beliefs.copy()
        self.graph = self.graph.with_edges_added(edges)
        beliefs = self._beliefs
        geodesic = self._geodesic
        residual = self._residual
        seeds: Dict[int, int] = {}
        for edge in edges:
            for source, target in ((edge.source, edge.target),
                                   (edge.target, edge.source)):
                g_source = geodesic[source]
                g_target = geodesic[target]
                if g_source == UNREACHABLE:
                    continue
                candidate = g_source + 1
                if g_target == UNREACHABLE or candidate < g_target:
                    seeds[target] = min(seeds.get(target, candidate), candidate)
                elif candidate == g_target:
                    seeds[target] = min(seeds.get(target, g_target), g_target)
        frontier: Dict[int, int] = {}
        for node, new_number in seeds.items():
            geodesic[node] = new_number
            frontier[node] = new_number
        while frontier:
            for node in frontier:
                self._recompute_belief(node, beliefs, geodesic, residual)
            next_frontier: Dict[int, int] = {}
            for node, number in frontier.items():
                neighbors, _ = self.graph.neighbors(node)
                for neighbor in neighbors:
                    neighbor = int(neighbor)
                    candidate = number + 1
                    current = geodesic[neighbor]
                    if current == UNREACHABLE or candidate < current:
                        geodesic[neighbor] = candidate
                        next_frontier[neighbor] = candidate
                    elif candidate == current and geodesic[node] + 1 == current:
                        next_frontier.setdefault(neighbor, current)
            frontier = next_frontier
        return beliefs.copy()

    def _recompute_belief(self, node: int, beliefs: np.ndarray,
                          geodesic: np.ndarray, residual: np.ndarray) -> None:
        level = geodesic[node]
        if level == 0:
            beliefs[node] = self._explicit[node]
            return
        neighbors, weights = self.graph.neighbors(node)
        accumulated = np.zeros(beliefs.shape[1])
        for neighbor, weight in zip(neighbors, weights):
            if geodesic[neighbor] == level - 1:
                accumulated += weight * beliefs[neighbor]
        beliefs[node] = accumulated @ residual

    def _normalize_updates(self, new_residuals) -> Dict[int, np.ndarray]:
        updates: Dict[int, np.ndarray] = {}
        if isinstance(new_residuals, Mapping):
            for node, vector in new_residuals.items():
                updates[int(node)] = np.asarray(vector, dtype=float)
            return updates
        matrix = np.asarray(new_residuals, dtype=float)
        for node in np.nonzero(np.any(matrix != 0.0, axis=1))[0]:
            updates[int(node)] = matrix[node]
        return updates
