"""Weighted-vote relational neighbour (wvRN) baseline.

The paper positions SBP as "a generalization of relational learners [29] from
homophily to heterophily and even more general couplings between classes"
(Section 1, Section 6).  To make that comparison concrete, this module
implements the classic homophily-only relational learner of Macskassy &
Provost [29]: the weighted-vote Relational Neighbour classifier (wvRN) with
relaxation labelling.

wvRN estimates a node's class distribution as the weighted average of its
neighbours' class distributions, keeping the labelled nodes clamped to their
known distribution, and iterates until the estimates stop changing.  It has
no notion of a coupling matrix: it *assumes* homophily.  The ablation
experiment :func:`repro.experiments.ablations.run_baseline_comparison` shows
that wvRN matches LinBP/SBP under homophily and breaks down under heterophily
— which is exactly the gap LinBP's coupling matrix closes.
"""

from __future__ import annotations

import numpy as np

from repro.beliefs.beliefs import center_probability_matrix, uncenter_residual_matrix
from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = ["weighted_vote_relational_neighbor", "wvrn"]


def weighted_vote_relational_neighbor(graph: Graph, explicit_residuals: np.ndarray,
                                      max_iterations: int = 100,
                                      tolerance: float = 1e-9) -> PropagationResult:
    """Run wvRN relaxation labelling and return centered final beliefs.

    Parameters
    ----------
    graph:
        The undirected, possibly weighted network.
    explicit_residuals:
        ``n x k`` centered explicit beliefs; non-zero rows are the labelled
        ("clamped") nodes, exactly as for the other algorithms in
        :mod:`repro.core`.
    max_iterations:
        Iteration budget for the relaxation.
    tolerance:
        Stop when the largest probability change per iteration drops below
        this value.

    Notes
    -----
    Internally the method works on probability vectors (rows summing to 1).
    Unlabelled nodes start at the uninformative prior ``1/k``; each iteration
    replaces every unlabelled node's distribution with the weighted mean of
    its neighbours' distributions.  Nodes in components without any labelled
    node keep the uniform prior, which maps back to an all-zero residual row
    (no prediction) — the same convention as SBP.
    """
    explicit = np.asarray(explicit_residuals, dtype=float)
    if explicit.ndim != 2:
        raise ValidationError("explicit beliefs must be a 2-D matrix")
    if explicit.shape[0] != graph.num_nodes:
        raise ValidationError(
            f"expected {graph.num_nodes} rows, got {explicit.shape[0]}")
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")
    if tolerance <= 0:
        raise ValidationError("tolerance must be positive")
    n, k = explicit.shape
    labeled = np.any(explicit != 0.0, axis=1)
    probabilities = np.full((n, k), 1.0 / k)
    clamped = uncenter_residual_matrix(explicit)
    if np.any(clamped < -1e-12):
        raise ValidationError(
            "explicit beliefs fall outside [0, 1]; scale the residuals down")
    probabilities[labeled] = np.clip(clamped[labeled], 0.0, None)
    row_sums = probabilities[labeled].sum(axis=1, keepdims=True)
    probabilities[labeled] = probabilities[labeled] / np.where(row_sums == 0.0, 1.0,
                                                               row_sums)
    adjacency = graph.adjacency
    weights = np.asarray(adjacency.sum(axis=1)).ravel()
    history = []
    converged = False
    iterations_done = 0
    unlabeled = ~labeled
    for iteration in range(1, max_iterations + 1):
        iterations_done = iteration
        averaged = adjacency @ probabilities
        with np.errstate(invalid="ignore", divide="ignore"):
            averaged = np.where(weights[:, None] > 0.0,
                                averaged / np.maximum(weights[:, None], 1e-300),
                                probabilities)
        updated = probabilities.copy()
        updated[unlabeled] = averaged[unlabeled]
        change = float(np.max(np.abs(updated - probabilities))) if n else 0.0
        history.append(change)
        probabilities = updated
        if change < tolerance:
            converged = True
            break
    residuals = center_probability_matrix(probabilities)
    # Nodes that never received any information (isolated or in unlabelled
    # components) sit exactly at the uniform prior; report them as "no
    # prediction" like the other algorithms do.
    uninformed = np.all(np.abs(residuals) < 1e-12, axis=1)
    residuals[uninformed] = 0.0
    return PropagationResult(
        beliefs=residuals,
        method="wvRN",
        iterations=iterations_done,
        converged=converged,
        residual_history=history,
        extra={"labeled_nodes": int(labeled.sum())},
    )


#: Short alias matching the name used in the relational-learning literature.
wvrn = weighted_vote_relational_neighbor
