"""Update notifications emitted by the incremental propagation runners.

The maintained solvers — :class:`repro.core.sbp.SBP` (ΔSBP, Algorithms 3
and 4), :class:`repro.core.incremental.IncrementalLinBP` (superposition /
warm-start) and the relational ΔSBP functions in
:mod:`repro.relational.sbp_incremental` — mutate state in place.  Layers
stacked on top of them (most importantly the propagation service in
:mod:`repro.service`, which versions graph snapshots) need to know *when*
such a mutation happened so they can bump snapshot ids, invalidate result
caches, or forward the change downstream.

:class:`UpdateNotifier` is a tiny mixin providing ``add_update_hook`` /
``remove_update_hook``; runners call :meth:`UpdateNotifier._notify_update`
after each successful mutation with an :class:`UpdateEvent` describing
what changed.  Hooks run synchronously on the mutating thread, *after*
the runner's state is fully consistent, so a hook may safely read the
runner.  Hook exceptions propagate to the mutating caller (a broken
listener should be loud, not silently detached).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

__all__ = ["UpdateEvent", "UpdateNotifier"]


@dataclass(frozen=True)
class UpdateEvent:
    """One successful mutation of a maintained propagation result.

    Attributes
    ----------
    kind:
        ``"run"`` for a from-scratch (re)computation,
        ``"explicit_beliefs"`` for Algorithm-3-style label updates,
        ``"edges"`` for Algorithm-4-style edge insertions.
    method:
        The runner's method name (``"SBP"``, ``"LinBP (incremental)"``,
        ``"SBP (SQL)"``, ...).
    source:
        The runner that mutated; hooks may read its post-update state.
    nodes_updated:
        How many nodes the update touched, when the runner tracks it
        (``None`` for from-scratch runs and warm restarts).
    details:
        Free-form extra payload (e.g. the number of added edges).
    """

    kind: str
    method: str
    source: object
    nodes_updated: Optional[int] = None
    details: Dict[str, object] = field(default_factory=dict)


class UpdateNotifier:
    """Mixin: maintain a hook list and notify it after each mutation.

    The hook list is created lazily on first use, so the mixin composes
    with dataclasses and classes whose ``__init__`` never calls up.
    """

    _update_hooks: List[Callable[[UpdateEvent], None]]

    @property
    def update_hooks(self) -> List[Callable[[UpdateEvent], None]]:
        """The registered hooks (mutable list, in registration order)."""
        hooks = getattr(self, "_update_hooks", None)
        if hooks is None:
            hooks = []
            self._update_hooks = hooks
        return hooks

    def add_update_hook(self, hook: Callable[[UpdateEvent], None]) -> None:
        """Register ``hook`` to run after every successful mutation."""
        self.update_hooks.append(hook)

    def remove_update_hook(self, hook: Callable[[UpdateEvent], None]) -> None:
        """Unregister ``hook`` (no-op when it was never registered)."""
        try:
            self.update_hooks.remove(hook)
        except ValueError:
            pass

    def _notify_update(self, kind: str, method: str,
                       nodes_updated: Optional[int] = None,
                       **details: object) -> None:
        """Call every hook with a fresh :class:`UpdateEvent`."""
        hooks = getattr(self, "_update_hooks", None)
        if not hooks:
            return
        event = UpdateEvent(kind=kind, method=method, source=self,
                            nodes_updated=nodes_updated, details=dict(details))
        for hook in list(hooks):
            hook(event)
