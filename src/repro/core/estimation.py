"""Estimating the coupling matrix from partially labeled data.

The paper assumes the heterophily matrix ``H`` is "given, e.g. by domain
experts" and explicitly flags learning it from existing (partially) labeled
data as future work (footnote 1).  This module implements the natural
estimator for that task:

1. restrict the graph to edges whose *both* endpoints carry explicit labels,
2. count the (weighted) label co-occurrences across those edges into a k x k
   contingency matrix (counting each undirected edge in both directions so the
   result is symmetric),
3. optionally smooth the counts (additive / Laplace smoothing, important when
   few labeled-labeled edges exist),
4. balance the contingency matrix into a doubly stochastic coupling matrix
   with Sinkhorn iterations (the form LinBP's derivation requires), and
5. centre it into the residual ``Ĥo`` used by the algorithms.

The estimator is consistent in the planted-partition sense: as the number of
observed labeled-labeled edges grows, the balanced contingency matrix
approaches the row/column-normalised edge-probability matrix of the
generating process, which is exactly the coupling the propagation algorithms
expect.  The ablation experiment
:func:`repro.experiments.ablations.run_estimated_coupling_experiment`
quantifies how much accuracy is lost when ``Ĥ`` is estimated instead of
given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix, make_doubly_stochastic
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = ["CouplingEstimate", "estimate_coupling", "label_cooccurrence_counts"]


@dataclass(frozen=True)
class CouplingEstimate:
    """Result of :func:`estimate_coupling`.

    Attributes
    ----------
    coupling:
        The estimated :class:`~repro.coupling.matrices.CouplingMatrix`
        (unscaled residual; scale it with ``.scaled(epsilon)`` as usual).
    counts:
        The raw (smoothed) label co-occurrence counts the estimate is based
        on; useful for diagnostics.
    num_observed_edges:
        How many edges had both endpoints labeled (before smoothing).  A small
        number here means the estimate rests on little evidence.
    """

    coupling: CouplingMatrix
    counts: np.ndarray
    num_observed_edges: int


def label_cooccurrence_counts(graph: Graph, labels: Mapping[int, int] | np.ndarray,
                              num_classes: int,
                              use_weights: bool = True) -> Tuple[np.ndarray, int]:
    """Count label pairs across edges whose both endpoints are labeled.

    Parameters
    ----------
    graph:
        The undirected, possibly weighted network.
    labels:
        Either a mapping ``node -> class`` for the labeled nodes, or a length
        ``n`` integer array with −1 for unlabeled nodes.
    num_classes:
        Number of classes ``k``.
    use_weights:
        When true, each edge contributes its weight instead of 1.

    Returns
    -------
    (counts, num_observed_edges):
        ``counts[i, j]`` accumulates the evidence that class ``i`` neighbours
        class ``j``; the matrix is symmetric because each undirected edge is
        counted in both directions.
    """
    if num_classes < 2:
        raise ValidationError("num_classes must be >= 2")
    if isinstance(labels, Mapping):
        label_array = np.full(graph.num_nodes, -1, dtype=np.int64)
        for node, label in labels.items():
            if not 0 <= int(node) < graph.num_nodes:
                raise ValidationError(f"labeled node {node} out of range")
            label_array[int(node)] = int(label)
    else:
        label_array = np.asarray(labels, dtype=np.int64)
        if label_array.shape != (graph.num_nodes,):
            raise ValidationError(
                f"labels array must have length {graph.num_nodes}")
    if label_array.max(initial=-1) >= num_classes:
        raise ValidationError("labels contain a class id >= num_classes")
    counts = np.zeros((num_classes, num_classes))
    observed = 0
    for edge in graph.edges():
        label_source = label_array[edge.source]
        label_target = label_array[edge.target]
        if label_source < 0 or label_target < 0:
            continue
        contribution = edge.weight if use_weights else 1.0
        counts[label_source, label_target] += contribution
        counts[label_target, label_source] += contribution
        observed += 1
    return counts, observed


def estimate_coupling(graph: Graph, labels: Mapping[int, int] | np.ndarray,
                      num_classes: int, smoothing: float = 1.0,
                      use_weights: bool = True,
                      class_names: Optional[Tuple[str, ...]] = None) -> CouplingEstimate:
    """Estimate the (unscaled) coupling matrix from labeled nodes.

    Parameters
    ----------
    graph, labels, num_classes, use_weights:
        As in :func:`label_cooccurrence_counts`.
    smoothing:
        Additive smoothing applied to every cell of the contingency matrix
        before balancing.  ``1.0`` (add-one) is a sensible default; larger
        values pull the estimate towards the uninformative coupling, smaller
        values trust sparse evidence more.
    class_names:
        Optional display names attached to the resulting coupling matrix.

    Raises
    ------
    ValidationError
        If no edge has both endpoints labeled and ``smoothing`` is zero — in
        that case there is no evidence at all to balance.
    """
    if smoothing < 0:
        raise ValidationError("smoothing must be non-negative")
    counts, observed = label_cooccurrence_counts(graph, labels, num_classes,
                                                 use_weights=use_weights)
    if observed == 0 and smoothing == 0.0:
        raise ValidationError(
            "no edge connects two labeled nodes; cannot estimate a coupling "
            "matrix without smoothing")
    smoothed = counts + smoothing
    stochastic = make_doubly_stochastic(smoothed)
    # Numerical symmetrisation: Sinkhorn on a symmetric matrix is symmetric in
    # exact arithmetic, enforce it against round-off before validation.
    stochastic = 0.5 * (stochastic + stochastic.T)
    coupling = CouplingMatrix.from_stochastic(stochastic, class_names=class_names)
    return CouplingEstimate(coupling=coupling, counts=smoothed,
                            num_observed_edges=observed)
