"""Standard multi-class loopy Belief Propagation (the paper's baseline).

This is the algorithm that LinBP linearizes: messages are exchanged along
every directed edge and beliefs are products of priors and incoming messages
(Equations 1–3 of the paper):

.. math::

    b_s(i) \\propto e_s(i) \\prod_{u \\in N(s)} m_{us}(i)

    m_{st}(i) \\propto \\sum_j H(j, i)\\, e_s(j) \\prod_{u \\in N(s)\\setminus t} m_{us}(j)

with messages normalised so their elements sum to ``k`` (Eq. 3) and beliefs
normalised to sum to 1.  On loopy graphs the iteration has no convergence
guarantee — which is precisely the problem the paper solves for LinBP — so the
implementation monitors the belief change per iteration and simply reports
whether the tolerance was reached.

The implementation is fully vectorised: messages live in a
``(num_directed_edges, k)`` array aligned with the CSR structure of the
adjacency matrix, and products of incoming messages are accumulated in
log-space for numerical robustness (messages are strictly positive).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.beliefs.beliefs import center_probability_matrix, uncenter_residual_matrix
from repro.coupling.matrices import CouplingMatrix
from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = ["BeliefPropagation", "belief_propagation"]

_EPS = 1e-300  # floor used before taking logarithms


def _directed_edge_structure(graph: Graph) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (source, target, reverse_index) arrays for all directed edges.

    Directed edges are enumerated in CSR order of the adjacency matrix.  The
    reverse index maps the edge ``s -> t`` to the edge ``t -> s``; it exists
    for every edge because the adjacency matrix is symmetric.
    """
    adjacency = graph.adjacency
    num_edges = adjacency.nnz
    targets = adjacency.indices.astype(np.int64)
    sources = np.repeat(np.arange(graph.num_nodes, dtype=np.int64),
                        np.diff(adjacency.indptr))
    # Position lookup: edge_id[(s, t)] -> index.  Build with a dictionary once;
    # the cost is linear in the number of edges and only paid at setup.
    position = {(int(s), int(t)): index
                for index, (s, t) in enumerate(zip(sources, targets))}
    reverse = np.empty(num_edges, dtype=np.int64)
    for index, (s, t) in enumerate(zip(sources, targets)):
        reverse[index] = position[(int(t), int(s))]
    return sources, targets, reverse


class BeliefPropagation:
    """Loopy BP runner bound to a graph and a coupling matrix.

    Parameters
    ----------
    graph:
        The undirected network.  Edge weights are ignored by the baseline
        (the paper's BP experiments use unweighted graphs); pass an
        unweighted graph to match the paper exactly.
    coupling:
        The coupling matrix; BP uses its stochastic form ``H = Ĥ + 1/k``.
        The scaled residual must keep ``H`` non-negative.
    max_iterations:
        Iteration budget (the paper times 5 iterations; quality runs use more).
    tolerance:
        Stop when the maximum absolute belief change drops below this value.
    damping:
        Optional message damping in ``[0, 1)``; 0 reproduces plain BP,
        larger values mix in the previous message to help convergence.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix,
                 max_iterations: int = 100, tolerance: float = 1e-8,
                 damping: float = 0.0):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        if not 0.0 <= damping < 1.0:
            raise ValidationError("damping must lie in [0, 1)")
        stochastic = coupling.stochastic
        if np.any(stochastic < -1e-12):
            raise ValidationError(
                "the scaled coupling matrix has negative entries; standard BP "
                "requires a non-negative potential (reduce epsilon)")
        self.graph = graph
        self.coupling = coupling
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping
        self._H = np.clip(stochastic, 0.0, None)
        self._sources, self._targets, self._reverse = _directed_edge_structure(graph)

    # ------------------------------------------------------------------ #
    # main entry point
    # ------------------------------------------------------------------ #
    def run(self, explicit_residuals: np.ndarray,
            return_messages: bool = False) -> PropagationResult:
        """Run loopy BP and return centered final beliefs.

        Parameters
        ----------
        explicit_residuals:
            ``n x k`` centered explicit beliefs ``Ê`` (zero rows for unlabeled
            nodes).  They are converted internally to the probability form
            ``E = Ê + 1/k`` that the BP update equations expect.
        return_messages:
            When true, the final messages are attached to the result under
            ``extra['messages']`` together with ``extra['message_sources']``
            and ``extra['message_targets']`` (directed-edge endpoints in the
            same order).  Messages are normalised to sum to ``k`` (Eq. 3), so
            their residuals around 1 are exactly the ``m̂`` of the derivation
            in Section 4 — used by the tests that validate Lemmas 5 and 6.
        """
        residuals = np.asarray(explicit_residuals, dtype=float)
        self._check_shape(residuals)
        priors = uncenter_residual_matrix(residuals)
        if np.any(priors < -1e-12):
            raise ValidationError(
                "explicit beliefs fall outside [0, 1]; scale the residuals down")
        priors = np.clip(priors, _EPS, None)
        n, k = priors.shape
        num_edges = self._sources.size
        messages = np.ones((num_edges, k))
        beliefs = priors / priors.sum(axis=1, keepdims=True)
        history = []
        converged = False
        iterations_done = 0
        for iteration in range(1, self.max_iterations + 1):
            iterations_done = iteration
            messages = self._update_messages(messages, priors)
            new_beliefs = self._compute_beliefs(messages, priors)
            change = float(np.max(np.abs(new_beliefs - beliefs))) if n else 0.0
            history.append(change)
            beliefs = new_beliefs
            if change < self.tolerance:
                converged = True
                break
        centered = center_probability_matrix(beliefs)
        extra = {"damping": self.damping}
        if return_messages:
            extra["messages"] = messages.copy()
            extra["message_sources"] = self._sources.copy()
            extra["message_targets"] = self._targets.copy()
        return PropagationResult(
            beliefs=centered,
            method="BP",
            iterations=iterations_done,
            converged=converged,
            residual_history=history,
            extra=extra,
        )

    # ------------------------------------------------------------------ #
    # update steps
    # ------------------------------------------------------------------ #
    def _update_messages(self, messages: np.ndarray, priors: np.ndarray) -> np.ndarray:
        """One synchronous message update (Eq. 3), vectorised over edges."""
        n, k = priors.shape
        log_messages = np.log(np.clip(messages, _EPS, None))
        # Product of incoming messages per node, in log space.
        log_products = np.zeros((n, k))
        np.add.at(log_products, self._targets, log_messages)
        # For the edge s -> t, exclude the reverse message t -> s.
        log_excluded = log_products[self._sources] - log_messages[self._reverse]
        prefactor = priors[self._sources] * np.exp(log_excluded)
        raw = prefactor @ self._H  # raw[e, i] = sum_j H(j, i) * prefactor[e, j]
        sums = raw.sum(axis=1, keepdims=True)
        sums = np.where(sums <= 0.0, 1.0, sums)
        normalized = raw * (k / sums)
        if self.damping > 0.0:
            normalized = (1.0 - self.damping) * normalized + self.damping * messages
        return normalized

    def _compute_beliefs(self, messages: np.ndarray, priors: np.ndarray) -> np.ndarray:
        """Belief read-out (Eq. 1): prior times product of incoming messages."""
        n, k = priors.shape
        log_messages = np.log(np.clip(messages, _EPS, None))
        log_products = np.zeros((n, k))
        np.add.at(log_products, self._targets, log_messages)
        unnormalized = priors * np.exp(log_products)
        sums = unnormalized.sum(axis=1, keepdims=True)
        sums = np.where(sums <= 0.0, 1.0, sums)
        return unnormalized / sums

    def _check_shape(self, residuals: np.ndarray) -> None:
        if residuals.ndim != 2:
            raise ValidationError("explicit beliefs must be a 2-D matrix")
        if residuals.shape[0] != self.graph.num_nodes:
            raise ValidationError(
                f"expected {self.graph.num_nodes} rows, got {residuals.shape[0]}")
        if residuals.shape[1] != self.coupling.num_classes:
            raise ValidationError(
                f"expected {self.coupling.num_classes} columns, "
                f"got {residuals.shape[1]}")


def belief_propagation(graph: Graph, coupling: CouplingMatrix,
                       explicit_residuals: np.ndarray,
                       max_iterations: int = 100, tolerance: float = 1e-8,
                       damping: float = 0.0,
                       return_messages: bool = False) -> PropagationResult:
    """Functional one-shot interface to :class:`BeliefPropagation`."""
    runner = BeliefPropagation(graph, coupling, max_iterations=max_iterations,
                               tolerance=tolerance, damping=damping)
    return runner.run(explicit_residuals, return_messages=return_messages)
