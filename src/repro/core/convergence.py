"""Convergence criteria for LinBP and LinBP* (Lemmas 8, 9, 23; Appendix G).

The linearisation makes exact convergence analysis possible: the LinBP update
is a Jacobi iteration for the linear system of Proposition 7, so it converges
for any initialisation if and only if the spectral radius of the update matrix
is below 1:

* **LinBP** (Eq. 16): ``ρ(Ĥ ⊗ A − Ĥ² ⊗ D) < 1``
* **LinBP*** (Eq. 17): ``ρ(Ĥ) < 1 / ρ(A)``

Because spectral radii can be expensive, Lemma 9 gives *sufficient* bounds in
terms of any sub-multiplicative norms; the paper recommends taking the minimum
over the Frobenius, induced-1 and induced-infinity norms.  Lemma 23 gives an
even simpler (and looser) bound ``||Ĥ|| < 1 / (2 ||A||)``.

Appendix G compares against the Mooij–Kappen sufficient bound for *standard*
BP, ``c(H) · ρ(A_edge) < 1``, where ``A_edge`` is the directed-edge adjacency
("non-backtracking"-style) matrix and ``c(H)`` a potential-dependent constant.
This module implements all of these so experiment E12 can reproduce the
comparison.  The exact criteria delegate to the engine's plan cache
(:mod:`repro.engine.plan`), so the — potentially expensive — Lemma 8
spectral radius is computed at most once per (graph, coupling) pair and
shared with the solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp

from repro.coupling.matrices import CouplingMatrix
from repro.graphs import linalg
from repro.graphs.graph import Graph

__all__ = [
    "ConvergenceReport",
    "exact_convergence_linbp",
    "exact_convergence_linbp_star",
    "sufficient_norm_bound_linbp",
    "sufficient_norm_bound_linbp_star",
    "simple_norm_bound_linbp",
    "max_epsilon_exact",
    "max_epsilon_sufficient",
    "edge_adjacency_matrix",
    "mooij_kappen_constant",
    "mooij_kappen_bound",
    "analyze",
]


@dataclass
class ConvergenceReport:
    """Summary of every criterion for a (graph, coupling) pair.

    All thresholds are expressed on the scale factor ``ε_H``: the iteration is
    guaranteed (exact) or predicted (sufficient) to converge for any
    ``ε_H`` strictly below the respective threshold, keeping ``Ĥo`` fixed.
    """

    spectral_radius_adjacency: float
    spectral_radius_coupling_unscaled: float
    exact_threshold_linbp: float
    exact_threshold_linbp_star: float
    sufficient_threshold_linbp: float
    sufficient_threshold_linbp_star: float
    mooij_kappen_threshold_bp: Optional[float] = None

    def converges_linbp(self, epsilon: float) -> bool:
        """Exact criterion for LinBP at scale ``epsilon``."""
        return epsilon < self.exact_threshold_linbp

    def converges_linbp_star(self, epsilon: float) -> bool:
        """Exact criterion for LinBP* at scale ``epsilon``."""
        return epsilon < self.exact_threshold_linbp_star


# ---------------------------------------------------------------------- #
# exact criteria (Lemma 8)
# ---------------------------------------------------------------------- #
# Both criteria are answered by the engine's cached propagation plan: the
# Lemma 8 spectral radius is computed once per (graph, coupling, echo) and
# then shared with every solver instance that uses the same configuration.
def exact_convergence_linbp(graph: Graph, coupling: CouplingMatrix) -> bool:
    """Exact (necessary and sufficient) criterion for LinBP (Eq. 16)."""
    from repro.engine.plan import get_plan
    return get_plan(graph, coupling, echo_cancellation=True).is_exactly_convergent()


def exact_convergence_linbp_star(graph: Graph, coupling: CouplingMatrix) -> bool:
    """Exact criterion for LinBP* (Eq. 17): ``ρ(Ĥ)·ρ(A) < 1``."""
    from repro.engine.plan import get_plan
    return get_plan(graph, coupling, echo_cancellation=False).is_exactly_convergent()


# ---------------------------------------------------------------------- #
# sufficient norm criteria (Lemma 9, Lemma 23)
# ---------------------------------------------------------------------- #
def sufficient_norm_bound_linbp(graph: Graph) -> float:
    """Largest ``||Ĥ||`` guaranteed to converge for LinBP (Lemma 9, Eq. 18).

    Returns ``(sqrt(||A||² + 4||D||) − ||A||) / (2||D||)`` with each norm taken
    as the minimum over the paper's norm set M.
    """
    norm_a = linalg.minimum_norm(graph.adjacency)
    norm_d = linalg.minimum_norm(graph.degree_matrix())
    if norm_d == 0.0:
        return np.inf if norm_a == 0.0 else 1.0 / norm_a
    return (np.sqrt(norm_a ** 2 + 4.0 * norm_d) - norm_a) / (2.0 * norm_d)


def sufficient_norm_bound_linbp_star(graph: Graph) -> float:
    """Largest ``||Ĥ||`` guaranteed to converge for LinBP* (Lemma 9, Eq. 19)."""
    norm_a = linalg.minimum_norm(graph.adjacency)
    return np.inf if norm_a == 0.0 else 1.0 / norm_a


def simple_norm_bound_linbp(graph: Graph) -> float:
    """The looser Lemma 23 bound ``||Ĥ|| < 1 / (2||A||)`` (induced norms only)."""
    norm_a = min(linalg.induced_1_norm(graph.adjacency),
                 linalg.induced_inf_norm(graph.adjacency))
    return np.inf if norm_a == 0.0 else 1.0 / (2.0 * norm_a)


# ---------------------------------------------------------------------- #
# thresholds on the scaling factor epsilon_H
# ---------------------------------------------------------------------- #
def max_epsilon_exact(graph: Graph, coupling: CouplingMatrix,
                      echo_cancellation: bool = True,
                      tolerance: float = 1e-4) -> float:
    """Largest ``ε_H`` (for the given unscaled ``Ĥo``) with guaranteed convergence.

    For LinBP* the criterion ``ρ(ε Ĥo)·ρ(A) < 1`` is linear in ``ε`` so the
    threshold is ``1 / (ρ(Ĥo)·ρ(A))``.  For full LinBP the criterion
    ``ρ(ε Ĥo ⊗ A − ε² Ĥo² ⊗ D) < 1`` is solved by bisection on ``ε`` (the
    spectral radius is continuous and increasing in ``ε`` over the relevant
    range).
    """
    rho_h = coupling.spectral_radius(scaled=False)
    rho_a = graph.spectral_radius()
    if rho_h == 0.0 or rho_a == 0.0:
        return np.inf
    star_threshold = 1.0 / (rho_h * rho_a)
    if not echo_cancellation:
        return star_threshold
    degree = graph.degree_matrix()
    unscaled = coupling.unscaled_residual

    def radius(epsilon: float) -> float:
        scaled = epsilon * unscaled
        return linalg.kron_spectral_radius(scaled, graph.adjacency, degree=degree)

    # Bracket the root of radius(eps) = 1.  The echo term only shrinks the
    # radius slightly, so the LinBP threshold is close to (and below ~2x of)
    # the LinBP* threshold; expand the bracket defensively.
    low, high = 0.0, star_threshold
    while radius(high) < 1.0 and high < 1e6:
        low, high = high, high * 2.0
    if high >= 1e6:
        return np.inf
    while high - low > tolerance * max(high, 1e-12):
        middle = 0.5 * (low + high)
        if radius(middle) < 1.0:
            low = middle
        else:
            high = middle
    return 0.5 * (low + high)


def max_epsilon_sufficient(graph: Graph, coupling: CouplingMatrix,
                           echo_cancellation: bool = True) -> float:
    """Largest ``ε_H`` allowed by the sufficient norm bounds of Lemma 9."""
    norm_h = coupling.minimum_norm(scaled=False)
    if norm_h == 0.0:
        return np.inf
    bound = sufficient_norm_bound_linbp(graph) if echo_cancellation \
        else sufficient_norm_bound_linbp_star(graph)
    return bound / norm_h


# ---------------------------------------------------------------------- #
# Mooij–Kappen bound for standard BP (Appendix G)
# ---------------------------------------------------------------------- #
def edge_adjacency_matrix(graph: Graph) -> sp.csr_matrix:
    """The directed-edge ("non-backtracking") adjacency matrix ``A_edge``.

    Rows and columns are directed edges; the entry for (edge ``u -> v``,
    edge ``w -> u``) is 1 whenever ``w != v`` — i.e. edge ``u -> v`` receives
    influence from every edge pointing into ``u`` except the reverse of
    itself.  This is the matrix whose spectral radius appears in the
    Mooij–Kappen sufficient convergence condition (Appendix G).
    """
    adjacency = graph.adjacency
    targets = adjacency.indices.astype(np.int64)
    sources = np.repeat(np.arange(graph.num_nodes, dtype=np.int64),
                        np.diff(adjacency.indptr))
    num_edges = sources.size
    position = {(int(s), int(t)): index
                for index, (s, t) in enumerate(zip(sources, targets))}
    rows, cols = [], []
    # For the entry (u->v, w->u): iterate over edges u->v, then over in-edges w->u.
    in_edges_of = {}
    for index, target in enumerate(targets):
        in_edges_of.setdefault(int(target), []).append(index)
    for index, (source, target) in enumerate(zip(sources, targets)):
        reverse_index = position[(int(target), int(source))]
        for incoming in in_edges_of.get(int(source), []):
            if incoming == reverse_index:
                continue
            rows.append(index)
            cols.append(incoming)
    data = np.ones(len(rows))
    return sp.coo_matrix((data, (rows, cols)),
                         shape=(num_edges, num_edges)).tocsr()


def mooij_kappen_constant(coupling: CouplingMatrix) -> float:
    """The potential-dependent constant ``c(H)`` of the Mooij–Kappen bound.

    ``c(H) = max_{c1 != c2} max_{d1 != d2} tanh(¼ |log (H[c1,d1] H[c2,d2]) /
    (H[c2,d1] H[c1,d2])|)``, evaluated on the (non-centered) stochastic
    coupling matrix.  Entries of ``H`` that are zero or negative make the
    log-ratio unbounded; the constant is then 1 (tanh of infinity), which
    means the bound can never certify convergence.
    """
    stochastic = coupling.stochastic
    k = stochastic.shape[0]
    worst = 0.0
    for c1 in range(k):
        for c2 in range(k):
            if c1 == c2:
                continue
            for d1 in range(k):
                for d2 in range(k):
                    if d1 == d2:
                        continue
                    numerator = stochastic[c1, d1] * stochastic[c2, d2]
                    denominator = stochastic[c2, d1] * stochastic[c1, d2]
                    if numerator <= 0.0 or denominator <= 0.0:
                        return 1.0
                    value = np.tanh(0.25 * abs(np.log(numerator / denominator)))
                    worst = max(worst, float(value))
    return worst


def mooij_kappen_bound(graph: Graph, coupling: CouplingMatrix) -> float:
    """The Mooij–Kappen quantity ``c(H) · ρ(A_edge)``; BP convergence is
    guaranteed when it is below 1."""
    constant = mooij_kappen_constant(coupling)
    radius = linalg.spectral_radius(edge_adjacency_matrix(graph))
    return constant * radius


# ---------------------------------------------------------------------- #
# combined report
# ---------------------------------------------------------------------- #
def analyze(graph: Graph, coupling: CouplingMatrix,
            include_mooij_kappen: bool = False) -> ConvergenceReport:
    """Compute every threshold for a (graph, unscaled coupling) pair.

    The Mooij–Kappen threshold requires building the directed-edge matrix
    (quadratic in the maximum degree), so it is opt-in.
    """
    rho_a = graph.spectral_radius()
    rho_h = coupling.spectral_radius(scaled=False)
    exact_star = np.inf if rho_a == 0.0 or rho_h == 0.0 else 1.0 / (rho_a * rho_h)
    exact_full = max_epsilon_exact(graph, coupling, echo_cancellation=True)
    sufficient_full = max_epsilon_sufficient(graph, coupling, echo_cancellation=True)
    sufficient_star = max_epsilon_sufficient(graph, coupling, echo_cancellation=False)
    mooij_threshold = None
    if include_mooij_kappen:
        constant = mooij_kappen_constant(coupling.scaled(1.0))
        edge_radius = linalg.spectral_radius(edge_adjacency_matrix(graph))
        # c(eps * Ho + 1/k) grows roughly linearly in eps for small eps; we
        # report the bound at the unscaled coupling for reference and solve
        # for the threshold numerically in the experiment module instead.
        mooij_threshold = constant * edge_radius
    return ConvergenceReport(
        spectral_radius_adjacency=rho_a,
        spectral_radius_coupling_unscaled=rho_h,
        exact_threshold_linbp=exact_full,
        exact_threshold_linbp_star=exact_star,
        sufficient_threshold_linbp=sufficient_full,
        sufficient_threshold_linbp_star=sufficient_star,
        mooij_kappen_threshold_bp=mooij_threshold,
    )
