"""Linearized Belief Propagation (LinBP and LinBP*).

The paper's central result (Theorem 4) is that the final beliefs of
multi-class BP are approximated by the linear equation system

.. math::

    \\hat B = \\hat E + A \\hat B \\hat H - D \\hat B \\hat H^2  \\qquad \\text{(LinBP)}

where ``Ê``/``B̂`` are the residual explicit/final beliefs, ``Ĥ`` the residual
coupling matrix, ``A`` the (weighted) adjacency matrix and ``D`` the diagonal
matrix of squared-weight degrees.  Dropping the echo-cancellation term
``D B̂ Ĥ²`` gives the simpler LinBP* (Eq. 5).

Both systems can be solved

* **iteratively** (Eq. 6/7): repeated sparse-matrix–dense-matrix products,
  which is how the paper's experiments run LinBP, or
* **in closed form** (Proposition 7): ``vec(B̂) = (I − Ĥ⊗A + Ĥ²⊗D)^{-1} vec(Ê)``
  via a sparse linear solve over the ``nk``-dimensional vectorised system.

This module implements both, plus the convergence bookkeeping of Section 5.1.
Since the engine refactor, the iterative path is a thin single-query wrapper
over the shared batched engine (:mod:`repro.engine`): a cached
:class:`~repro.engine.plan.PropagationPlan` holds the per-graph artifacts and
:func:`repro.engine.batch.run_batch` performs the buffer-reuse iteration, so
repeated queries against the same graph pay the setup cost once and many
concurrent queries can be propagated in one batch.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.coupling.matrices import CouplingMatrix
from repro.core.results import PropagationResult
from repro.engine import batch as engine_batch
from repro.engine import plan as engine_plan
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = ["LinBP", "linbp", "linbp_star", "linbp_closed_form"]


class LinBP:
    """LinBP / LinBP* runner bound to a graph and a coupling matrix.

    The constructor obtains the cached :class:`~repro.engine.plan
    .PropagationPlan` for ``(graph, coupling, echo_cancellation)``, so
    building many runners against the same configuration reuses one set of
    precomputed artifacts (CSR adjacency, squared degrees, residual
    coupling, Lemma 8 radius).

    Parameters
    ----------
    graph:
        The undirected, possibly weighted network.
    coupling:
        The (scaled) residual coupling matrix ``Ĥ``.
    echo_cancellation:
        True (default) runs full LinBP (Eq. 4); False runs LinBP* (Eq. 5).
    max_iterations:
        Iteration budget for the iterative solver.
    tolerance:
        Stop when the maximum absolute belief change per iteration drops
        below this value.
    require_convergence:
        When true, raise :class:`NotConvergentParametersError` if the exact
        spectral criterion of Lemma 8 says the iteration would diverge.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix,
                 echo_cancellation: bool = True, max_iterations: int = 100,
                 tolerance: float = 1e-10, require_convergence: bool = False):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        self.graph = graph
        self.coupling = coupling
        self.echo_cancellation = echo_cancellation
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.require_convergence = require_convergence
        self.plan = engine_plan.get_plan(graph, coupling,
                                         echo_cancellation=echo_cancellation)
        self._adjacency = self.plan.adjacency
        self._degrees = self.plan.degrees
        self._residual = self.plan.residual
        self._residual_squared = self.plan.residual_squared

    @property
    def method_name(self) -> str:
        """``"LinBP"`` or ``"LinBP*"`` depending on echo cancellation."""
        return self.plan.method_name

    # ------------------------------------------------------------------ #
    # iterative solution (Eq. 6 / Eq. 7) — delegated to the engine
    # ------------------------------------------------------------------ #
    def run(self, explicit_residuals: np.ndarray,
            initial_beliefs: Optional[np.ndarray] = None,
            num_iterations: Optional[int] = None) -> PropagationResult:
        """Iteratively solve the LinBP update equations.

        This is the single-query form of :func:`repro.engine.batch
        .run_batch`; use the engine directly to propagate many explicit
        matrices over the same graph at once.

        Parameters
        ----------
        explicit_residuals:
            ``n x k`` centered explicit beliefs ``Ê``.
        initial_beliefs:
            Optional starting point ``B̂^(0)``; defaults to all zeros (the
            paper notes the fixed point is independent of the start whenever
            the iteration converges).
        num_iterations:
            When given, run exactly this many iterations without early
            stopping — used by the timing experiments that fix 5 iterations.
        """
        results = engine_batch.run_batch(
            self.plan, [explicit_residuals],
            initial_beliefs=[initial_beliefs],
            max_iterations=self.max_iterations,
            tolerance=self.tolerance,
            num_iterations=num_iterations,
            require_convergence=self.require_convergence,
        )
        result = results[0]
        # Single-query runs keep the historical metadata shape.
        result.extra = {"echo_cancellation": self.echo_cancellation,
                        "epsilon": self.coupling.epsilon}
        return result

    def _apply_update(self, explicit: np.ndarray, beliefs: np.ndarray) -> np.ndarray:
        """One application of Eq. 6 (or Eq. 7 without echo cancellation).

        Retained for experimentation and tests; the hot path now lives in
        :meth:`repro.engine.batch.BatchWorkspace.step`, which computes the
        same update over preallocated buffers.
        """
        propagated = self._adjacency @ beliefs @ self._residual
        if self.echo_cancellation:
            echo = (self._degrees[:, None] * beliefs) @ self._residual_squared
            return explicit + propagated - echo
        return explicit + propagated

    # ------------------------------------------------------------------ #
    # closed-form solution (Proposition 7)
    # ------------------------------------------------------------------ #
    def solve_closed_form(self, explicit_residuals: np.ndarray) -> PropagationResult:
        """Solve the vectorised linear system of Proposition 7 directly.

        The system matrix ``I_nk − Ĥ⊗A + Ĥ²⊗D`` is assembled sparsely
        (``Ĥ`` is only k x k) and handed to SuperLU via ``scipy.sparse.linalg
        .spsolve``.  Because ``vec`` stacks *columns*, the vectorised unknown
        is ``B̂`` flattened in Fortran (column-major) order.
        """
        explicit = self._check_explicit(explicit_residuals)
        n, k = explicit.shape
        identity = sp.identity(n * k, format="csr")
        system = identity - sp.kron(sp.csr_matrix(self._residual),
                                    self._adjacency, format="csr")
        if self.echo_cancellation:
            degree = sp.diags(self._degrees, format="csr")
            system = system + sp.kron(sp.csr_matrix(self._residual_squared),
                                      degree, format="csr")
        right_hand_side = explicit.flatten(order="F")
        solution = spla.spsolve(system.tocsc(), right_hand_side)
        beliefs = np.asarray(solution).reshape((n, k), order="F")
        return PropagationResult(
            beliefs=beliefs,
            method=f"{self.method_name} (closed form)",
            iterations=0,
            converged=True,
            residual_history=[],
            extra={"echo_cancellation": self.echo_cancellation,
                   "epsilon": self.coupling.epsilon,
                   "solver": "spsolve"},
        )

    # ------------------------------------------------------------------ #
    # convergence helpers
    # ------------------------------------------------------------------ #
    def _exactly_convergent(self) -> bool:
        return self.plan.is_exactly_convergent()

    def spectral_radius(self) -> float:
        """Spectral radius of the update matrix (the Lemma 8 quantity).

        Cached on the underlying plan, so repeated checks are free.
        """
        return self.plan.update_spectral_radius()

    def _check_explicit(self, explicit_residuals: np.ndarray) -> np.ndarray:
        return self.plan.check_explicit(explicit_residuals)


# ---------------------------------------------------------------------- #
# functional wrappers
# ---------------------------------------------------------------------- #
def linbp(graph: Graph, coupling: CouplingMatrix, explicit_residuals: np.ndarray,
          max_iterations: int = 100, tolerance: float = 1e-10,
          num_iterations: Optional[int] = None,
          require_convergence: bool = False) -> PropagationResult:
    """Run full LinBP (with echo cancellation) iteratively."""
    runner = LinBP(graph, coupling, echo_cancellation=True,
                   max_iterations=max_iterations, tolerance=tolerance,
                   require_convergence=require_convergence)
    return runner.run(explicit_residuals, num_iterations=num_iterations)


def linbp_star(graph: Graph, coupling: CouplingMatrix,
               explicit_residuals: np.ndarray, max_iterations: int = 100,
               tolerance: float = 1e-10, num_iterations: Optional[int] = None,
               require_convergence: bool = False) -> PropagationResult:
    """Run LinBP* (without echo cancellation) iteratively."""
    runner = LinBP(graph, coupling, echo_cancellation=False,
                   max_iterations=max_iterations, tolerance=tolerance,
                   require_convergence=require_convergence)
    return runner.run(explicit_residuals, num_iterations=num_iterations)


def linbp_closed_form(graph: Graph, coupling: CouplingMatrix,
                      explicit_residuals: np.ndarray,
                      echo_cancellation: bool = True) -> PropagationResult:
    """Solve LinBP (or LinBP*) in closed form via the Kronecker system.

    ``echo_cancellation`` defaults to True, i.e. the full LinBP system
    ``(I − Ĥ⊗A + Ĥ²⊗D)`` of Proposition 7 is solved; pass False to drop the
    ``Ĥ²⊗D`` echo term and obtain the closed form of LinBP* instead.
    """
    runner = LinBP(graph, coupling, echo_cancellation=echo_cancellation)
    return runner.solve_closed_form(explicit_residuals)
