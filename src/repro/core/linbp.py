"""Linearized Belief Propagation (LinBP and LinBP*).

The paper's central result (Theorem 4) is that the final beliefs of
multi-class BP are approximated by the linear equation system

.. math::

    \\hat B = \\hat E + A \\hat B \\hat H - D \\hat B \\hat H^2  \\qquad \\text{(LinBP)}

where ``Ê``/``B̂`` are the residual explicit/final beliefs, ``Ĥ`` the residual
coupling matrix, ``A`` the (weighted) adjacency matrix and ``D`` the diagonal
matrix of squared-weight degrees.  Dropping the echo-cancellation term
``D B̂ Ĥ²`` gives the simpler LinBP* (Eq. 5).

Both systems can be solved

* **iteratively** (Eq. 6/7): repeated sparse-matrix–dense-matrix products,
  which is how the paper's experiments run LinBP, or
* **in closed form** (Proposition 7): ``vec(B̂) = (I − Ĥ⊗A + Ĥ²⊗D)^{-1} vec(Ê)``
  via a sparse linear solve over the ``nk``-dimensional vectorised system.

This module implements both, plus the convergence bookkeeping of Section 5.1.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.coupling.matrices import CouplingMatrix
from repro.core import convergence
from repro.core.results import PropagationResult
from repro.exceptions import NotConvergentParametersError, ValidationError
from repro.graphs.graph import Graph

__all__ = ["LinBP", "linbp", "linbp_star", "linbp_closed_form"]


class LinBP:
    """LinBP / LinBP* runner bound to a graph and a coupling matrix.

    Parameters
    ----------
    graph:
        The undirected, possibly weighted network.
    coupling:
        The (scaled) residual coupling matrix ``Ĥ``.
    echo_cancellation:
        True (default) runs full LinBP (Eq. 4); False runs LinBP* (Eq. 5).
    max_iterations:
        Iteration budget for the iterative solver.
    tolerance:
        Stop when the maximum absolute belief change per iteration drops
        below this value.
    require_convergence:
        When true, raise :class:`NotConvergentParametersError` if the exact
        spectral criterion of Lemma 8 says the iteration would diverge.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix,
                 echo_cancellation: bool = True, max_iterations: int = 100,
                 tolerance: float = 1e-10, require_convergence: bool = False):
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValidationError("tolerance must be positive")
        self.graph = graph
        self.coupling = coupling
        self.echo_cancellation = echo_cancellation
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.require_convergence = require_convergence
        self._adjacency = graph.adjacency
        self._degrees = graph.degree_vector() if echo_cancellation else None
        self._residual = coupling.residual
        self._residual_squared = coupling.residual_squared

    @property
    def method_name(self) -> str:
        """``"LinBP"`` or ``"LinBP*"`` depending on echo cancellation."""
        return "LinBP" if self.echo_cancellation else "LinBP*"

    # ------------------------------------------------------------------ #
    # iterative solution (Eq. 6 / Eq. 7)
    # ------------------------------------------------------------------ #
    def run(self, explicit_residuals: np.ndarray,
            initial_beliefs: Optional[np.ndarray] = None,
            num_iterations: Optional[int] = None) -> PropagationResult:
        """Iteratively solve the LinBP update equations.

        Parameters
        ----------
        explicit_residuals:
            ``n x k`` centered explicit beliefs ``Ê``.
        initial_beliefs:
            Optional starting point ``B̂^(0)``; defaults to all zeros (the
            paper notes the fixed point is independent of the start whenever
            the iteration converges).
        num_iterations:
            When given, run exactly this many iterations without early
            stopping — used by the timing experiments that fix 5 iterations.
        """
        explicit = self._check_explicit(explicit_residuals)
        if self.require_convergence and not self._exactly_convergent():
            raise NotConvergentParametersError(
                f"{self.method_name} does not converge for this coupling scale "
                f"(Lemma 8); reduce epsilon")
        beliefs = np.zeros_like(explicit) if initial_beliefs is None \
            else np.asarray(initial_beliefs, dtype=float).copy()
        if beliefs.shape != explicit.shape:
            raise ValidationError("initial beliefs must have the same shape as Ê")
        fixed_iterations = num_iterations is not None
        budget = num_iterations if fixed_iterations else self.max_iterations
        history = []
        converged = False
        iterations_done = 0
        for iteration in range(1, budget + 1):
            iterations_done = iteration
            updated = self._apply_update(explicit, beliefs)
            change = float(np.max(np.abs(updated - beliefs))) if beliefs.size else 0.0
            history.append(change)
            beliefs = updated
            if not fixed_iterations and change < self.tolerance:
                converged = True
                break
        if fixed_iterations:
            # With a fixed budget the caller did not ask for a convergence
            # check; report convergence relative to the tolerance anyway.
            converged = bool(history and history[-1] < self.tolerance)
        return PropagationResult(
            beliefs=beliefs,
            method=self.method_name,
            iterations=iterations_done,
            converged=converged,
            residual_history=history,
            extra={"echo_cancellation": self.echo_cancellation,
                   "epsilon": self.coupling.epsilon},
        )

    def _apply_update(self, explicit: np.ndarray, beliefs: np.ndarray) -> np.ndarray:
        """One application of Eq. 6 (or Eq. 7 without echo cancellation)."""
        propagated = self._adjacency @ beliefs @ self._residual
        if self.echo_cancellation:
            echo = (self._degrees[:, None] * beliefs) @ self._residual_squared
            return explicit + propagated - echo
        return explicit + propagated

    # ------------------------------------------------------------------ #
    # closed-form solution (Proposition 7)
    # ------------------------------------------------------------------ #
    def solve_closed_form(self, explicit_residuals: np.ndarray) -> PropagationResult:
        """Solve the vectorised linear system of Proposition 7 directly.

        The system matrix ``I_nk − Ĥ⊗A + Ĥ²⊗D`` is assembled sparsely
        (``Ĥ`` is only k x k) and handed to SuperLU via ``scipy.sparse.linalg
        .spsolve``.  Because ``vec`` stacks *columns*, the vectorised unknown
        is ``B̂`` flattened in Fortran (column-major) order.
        """
        explicit = self._check_explicit(explicit_residuals)
        n, k = explicit.shape
        identity = sp.identity(n * k, format="csr")
        system = identity - sp.kron(sp.csr_matrix(self._residual),
                                    self._adjacency, format="csr")
        if self.echo_cancellation:
            degree = sp.diags(self.graph.degree_vector(), format="csr")
            system = system + sp.kron(sp.csr_matrix(self._residual_squared),
                                      degree, format="csr")
        right_hand_side = explicit.flatten(order="F")
        solution = spla.spsolve(system.tocsc(), right_hand_side)
        beliefs = np.asarray(solution).reshape((n, k), order="F")
        return PropagationResult(
            beliefs=beliefs,
            method=f"{self.method_name} (closed form)",
            iterations=0,
            converged=True,
            residual_history=[],
            extra={"echo_cancellation": self.echo_cancellation,
                   "epsilon": self.coupling.epsilon,
                   "solver": "spsolve"},
        )

    # ------------------------------------------------------------------ #
    # convergence helpers
    # ------------------------------------------------------------------ #
    def _exactly_convergent(self) -> bool:
        if self.echo_cancellation:
            return convergence.exact_convergence_linbp(self.graph, self.coupling)
        return convergence.exact_convergence_linbp_star(self.graph, self.coupling)

    def spectral_radius(self) -> float:
        """Spectral radius of the update matrix (the Lemma 8 quantity)."""
        from repro.graphs import linalg
        degree = self.graph.degree_matrix() if self.echo_cancellation else None
        return linalg.kron_spectral_radius(self._residual, self._adjacency,
                                           degree=degree)

    def _check_explicit(self, explicit_residuals: np.ndarray) -> np.ndarray:
        explicit = np.asarray(explicit_residuals, dtype=float)
        if explicit.ndim != 2:
            raise ValidationError("explicit beliefs must be a 2-D matrix")
        if explicit.shape[0] != self.graph.num_nodes:
            raise ValidationError(
                f"expected {self.graph.num_nodes} rows, got {explicit.shape[0]}")
        if explicit.shape[1] != self.coupling.num_classes:
            raise ValidationError(
                f"expected {self.coupling.num_classes} columns, "
                f"got {explicit.shape[1]}")
        return explicit


# ---------------------------------------------------------------------- #
# functional wrappers
# ---------------------------------------------------------------------- #
def linbp(graph: Graph, coupling: CouplingMatrix, explicit_residuals: np.ndarray,
          max_iterations: int = 100, tolerance: float = 1e-10,
          num_iterations: Optional[int] = None,
          require_convergence: bool = False) -> PropagationResult:
    """Run full LinBP (with echo cancellation) iteratively."""
    runner = LinBP(graph, coupling, echo_cancellation=True,
                   max_iterations=max_iterations, tolerance=tolerance,
                   require_convergence=require_convergence)
    return runner.run(explicit_residuals, num_iterations=num_iterations)


def linbp_star(graph: Graph, coupling: CouplingMatrix,
               explicit_residuals: np.ndarray, max_iterations: int = 100,
               tolerance: float = 1e-10, num_iterations: Optional[int] = None,
               require_convergence: bool = False) -> PropagationResult:
    """Run LinBP* (without echo cancellation) iteratively."""
    runner = LinBP(graph, coupling, echo_cancellation=False,
                   max_iterations=max_iterations, tolerance=tolerance,
                   require_convergence=require_convergence)
    return runner.run(explicit_residuals, num_iterations=num_iterations)


def linbp_closed_form(graph: Graph, coupling: CouplingMatrix,
                      explicit_residuals: np.ndarray,
                      echo_cancellation: bool = True) -> PropagationResult:
    """Solve LinBP (or LinBP*) in closed form via the Kronecker system."""
    runner = LinBP(graph, coupling, echo_cancellation=echo_cancellation)
    return runner.solve_closed_form(explicit_residuals)
