"""Core algorithms: standard BP, LinBP, LinBP*, SBP, FABP, convergence criteria."""

from repro.core.bp import BeliefPropagation, belief_propagation
from repro.core.convergence import (
    ConvergenceReport,
    analyze,
    edge_adjacency_matrix,
    exact_convergence_linbp,
    exact_convergence_linbp_star,
    max_epsilon_exact,
    max_epsilon_sufficient,
    mooij_kappen_bound,
    mooij_kappen_constant,
    simple_norm_bound_linbp,
    sufficient_norm_bound_linbp,
    sufficient_norm_bound_linbp_star,
)
from repro.core.estimation import CouplingEstimate, estimate_coupling
from repro.core.events import UpdateEvent, UpdateNotifier
from repro.core.fabp import binary_coupling, fabp, fabp_batch, fabp_closed_form
from repro.core.incremental import IncrementalLinBP
from repro.core.linbp import LinBP, linbp, linbp_closed_form, linbp_star
from repro.core.relational_learner import weighted_vote_relational_neighbor, wvrn
from repro.core.results import PropagationResult
from repro.core.sbp import SBP, sbp

__all__ = [
    "BeliefPropagation",
    "belief_propagation",
    "ConvergenceReport",
    "analyze",
    "edge_adjacency_matrix",
    "exact_convergence_linbp",
    "exact_convergence_linbp_star",
    "max_epsilon_exact",
    "max_epsilon_sufficient",
    "mooij_kappen_bound",
    "mooij_kappen_constant",
    "simple_norm_bound_linbp",
    "sufficient_norm_bound_linbp",
    "sufficient_norm_bound_linbp_star",
    "CouplingEstimate",
    "estimate_coupling",
    "UpdateEvent",
    "UpdateNotifier",
    "IncrementalLinBP",
    "binary_coupling",
    "fabp",
    "fabp_batch",
    "fabp_closed_form",
    "weighted_vote_relational_neighbor",
    "wvrn",
    "LinBP",
    "linbp",
    "linbp_closed_form",
    "linbp_star",
    "PropagationResult",
    "SBP",
    "sbp",
]
