"""Binary-class linearized BP (the FABP special case, Appendix E).

For ``k = 2`` classes, the residual coupling matrix is fully described by one
scalar ``ĥ`` (``Ĥ = [[ĥ, −ĥ], [−ĥ, ĥ]]``) and every belief vector by one scalar
(``b̂ = [b̂, −b̂]``).  Appendix E of the paper shows that the general LinBP
framework then collapses to a single ``n``-dimensional linear system

.. math::

    \\hat b = \\Big(I_n - \\tfrac{2\\hat h}{1-4\\hat h^2}\\,A
              + \\tfrac{4\\hat h^2}{1-4\\hat h^2}\\,D\\Big)^{-1} \\hat e

which is (up to the centering convention) the FABP algorithm of Koutra et
al. [25].  Ignoring the ``1/(1−4ĥ²)`` correction (valid for small ``ĥ``) gives
exactly the k = 2 instance of the LinBP equation system:

.. math::

    \\hat b = (I_n - 2\\hat h A + 4\\hat h^2 D)^{-1} \\hat e

Both closed forms are provided so the equivalence can be tested numerically
against the multi-class implementation in :mod:`repro.core.linbp`.
"""

from __future__ import annotations

from typing import List, Literal, Sequence

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.core.results import PropagationResult
from repro.engine.plan import get_binary_solver
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = ["binary_coupling", "fabp_closed_form", "fabp", "fabp_batch"]


def binary_coupling(h_residual: float, epsilon: float = 1.0,
                    class_names=("positive", "negative")) -> CouplingMatrix:
    """The 2 x 2 residual coupling matrix ``[[ĥ, −ĥ], [−ĥ, ĥ]]``.

    ``h_residual > 0`` encodes homophily, ``h_residual < 0`` heterophily.
    """
    if h_residual == 0.0:
        raise ValidationError("h_residual must be non-zero")
    residual = np.array([[h_residual, -h_residual],
                         [-h_residual, h_residual]])
    return CouplingMatrix.from_residual(residual, epsilon=epsilon,
                                        class_names=class_names)


def fabp_closed_form(graph: Graph, h_residual: float,
                     explicit_scalars: np.ndarray,
                     variant: Literal["linbp", "exact"] = "linbp") -> np.ndarray:
    """Solve the binary linear system and return scalar beliefs per node.

    Parameters
    ----------
    graph:
        The undirected network.
    h_residual:
        The scalar residual coupling ``ĥ`` (already scaled by ``ε_H``).
    explicit_scalars:
        Length-``n`` vector ``ê`` of scalar explicit beliefs (positive values
        favour class 0, negative values class 1, zero means unlabeled).
    variant:
        ``"linbp"`` (default) solves ``(I − 2ĥA + 4ĥ²D) b̂ = ê`` — the exact
        k = 2 instance of the LinBP equation system.  ``"exact"`` solves the
        non-simplified version with the ``1/(1 − 4ĥ²)`` correction factors of
        Appendix E (the FABP form).

    The system is solved through the engine's cached sparse LU factorisation
    (:func:`repro.engine.plan.get_binary_solver`): the first call against a
    ``(graph, ĥ, variant)`` triple factorises once, subsequent calls only
    perform the two triangular solves.
    """
    explicit = np.asarray(explicit_scalars, dtype=float).ravel()
    if explicit.shape[0] != graph.num_nodes:
        raise ValidationError(
            f"expected {graph.num_nodes} explicit scalars, got {explicit.shape[0]}")
    solve = get_binary_solver(graph, h_residual, variant=variant)
    return np.asarray(solve(explicit)).ravel()


def fabp(graph: Graph, h_residual: float, explicit_scalars: np.ndarray,
         variant: Literal["linbp", "exact"] = "linbp") -> PropagationResult:
    """Binary LinBP wrapped in the common result container.

    The returned beliefs have two columns ``[b̂, −b̂]`` so that downstream
    metrics (top-belief assignment, comparisons with the multi-class solver)
    apply unchanged.
    """
    scalars = fabp_closed_form(graph, h_residual, explicit_scalars, variant=variant)
    beliefs = np.column_stack([scalars, -scalars])
    return PropagationResult(
        beliefs=beliefs,
        method="FABP" if variant == "exact" else "LinBP (binary)",
        iterations=0,
        converged=True,
        residual_history=[],
        extra={"h_residual": h_residual, "variant": variant},
    )


def fabp_batch(graph: Graph, h_residual: float,
               explicit_scalars_list: Sequence[np.ndarray],
               variant: Literal["linbp", "exact"] = "linbp"
               ) -> List[PropagationResult]:
    """Solve many binary queries against one graph with a single factorised solve.

    The binary analogue of :func:`repro.engine.batch.run_batch`: all ``q``
    explicit-scalar vectors are stacked into one ``n x q`` right-hand-side
    matrix and handed to the engine's cached LU factorisation in a single
    multi-RHS triangular solve.  Returns one :class:`PropagationResult` per
    query, identical (to floating-point round-off) to calling :func:`fabp`
    sequentially.
    """
    if len(explicit_scalars_list) == 0:
        return []
    stacked = np.column_stack(
        [np.asarray(explicit, dtype=float).ravel()
         for explicit in explicit_scalars_list])
    if stacked.shape[0] != graph.num_nodes:
        raise ValidationError(
            f"expected {graph.num_nodes} explicit scalars per query, "
            f"got {stacked.shape[0]}")
    solve = get_binary_solver(graph, h_residual, variant=variant)
    solutions = np.asarray(solve(stacked)).reshape(graph.num_nodes, -1)
    results: List[PropagationResult] = []
    for query in range(solutions.shape[1]):
        scalars = solutions[:, query]
        results.append(PropagationResult(
            beliefs=np.column_stack([scalars, -scalars]),
            method="FABP" if variant == "exact" else "LinBP (binary)",
            iterations=0,
            converged=True,
            residual_history=[],
            extra={"h_residual": h_residual, "variant": variant,
                   "engine": "batch", "batch_size": solutions.shape[1]},
        ))
    return results
