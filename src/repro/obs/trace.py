"""Lightweight tracing spans with pluggable sinks.

``with span("engine.sweep", engine="batch"):`` times a block and, on
exit, (a) observes the duration on the ``repro_span_seconds`` histogram
(labelled by span name) and (b) emits a :class:`SpanEvent` to every
registered sink.  Three sinks ship with the module:

* :class:`RingBufferSink` — bounded in-memory deque; the default sink
  (capacity 2048) so recent spans are always inspectable without any
  configuration (``repro.obs.recent_spans()``);
* :class:`JsonLinesSink` — one JSON object per line to a file path or
  file object, for offline analysis;
* :class:`StderrSink` — human-readable one-liners, for quick debugging.

When telemetry is disabled (``REPRO_OBS_DISABLED=1`` or
:func:`repro.obs.set_obs_enabled`), :func:`span` returns a shared no-op
singleton — the hot path pays one flag check and one attribute load, no
object allocation and no clock read.  Instrumented call sites therefore
never need their own guard.

Tags are free-form key/values frozen into the event at exit;
:meth:`_Span.set_tag` adds tags mid-span (e.g. the residual a sweep
produced).  Sink errors are deliberately not swallowed for the in-tree
sinks (they cannot fail in normal operation); a custom sink that raises
will surface its error at the emitting call site.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, TextIO, Union

from repro.obs.metrics import STATE, histogram

__all__ = [
    "SpanEvent",
    "span",
    "RingBufferSink",
    "JsonLinesSink",
    "StderrSink",
    "add_sink",
    "remove_sink",
    "default_ring",
    "recent_spans",
]

#: Every span duration lands here, labelled by span name.
SPAN_SECONDS = histogram(
    "repro_span_seconds",
    "Duration of traced spans, labelled by span name.")


class SpanEvent:
    """One finished span: name, wall-clock start, duration, tags."""

    __slots__ = ("name", "start", "duration", "tags")

    def __init__(self, name: str, start: float, duration: float,
                 tags: Dict[str, object]) -> None:
        self.name = name
        self.start = start
        self.duration = duration
        self.tags = tags

    def to_dict(self) -> Dict[str, object]:
        return {"span": self.name, "start": self.start,
                "duration_seconds": self.duration, "tags": dict(self.tags)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SpanEvent({self.name!r}, duration="
                f"{self.duration * 1e3:.3f}ms, tags={self.tags!r})")


class RingBufferSink:
    """Keep the most recent ``capacity`` events in memory."""

    def __init__(self, capacity: int = 2048) -> None:
        self._events: Deque[SpanEvent] = deque(maxlen=int(capacity))

    def emit(self, event: SpanEvent) -> None:
        self._events.append(event)

    def events(self) -> List[SpanEvent]:
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonLinesSink:
    """Append one JSON object per event to a path or open file object."""

    def __init__(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, str):
            self._file: TextIO = open(target, "a", encoding="utf-8")
            self._owns_file = True
        else:
            self._file = target
            self._owns_file = False
        self._lock = threading.Lock()

    def emit(self, event: SpanEvent) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True, default=str)
        with self._lock:
            self._file.write(line + "\n")
            self._file.flush()

    def close(self) -> None:
        if self._owns_file:
            self._file.close()


class StderrSink:
    """Human-readable one-liners on stderr (or any stream)."""

    def __init__(self, stream: Optional[TextIO] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr

    def emit(self, event: SpanEvent) -> None:
        tags = " ".join(f"{key}={value}" for key, value
                        in sorted(event.tags.items()))
        self._stream.write(
            f"[span] {event.name} {event.duration * 1e3:.3f}ms"
            + (f" {tags}" if tags else "") + "\n")


#: The always-registered in-memory sink (never removed by ``remove_sink``).
#: ``_SINKS`` is an immutable tuple rebound under the lock on add/remove,
#: so the span exit path iterates it without taking a lock or copying.
_DEFAULT_RING = RingBufferSink()
_SINKS: tuple = (_DEFAULT_RING,)
_SINKS_LOCK = threading.Lock()


def default_ring() -> RingBufferSink:
    """The built-in ring buffer sink holding the most recent spans."""
    return _DEFAULT_RING


def recent_spans(name: Optional[str] = None) -> List[SpanEvent]:
    """Events in the default ring buffer, optionally filtered by span name."""
    events = _DEFAULT_RING.events()
    if name is None:
        return events
    return [event for event in events if event.name == name]


def add_sink(sink) -> None:
    """Register a sink (any object with ``emit(SpanEvent)``)."""
    global _SINKS
    with _SINKS_LOCK:
        _SINKS = _SINKS + (sink,)


def remove_sink(sink) -> None:
    """Unregister a sink added with :func:`add_sink` (no-op if absent)."""
    global _SINKS
    with _SINKS_LOCK:
        _SINKS = tuple(s for s in _SINKS if s is not sink)


class _Span:
    """A live span; created by :func:`span` only when telemetry records."""

    __slots__ = ("name", "tags", "_wall_start", "_perf_start", "duration")

    def __init__(self, name: str, tags: Dict[str, object]) -> None:
        self.name = name
        self.tags = tags
        self.duration = 0.0
        self._wall_start = 0.0
        self._perf_start = 0.0

    def set_tag(self, key: str, value: object) -> None:
        self.tags[key] = value

    def __enter__(self) -> "_Span":
        self._wall_start = time.time()
        self._perf_start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._perf_start
        if exc_type is not None:
            self.tags["error"] = exc_type.__name__
        SPAN_SECONDS.observe(self.duration, span=self.name)
        event = SpanEvent(self.name, self._wall_start, self.duration,
                          self.tags)
        for sink in _SINKS:
            sink.emit(event)


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def set_tag(self, key: str, value: object) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NOOP = _NoopSpan()


def span(name: str, **tags: object):
    """Open a span context manager (a shared no-op when telemetry is off)."""
    if not STATE.enabled:
        return _NOOP
    return _Span(name, tags)
