"""Convergence profiling: per-iteration residuals with Lemma-8 context.

The paper's convergence story is quantitative: LinBP converges iff the
spectral radius of the update matrix is below one (Lemma 8), and when it
does, the residual shrinks geometrically at roughly that radius per
sweep.  A :class:`ConvergenceProfile` packages what a single propagation
actually did — the residual trajectory, the iteration count, the
observed geometric rate — next to what the theory predicted, so a slow
query can be diagnosed ("ε too close to the Lemma 8 boundary") instead
of merely observed.

Profiles are opt-in (``profile=True`` on
:func:`repro.engine.batch.run_batch` /
:func:`repro.engine.sbp_plan.run_sbp_batch`) because
the Lemma 8 radius is an eigensolve on first use — cached on the plan,
but not free.  The resulting dict rides in
``PropagationResult.extra["profile"]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.obs.metrics import counter

__all__ = ["ConvergenceProfile", "profile_batch_query", "profile_sbp_query"]

#: How many profiled propagations ran (labelled by engine).
PROFILE_RUNS = counter(
    "repro_profile_runs_total",
    "Propagations that recorded a convergence profile, by engine.")


@dataclass
class ConvergenceProfile:
    """One query's convergence record, theory next to observation.

    ``residuals`` is the per-iteration maximum belief change (empty for
    the single-sweep SBP engine); ``geometric_rate`` the observed tail
    ratio of successive residuals; ``spectral_radius`` the exact Lemma 8
    quantity when the engine could supply it, with
    ``exactly_convergent = radius < 1``.
    """

    engine: str
    residuals: List[float] = field(default_factory=list)
    iterations: int = 0
    converged: bool = False
    tolerance: Optional[float] = None
    spectral_radius: Optional[float] = None
    exactly_convergent: Optional[bool] = None
    geometric_rate: Optional[float] = None
    extra: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "engine": self.engine,
            "residuals": list(self.residuals),
            "iterations": self.iterations,
            "converged": self.converged,
        }
        if self.tolerance is not None:
            payload["tolerance"] = self.tolerance
        if self.spectral_radius is not None:
            payload["spectral_radius"] = self.spectral_radius
            payload["exactly_convergent"] = self.exactly_convergent
        if self.geometric_rate is not None:
            payload["geometric_rate"] = self.geometric_rate
        payload.update(self.extra)
        return payload


def _tail_rate(residuals: Sequence[float], window: int = 5) -> Optional[float]:
    """Mean ratio of successive residuals over the trajectory's tail.

    The empirical analogue of the Lemma 8 radius: for a geometrically
    converging iteration the ratio settles at the spectral radius.  Pairs
    with a zero denominator (fully converged to machine zero) are
    skipped; fewer than two usable points yield ``None``.
    """
    tail = [value for value in residuals[-(window + 1):] if value == value]
    ratios = [after / before for before, after in zip(tail, tail[1:])
              if before > 0.0]
    if not ratios:
        return None
    return float(sum(ratios) / len(ratios))


def profile_batch_query(plan, residuals: Sequence[float], iterations: int,
                        converged: bool, tolerance: float) -> Dict[str, object]:
    """Profile one LinBP-family query against its plan's Lemma 8 radius.

    ``plan`` is a :class:`repro.engine.plan.PropagationPlan` (or any
    object with ``update_spectral_radius()``); the radius is computed on
    first use and cached on the plan, so profiling a hot plan costs one
    cached attribute read.
    """
    radius = float(plan.update_spectral_radius())
    PROFILE_RUNS.inc(engine="batch")
    return ConvergenceProfile(
        engine="batch",
        residuals=list(residuals),
        iterations=int(iterations),
        converged=bool(converged),
        tolerance=float(tolerance),
        spectral_radius=radius,
        exactly_convergent=radius < 1.0,
        geometric_rate=_tail_rate(residuals),
    ).to_dict()


def profile_sbp_query(plan, edges_touched: int) -> Dict[str, object]:
    """Profile one single-pass query: level structure instead of residuals.

    SBP has no iteration-to-convergence story — one sweep over the
    geodesic levels is the whole algorithm — so its profile records the
    traversal shape: level count, widest level, ``A*`` entries read.
    """
    PROFILE_RUNS.inc(engine="sbp")
    return ConvergenceProfile(
        engine="sbp",
        residuals=[],
        iterations=max(0, plan.max_level),
        converged=True,
        extra={"max_level": int(plan.max_level),
               "max_width": int(plan.max_width),
               "edges_touched": int(edges_touched),
               "labeled_nodes": int(plan.labeled.size)},
    ).to_dict()
