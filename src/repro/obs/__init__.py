"""Unified telemetry: metrics, tracing spans, convergence profiling.

One dependency-free observability layer for the whole reproduction —
the measurement substrate the ROADMAP's tuning work (micro-batch
windows, cache TTLs, repartition thresholds) reads from:

* :mod:`repro.obs.metrics` — thread-safe counters, gauges and
  fixed-bucket histograms in named registries; a process-global default
  registry (:data:`REGISTRY`) for engine/shard/span metrics, plus
  always-on per-instance registries for state that backs public
  contracts (the propagation service's ``stats()``);
* :mod:`repro.obs.trace` — ``with span("engine.sweep", engine="batch")``
  context managers emitting :class:`SpanEvent` records to pluggable
  sinks (in-memory ring buffer, JSON lines, stderr) and the
  ``repro_span_seconds`` histogram;
* :mod:`repro.obs.profile` — opt-in per-query convergence profiles
  (residual trajectory next to the Lemma 8 spectral radius) attached to
  ``PropagationResult.extra["profile"]``;
* :mod:`repro.obs.exporter` — :func:`render_prometheus` text exposition
  and the ``repro serve --metrics-port`` scrape endpoint.

Telemetry is globally switchable: ``REPRO_OBS_DISABLED=1`` (env, at
import) or :func:`set_obs_enabled` (runtime) turn every span and every
default-registry metric into a near-free no-op — one flag check on the
hot path, verified by ``benchmarks/test_bench_obs.py``'s <5% overhead
gate.  The metric catalog lives in ``docs/observability.md`` and is
checked against the registry by ``scripts/check_docs.py``.
"""

from repro.obs.exporter import (
    MetricsHTTPServer,
    render_prometheus,
    start_metrics_server,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    iter_registries,
    obs_enabled,
    set_obs_enabled,
)
from repro.obs.profile import (
    ConvergenceProfile,
    profile_batch_query,
    profile_sbp_query,
)
from repro.obs.trace import (
    JsonLinesSink,
    RingBufferSink,
    SpanEvent,
    StderrSink,
    add_sink,
    default_ring,
    recent_spans,
    remove_sink,
    span,
)

__all__ = [
    # metrics
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "iter_registries",
    "obs_enabled",
    "set_obs_enabled",
    "DEFAULT_BUCKETS",
    # tracing
    "span",
    "SpanEvent",
    "RingBufferSink",
    "JsonLinesSink",
    "StderrSink",
    "add_sink",
    "remove_sink",
    "default_ring",
    "recent_spans",
    # profiling
    "ConvergenceProfile",
    "profile_batch_query",
    "profile_sbp_query",
    # exporting
    "render_prometheus",
    "MetricsHTTPServer",
    "start_metrics_server",
]
