"""Prometheus text exposition and the ``--metrics-port`` HTTP endpoint.

:func:`render_prometheus` serialises one or more registries into the
Prometheus text format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers,
one sample line per label combination, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
Metric names in this codebase are already exposition-safe
(``repro_*_total`` style); label values are escaped per the format
rules.

:class:`MetricsHTTPServer` is the minimal scrape endpoint behind
``repro serve --metrics-port N``: a stdlib ``ThreadingHTTPServer``
answering ``GET /metrics`` with the rendered text, run on a daemon
thread so it never blocks service shutdown.  No dependencies, no
frameworks — the whole exporter is this file.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

from repro.obs.metrics import (
    REGISTRY,
    Histogram,
    MetricsRegistry,
)

__all__ = ["render_prometheus", "MetricsHTTPServer", "start_metrics_server"]

#: Content type mandated by the Prometheus text exposition format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _format_labels(labels: dict, extra: Optional[dict] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(str(value))}"'
        for key, value in sorted(merged.items()))
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _render_metric(metric, lines: list) -> None:
    if metric.help:
        lines.append(f"# HELP {metric.name} {metric.help}")
    lines.append(f"# TYPE {metric.name} {metric.kind}")
    if isinstance(metric, Histogram):
        for labels, series in metric.labeled_values():
            cumulative = 0
            for bound, count in zip(metric.buckets, series.bucket_counts):
                cumulative += count
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_format_labels(labels, {'le': repr(float(bound))})} "
                    f"{cumulative}")
            lines.append(
                f"{metric.name}_bucket{_format_labels(labels, {'le': '+Inf'})} "
                f"{series.count}")
            lines.append(f"{metric.name}_sum{_format_labels(labels)} "
                         f"{repr(series.sum)}")
            lines.append(f"{metric.name}_count{_format_labels(labels)} "
                         f"{series.count}")
    else:
        series = metric.labeled_values()
        if not series:
            # An instrumented-but-never-hit metric still exposes a zero
            # sample, so dashboards can tell "registered" from "absent".
            lines.append(f"{metric.name} 0")
        for labels, value in series:
            lines.append(f"{metric.name}{_format_labels(labels)} "
                         f"{_format_value(value)}")


def render_prometheus(
        registries: Optional[Sequence[MetricsRegistry]] = None) -> str:
    """Render registries as Prometheus text (default: the global registry).

    Later registries win name collisions are not expected — metric names
    are namespaced per layer — but if two registries define the same
    name, both are rendered (Prometheus tolerates repeated groups with
    distinct label sets).
    """
    if registries is None:
        registries = [REGISTRY]
    lines: list = []
    for registry in registries:
        for metric in registry.metrics():
            _render_metric(metric, lines)
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsHTTPServer:
    """A daemon-thread HTTP endpoint serving ``GET /metrics``.

    ``registries`` defaults to the global registry; pass the service's
    own registry too so request counters appear in the scrape.
    """

    def __init__(self, port: int, host: str = "127.0.0.1",
                 registries: Optional[Sequence[MetricsRegistry]] = None):
        self._registries = list(registries) if registries else [REGISTRY]
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - stdlib naming
                if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                    self.send_error(404, "only /metrics is served here")
                    return
                body = render_prometheus(outer._registries).encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", CONTENT_TYPE)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args) -> None:  # noqa: A002
                pass  # scrapes are high-frequency; stay quiet

        self._server = ThreadingHTTPServer((host, int(port)), _Handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        """The bound port (useful when constructed with port 0)."""
        return self._server.server_address[1]

    def start(self) -> "MetricsHTTPServer":
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        name="repro-metrics", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


def start_metrics_server(
        port: int, host: str = "127.0.0.1",
        registries: Optional[Sequence[MetricsRegistry]] = None
        ) -> MetricsHTTPServer:
    """Construct and start a :class:`MetricsHTTPServer` in one call."""
    return MetricsHTTPServer(port, host=host, registries=registries).start()
