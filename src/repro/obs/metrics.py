"""Thread-safe metrics: counters, gauges and fixed-bucket histograms.

The registry is the numeric half of :mod:`repro.obs` (spans are the
other).  Design constraints, in order:

1. **Near-zero cost when disabled.**  Every recording call starts with
   one attribute read on the module-level :data:`STATE` flag and returns
   immediately when telemetry is off — no lock, no dict lookup, no
   allocation.  ``REPRO_OBS_DISABLED=1`` sets the flag at import;
   :func:`set_obs_enabled` flips it at runtime (used by the overhead
   benchmark to measure both sides in one process).
2. **Always-on islands.**  A registry built with ``always_on=True``
   records regardless of the global flag.  The propagation service keeps
   its request accounting on such a registry because ``stats()`` is part
   of its public contract — those counters are state, not telemetry, and
   must stay exact even under ``REPRO_OBS_DISABLED=1``.
3. **Per-graph labels.**  Metrics carry optional labels
   (``counter.inc(graph="dblp")``); each label combination is an
   independent series, and ``value()`` with no labels sums the series —
   the shape ``stats()`` totals need.
4. **No dependencies.**  Plain stdlib + the process-wide default
   registry (:data:`REGISTRY`); rendering to Prometheus text lives in
   :mod:`repro.obs.exporter`.

Thread safety: one re-entrant lock per registry guards metric creation;
each metric guards its own series dict with the registry's lock too.
Totals are exact under concurrent writers — the hammer test in
``tests/obs/test_obs_threads.py`` holds N writer threads against a
rendering reader and checks the final counts to the unit.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "obs_enabled",
    "set_obs_enabled",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds, in seconds — spans from
#: microsecond kernel sweeps to multi-second full-graph solves.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


def _env_disabled() -> bool:
    return os.environ.get("REPRO_OBS_DISABLED", "") not in ("", "0")


class _ObsState:
    """Module-level telemetry switch — one attribute read on the hot path."""

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = not _env_disabled()


STATE = _ObsState()


def obs_enabled() -> bool:
    """Whether global telemetry (spans + default-registry metrics) records."""
    return STATE.enabled


def set_obs_enabled(enabled: bool) -> None:
    """Flip the global telemetry switch at runtime (tests and benchmarks)."""
    STATE.enabled = bool(enabled)


def _label_key(labels: Dict[str, object]) -> Tuple[Tuple[str, str], ...]:
    """Canonical hashable identity of one label combination."""
    if not labels:
        return ()
    if len(labels) == 1:  # the hot per-sweep case: skip the sort
        ((key, value),) = labels.items()
        return ((key if type(key) is str else str(key), str(value)),)
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared machinery: name/help/type plus the per-label series table."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 registry: "MetricsRegistry") -> None:
        self.name = name
        self.help = help_text
        self._registry = registry
        self._lock = registry._lock
        self._series: Dict[Tuple[Tuple[str, str], ...], object] = {}

    def _recording(self) -> bool:
        return self._registry._always_on or STATE.enabled

    def labeled_values(self) -> List[Tuple[Dict[str, str], object]]:
        """Every series as ``(labels dict, value)`` — a consistent snapshot."""
        with self._lock:
            return [(dict(key), value)
                    for key, value in sorted(self._series.items())]


class Counter(_Metric):
    """Monotonically increasing count, one series per label combination."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._recording():
            return
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge instead")
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        """One series' count, or the sum over all series with no labels."""
        with self._lock:
            if labels:
                return float(self._series.get(_label_key(labels), 0.0))
            return float(sum(self._series.values()))


class Gauge(_Metric):
    """A value that can go up and down (versions, sizes, drifts)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._recording():
            return
        with self._lock:
            self._series[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self._recording():
            return
        key = _label_key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        with self._lock:
            if labels:
                return float(self._series.get(_label_key(labels), 0.0))
            values = list(self._series.values())
            return float(sum(values))


class _HistogramSeries:
    """One label combination's bucket counts, sum and count."""

    __slots__ = ("bucket_counts", "sum", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.sum = 0.0
        self.count = 0


class Histogram(_Metric):
    """Fixed-bucket distribution (cumulative ``le`` semantics on render)."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str, registry: "MetricsRegistry",
                 buckets: Optional[Sequence[float]] = None) -> None:
        super().__init__(name, help_text, registry)
        bounds = tuple(sorted(float(b) for b in (buckets or DEFAULT_BUCKETS)))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not self._recording():
            return
        value = float(value)
        key = _label_key(labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = _HistogramSeries(len(self.buckets))
                self._series[key] = series
            index = bisect_left(self.buckets, value)
            if index < len(self.buckets):
                series.bucket_counts[index] += 1
            series.sum += value
            series.count += 1

    def count(self, **labels: object) -> int:
        """Observations in one series, or across all series with no labels."""
        with self._lock:
            if labels:
                series = self._series.get(_label_key(labels))
                return series.count if series is not None else 0
            return sum(series.count for series in self._series.values())

    def sum_value(self, **labels: object) -> float:
        with self._lock:
            if labels:
                series = self._series.get(_label_key(labels))
                return series.sum if series is not None else 0.0
            return float(sum(series.sum for series in self._series.values()))


class MetricsRegistry:
    """A named collection of metrics; get-or-create, type-checked.

    ``always_on=True`` makes every metric of the registry record even
    when the global telemetry switch is off — for counters that back a
    public stats contract rather than optional observability.
    """

    def __init__(self, always_on: bool = False) -> None:
        self._lock = threading.RLock()
        self._metrics: "Dict[str, _Metric]" = {}
        self._always_on = bool(always_on)

    def _get_or_create(self, cls, name: str, help_text: str, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is not None:
                if not isinstance(metric, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{metric.kind}, not {cls.kind}")
                return metric
            metric = cls(name, help_text, self, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get_or_create(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help_text,
                                   buckets=buckets)

    def get(self, name: str) -> Optional[_Metric]:
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def metrics(self) -> List[_Metric]:
        with self._lock:
            return [self._metrics[name] for name in sorted(self._metrics)]

    def reset(self) -> None:
        """Drop every recorded series (metric definitions survive)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._series.clear()

    def snapshot(self) -> Dict[str, dict]:
        """JSON-safe dump of every metric — the ``metrics`` wire op payload."""
        out: Dict[str, dict] = {}
        for metric in self.metrics():
            entry: dict = {"type": metric.kind, "help": metric.help}
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.buckets)
                entry["series"] = [
                    {"labels": labels,
                     "bucket_counts": list(series.bucket_counts),
                     "sum": series.sum, "count": series.count}
                    for labels, series in metric.labeled_values()]
            else:
                entry["series"] = [{"labels": labels, "value": value}
                                   for labels, value in metric.labeled_values()]
            out[metric.name] = entry
        return out


#: The process-wide default registry: engine, shard and span metrics.
REGISTRY = MetricsRegistry()


def counter(name: str, help_text: str = "") -> Counter:
    """Get or create a counter on the default registry."""
    return REGISTRY.counter(name, help_text)


def gauge(name: str, help_text: str = "") -> Gauge:
    """Get or create a gauge on the default registry."""
    return REGISTRY.gauge(name, help_text)


def histogram(name: str, help_text: str = "",
              buckets: Optional[Sequence[float]] = None) -> Histogram:
    """Get or create a histogram on the default registry."""
    return REGISTRY.histogram(name, help_text, buckets=buckets)


def iter_registries(*extra: MetricsRegistry) -> Iterable[MetricsRegistry]:
    """The default registry followed by ``extra`` (deduplicated, in order)."""
    seen = []
    for registry in (REGISTRY, *extra):
        if registry is not None and all(registry is not s for s in seen):
            seen.append(registry)
    return seen
