"""Graph partitioning for sharded propagation.

The paper's scaling pitch (Sections 1 and 7) is that linearized
propagation reduces to sparse matrix kernels over ``A`` — kernels that
row-partition naturally: every node's update reads its own explicit
belief, its own degree, and the beliefs of its neighbours.  Splitting
the node set into ``p`` shards therefore splits the iteration into ``p``
independent row-block updates whose only coupling is the *halo*: the
out-of-shard neighbours whose beliefs a shard must import each sweep.

:func:`partition_graph` computes such a split and packages everything
the block engine (:mod:`repro.shard.block_engine`) and the worker pool
(:mod:`repro.shard.pool`) need:

* an **assignment** of every node to exactly one shard, produced either
  by a BFS/greedy grower that keeps shards balanced while preferring
  edge-locality (``method="bfs"``, the default) or by a multiplicative
  hash (``method="hash"``, the locality-oblivious baseline — useful to
  quantify what the BFS cut buys);
* one :class:`ShardBlock` per shard holding the shard's rows of ``A`` as
  a local CSR block whose columns are ``[owned nodes | halo nodes]``,
  the squared-weight degrees of the owned rows, and the global↔local
  index translation;
* :class:`PartitionStats` — cut size, cut fraction, balance and halo
  volume, the quantities ``repro partition`` reports and
  ``docs/performance.md`` uses to discuss when sharding pays off.

Invariants (property-tested in ``tests/property/test_property_shard.py``):
every node is owned by exactly one shard; every undirected edge is
either *internal* to exactly one shard or appears in the halo maps of
exactly the two shards it connects; local→global→local translation is
the identity on every block.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = ["ShardBlock", "PartitionStats", "GraphPartition",
           "partition_graph", "partition_from_assignment",
           "build_shard_block", "hash_assignment", "bfs_assignment"]

#: Knuth's multiplicative hash constant (2^32 / golden ratio), used by the
#: locality-oblivious baseline assignment.
_HASH_MULTIPLIER = np.uint64(2654435761)
_HASH_MASK = np.uint64(0xFFFFFFFF)


def _sorted_positions(sorted_ids: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Positions of ``values`` in the sorted array, ``-1`` where absent."""
    if sorted_ids.size == 0:
        return np.full(values.shape, -1, dtype=np.int64)
    positions = np.clip(np.searchsorted(sorted_ids, values),
                        0, sorted_ids.size - 1)
    return np.where(sorted_ids[positions] == values, positions, -1)


class ShardBlock:
    """One shard's slice of the graph: owned rows, halo columns, degrees.

    Attributes
    ----------
    shard_id:
        Index of this shard in ``0..p-1``.
    nodes:
        Sorted global ids of the nodes *owned* by this shard (the rows
        this shard updates).
    halo_nodes:
        Sorted global ids of the out-of-shard neighbours whose beliefs
        this shard imports every sweep (the halo map).
    halo_owners:
        Owner shard of each halo node, aligned with ``halo_nodes``.
    column_nodes:
        ``concat(nodes, halo_nodes)`` — the global ids of the local CSR
        block's columns, in column order.  Gathering these rows of the
        global belief buffer *is* the halo exchange.
    adjacency:
        The owned rows of ``A`` as an ``n_s x (n_s + h_s)`` CSR block in
        local column indexing.  Rows are complete (every neighbour of an
        owned node appears, owned or halo), so a block-Jacobi sweep over
        all shards reproduces the global iteration exactly.
    degrees:
        Squared-weight degree vector of the owned nodes (the echo term
        needs the *global* degrees, which equal the local row sums of
        squares because rows are complete).
    """

    def __init__(self, shard_id: int, nodes: np.ndarray, halo_nodes: np.ndarray,
                 halo_owners: np.ndarray, adjacency: sp.csr_matrix,
                 degrees: np.ndarray):
        self.shard_id = int(shard_id)
        self.nodes = nodes
        self.halo_nodes = halo_nodes
        self.halo_owners = halo_owners
        self.column_nodes = np.concatenate([nodes, halo_nodes]) \
            if nodes.size or halo_nodes.size else np.empty(0, dtype=nodes.dtype)
        self.adjacency = adjacency
        self.degrees = degrees

    def astype(self, dtype) -> "ShardBlock":
        """This block with its numeric payload cast to another dtype.

        Only the adjacency values and the degree vector are copied; the
        index arrays (nodes, halo maps, CSR structure) are shared with
        the original, so a float32 shadow of a partition costs the value
        arrays alone.  Returns ``self`` when the dtype already matches.
        """
        dtype = np.dtype(dtype)
        if self.adjacency.dtype == dtype and self.degrees.dtype == dtype:
            return self
        adjacency = sp.csr_matrix(
            (self.adjacency.data.astype(dtype), self.adjacency.indices,
             self.adjacency.indptr), shape=self.adjacency.shape)
        return ShardBlock(self.shard_id, self.nodes, self.halo_nodes,
                          self.halo_owners, adjacency,
                          self.degrees.astype(dtype))

    @property
    def num_nodes(self) -> int:
        """Number of owned nodes ``n_s``."""
        return int(self.nodes.size)

    @property
    def num_halo(self) -> int:
        """Number of imported halo nodes ``h_s``."""
        return int(self.halo_nodes.size)

    @property
    def num_internal_entries(self) -> int:
        """Adjacency entries whose both endpoints are owned by this shard."""
        return int(np.count_nonzero(self.adjacency.indices < self.num_nodes))

    @property
    def num_cut_entries(self) -> int:
        """Adjacency entries that cross into the halo."""
        return int(self.adjacency.nnz - self.num_internal_entries)

    # ------------------------------------------------------------------ #
    # index translation
    # ------------------------------------------------------------------ #
    def to_local(self, global_ids: np.ndarray) -> np.ndarray:
        """Translate global node ids to local *column* indices.

        Owned nodes map to ``0..n_s-1``, halo nodes to ``n_s..n_s+h_s-1``.
        Ids that are neither owned nor in the halo raise.
        """
        global_ids = np.asarray(global_ids, dtype=np.int64)
        owned = _sorted_positions(self.nodes, global_ids)
        halo = _sorted_positions(self.halo_nodes, global_ids)
        local = np.where(owned >= 0, owned,
                         np.where(halo >= 0, self.num_nodes + halo, -1))
        if (local < 0).any():
            missing = global_ids[local < 0][:5]
            raise ValidationError(
                f"nodes {missing.tolist()} are neither owned by nor in "
                f"the halo of shard {self.shard_id}")
        return local

    def to_global(self, local_ids: np.ndarray) -> np.ndarray:
        """Translate local column indices back to global node ids."""
        local_ids = np.asarray(local_ids, dtype=np.int64)
        if local_ids.size and (local_ids.min() < 0
                               or local_ids.max() >= self.column_nodes.size):
            raise ValidationError(
                f"local ids out of range [0, {self.column_nodes.size}) "
                f"for shard {self.shard_id}")
        return self.column_nodes[local_ids]


@dataclass(frozen=True)
class PartitionStats:
    """Cut-size / balance report of one partition (``repro partition``).

    ``cut_edges`` counts each undirected cross-shard edge once;
    ``cut_fraction`` is relative to all undirected edges.  ``balance`` is
    the largest shard size over the ideal ``n/p`` (1.0 = perfect);
    ``halo_total`` sums the per-shard halo sizes (the volume exchanged
    per sweep).
    """

    num_shards: int
    num_nodes: int
    num_edges: int
    cut_edges: int
    shard_sizes: tuple
    halo_sizes: tuple
    method: str

    @property
    def cut_fraction(self) -> float:
        """Fraction of undirected edges crossing shards."""
        return self.cut_edges / self.num_edges if self.num_edges else 0.0

    @property
    def balance(self) -> float:
        """Largest shard size over the ideal ``n/p`` (1.0 = perfectly even)."""
        if not self.num_nodes:
            return 1.0
        ideal = self.num_nodes / self.num_shards
        return max(self.shard_sizes) / ideal if ideal else 1.0

    @property
    def halo_total(self) -> int:
        """Total number of halo imports across shards (per-sweep volume)."""
        return int(sum(self.halo_sizes))


class GraphPartition:
    """A graph split into ``p`` shard blocks plus the assignment vector.

    Built by :func:`partition_graph`.  The partition keeps a strong
    reference to the graph (the shard blocks share its adjacency data),
    so a partition pins its graph alive — exactly what the sharded
    snapshots in the service layer need.
    """

    def __init__(self, graph: Graph, assignment: np.ndarray,
                 blocks: List[ShardBlock], method: str):
        self.graph = graph
        self.assignment = assignment
        self.blocks = blocks
        self.method = method

    @property
    def num_shards(self) -> int:
        """Number of shards ``p``."""
        return len(self.blocks)

    @property
    def num_nodes(self) -> int:
        """Number of nodes of the underlying graph."""
        return self.graph.num_nodes

    def shard_of(self, node: int) -> int:
        """Owner shard of a global node id."""
        if node < 0 or node >= self.assignment.size:
            raise ValidationError(
                f"node {node} out of range [0, {self.assignment.size})")
        return int(self.assignment[node])

    def stats(self) -> PartitionStats:
        """Cut/balance statistics of this partition."""
        cut_entries = sum(block.num_cut_entries for block in self.blocks)
        return PartitionStats(
            num_shards=self.num_shards,
            num_nodes=self.graph.num_nodes,
            num_edges=self.graph.num_edges,
            cut_edges=cut_entries // 2,
            shard_sizes=tuple(block.num_nodes for block in self.blocks),
            halo_sizes=tuple(block.num_halo for block in self.blocks),
            method=self.method,
        )

    def describe(self) -> str:
        """Multi-line plain-text report (used by ``repro partition``)."""
        stats = self.stats()
        lines = [
            f"partition: {stats.num_shards} shards ({stats.method}), "
            f"{stats.num_nodes} nodes, {stats.num_edges} undirected edges",
            f"cut edges:    {stats.cut_edges} "
            f"({stats.cut_fraction:.1%} of all edges)",
            f"balance:      {stats.balance:.3f} "
            f"(largest shard / ideal n/p)",
            f"halo volume:  {stats.halo_total} imports per sweep",
        ]
        for block in self.blocks:
            lines.append(
                f"  shard {block.shard_id}: {block.num_nodes} nodes, "
                f"{block.adjacency.nnz} adjacency entries "
                f"({block.num_cut_entries} cut), halo {block.num_halo}")
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# assignment strategies
# ---------------------------------------------------------------------- #
def hash_assignment(num_nodes: int, num_shards: int) -> np.ndarray:
    """Locality-oblivious baseline: multiplicative hash of the node id.

    Spreads nodes evenly (max imbalance ±1 in expectation) but ignores
    the edge structure entirely, so nearly every edge is cut on graphs
    with locality — the baseline ``repro partition`` compares against.
    """
    ids = np.arange(num_nodes, dtype=np.uint64)
    mixed = (ids * _HASH_MULTIPLIER) & _HASH_MASK
    return ((mixed >> np.uint64(8)) % np.uint64(num_shards)).astype(np.int64)


def bfs_assignment(graph: Graph, num_shards: int) -> np.ndarray:
    """Greedy BFS region growing: balanced shards with local edge-cuts.

    Shards are grown one at a time to a capacity of ``ceil(n/p)`` nodes:
    starting from the highest-degree unassigned seed, the frontier is
    expanded breadth-first (so a shard is a union of BFS balls — most
    edges stay internal); when a component is exhausted the next
    unassigned seed continues the same shard.  The last shard absorbs
    any remainder, keeping balance within one capacity of ideal.
    """
    n = graph.num_nodes
    adjacency = graph.adjacency
    assignment = np.full(n, -1, dtype=np.int64)
    if n == 0:
        return assignment
    capacity = -(-n // num_shards)  # ceil(n / p)
    degrees = np.diff(adjacency.indptr)
    # Seeds are tried in decreasing degree (stable for determinism):
    # high-degree hubs anchor shards, which keeps their big neighbour
    # lists internal instead of spraying them across the cut.
    seed_order = np.argsort(-degrees, kind="stable")
    seed_cursor = 0
    assigned = 0
    for shard in range(num_shards):
        remaining = n - assigned
        if remaining == 0:
            break
        # Leave enough nodes for the remaining shards to be non-empty
        # when possible, but never exceed the balanced capacity.
        budget = min(capacity, remaining - (num_shards - shard - 1))
        budget = max(budget, 1 if remaining else 0)
        size = 0
        while size < budget:
            while seed_cursor < n and assignment[seed_order[seed_cursor]] >= 0:
                seed_cursor += 1
            if seed_cursor >= n:
                break
            frontier = np.array([seed_order[seed_cursor]], dtype=np.int64)
            assignment[frontier] = shard
            size += 1
            while frontier.size and size < budget:
                # One vectorised gather of all frontier rows (the same
                # trick as graphs.geodesic.neighbor_gather, inlined to
                # keep this module's dependencies flat).
                starts = adjacency.indptr[frontier]
                counts = adjacency.indptr[frontier + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    break
                positions = np.repeat(
                    starts - np.concatenate(([0], np.cumsum(counts[:-1]))),
                    counts) + np.arange(total)
                neighbours = np.unique(adjacency.indices[positions])
                fresh = neighbours[assignment[neighbours] < 0]
                if not fresh.size:
                    break
                take = min(fresh.size, budget - size)
                fresh = fresh[:take]
                assignment[fresh] = shard
                size += take
                frontier = fresh
        assigned += size
    # Any stragglers (possible only when num_shards > n) stay unassigned
    # above; hand them to the last shard for a total function.
    leftovers = assignment < 0
    if leftovers.any():
        assignment[leftovers] = num_shards - 1
    return assignment


_ASSIGNERS = ("bfs", "hash")


def partition_graph(graph: Graph, num_shards: int,
                    method: str = "bfs") -> GraphPartition:
    """Split ``graph`` into ``num_shards`` row blocks with halo maps.

    ``method`` selects the assignment strategy: ``"bfs"`` (default)
    grows balanced BFS regions to keep the cut small; ``"hash"`` is the
    locality-oblivious baseline.  Every shard gets a :class:`ShardBlock`
    with its rows of ``A`` in local column indexing (owned columns
    first, halo columns after), its degree slice, and translation maps.

    Shards may be empty when ``num_shards > num_nodes``; the block
    engine treats empty blocks as no-ops.
    """
    if num_shards < 1:
        raise ValidationError("num_shards must be >= 1")
    if method not in _ASSIGNERS:
        raise ValidationError(
            f"unknown partition method {method!r}; expected one of "
            f"{sorted(_ASSIGNERS)}")
    if method == "hash":
        assignment = hash_assignment(graph.num_nodes, num_shards)
    else:
        assignment = bfs_assignment(graph, num_shards)
    return partition_from_assignment(graph, assignment, num_shards,
                                     method=method)


def build_shard_block(graph: Graph, assignment: np.ndarray,
                      shard: int, adjacency: sp.csr_matrix = None,
                      degrees: np.ndarray = None) -> ShardBlock:
    """Build one shard's :class:`ShardBlock` from an assignment vector.

    The block *owns* its data — the row slice and fancy-indexed arrays
    are copies, never views into the graph's adjacency — which is what
    lets :func:`repro.shard.repair.repair_partition` rebuild only the
    shards an edge delta touched and carry every other block over to a
    successor graph verbatim.  ``adjacency``/``degrees`` let a caller
    building many blocks amortise the float64 cast and the degree
    computation.
    """
    if adjacency is None:
        adjacency = graph.adjacency
        if adjacency.dtype != np.float64:
            adjacency = adjacency.astype(np.float64)
    if degrees is None:
        degrees = graph.degree_vector()
    nodes = np.flatnonzero(assignment == shard).astype(np.int64)
    rows = adjacency[nodes]
    touched = np.unique(rows.indices) if rows.nnz \
        else np.empty(0, dtype=np.int64)
    halo = touched[assignment[touched] != shard].astype(np.int64)
    column_nodes = np.concatenate([nodes, halo]) if nodes.size or halo.size \
        else np.empty(0, dtype=np.int64)
    lookup = np.full(graph.num_nodes, -1, dtype=np.int64)
    lookup[column_nodes] = np.arange(column_nodes.size)
    local = sp.csr_matrix(
        (rows.data, lookup[rows.indices], rows.indptr),
        shape=(nodes.size, column_nodes.size))
    local.sort_indices()
    return ShardBlock(
        shard_id=shard, nodes=nodes, halo_nodes=halo,
        halo_owners=assignment[halo], adjacency=local,
        degrees=degrees[nodes])


def partition_from_assignment(graph: Graph, assignment: np.ndarray,
                              num_shards: int,
                              method: str = "custom") -> GraphPartition:
    """Build the shard blocks for an explicit node→shard assignment."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.num_nodes,):
        raise ValidationError(
            f"assignment must have shape ({graph.num_nodes},), "
            f"got {assignment.shape}")
    if assignment.size and (assignment.min() < 0
                            or assignment.max() >= num_shards):
        raise ValidationError(
            f"assignment values must lie in [0, {num_shards})")
    adjacency = graph.adjacency
    if adjacency.dtype != np.float64:
        adjacency = adjacency.astype(np.float64)
    degrees = graph.degree_vector()
    blocks: List[ShardBlock] = [
        build_shard_block(graph, assignment, shard,
                          adjacency=adjacency, degrees=degrees)
        for shard in range(num_shards)]
    return GraphPartition(graph, assignment, blocks, method=method)
