"""A multiprocessing worker pool executing shard sweeps over shared memory.

Python's GIL serialises the dense/sparse kernels of the block engine in
threads, so real parallel propagation takes processes.  The price of
processes is normally serialisation: naive ``multiprocessing`` would
pickle the belief matrices to every worker each sweep.  This pool makes
the halo exchange **zero-copy** instead:

* the ping-pong belief buffers (two parity buffers), the stacked
  explicit block and the per-shard residual table live in
  ``multiprocessing.shared_memory`` segments that every worker maps once
  at startup;
* a sweep is one tiny control message per worker (``("step",)`` over a
  pipe); the worker gathers its column beliefs — owned and halo rows —
  straight out of the shared front buffer, runs
  :func:`repro.shard.block_engine.shard_step`, and scatters the new
  owned rows into the shared back buffer;
* parity alternates every sweep (even sweeps read buffer X and write
  buffer Y, odd sweeps the reverse), so no buffer is ever copied or
  swapped — workers and driver just agree on the sweep count.

Workers are persistent: one pool serves many batches (the driver sends
``("load", …)`` with the batch width and the coupling bytes — the only
per-batch payload, a few hundred bytes).  Buffer capacity is fixed at
pool creation (``max_columns``); a batch wider than the capacity is
rejected so callers can fall back to the in-process executor.

The pool implements the same ``load`` / ``step`` / ``beliefs`` executor
contract as :class:`repro.shard.block_engine.SequentialShardExecutor`,
so :func:`repro.shard.block_engine.run_sharded_batch` drives either
interchangeably — and the results are identical to 1e-10 (tested).
"""

from __future__ import annotations

import multiprocessing
from multiprocessing import shared_memory
from typing import List, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.obs import counter, span
from repro.shard import block_engine
from repro.shard.partition import GraphPartition, ShardBlock

__all__ = ["ShardWorkerPool"]

#: One increment per pooled sweep — each is one halo exchange round
#: (workers gather their column beliefs from the shared front buffer).
HALO_EXCHANGES = counter(
    "repro_shard_halo_exchanges_total",
    "Halo-exchange rounds completed by the shard worker pool.")

#: Default shared-buffer capacity in stacked columns (q·k); 64 covers a
#: 16-query batch of 4-class couplings — the service's default max_batch.
DEFAULT_MAX_COLUMNS = 64

_STEP_TIMEOUT_SECONDS = 120.0


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting tracker ownership.

    Before Python 3.13, *attaching* to a segment registers it with the
    process's resource tracker just like creating it does, so worker
    attachments would either double-unlink the segments the pool owner
    manages (forked workers share the owner's tracker) or have spawned
    workers' trackers reclaim live segments at worker exit.  Python 3.13
    added ``track=False`` for exactly this; on older versions the
    registration is suppressed for the duration of the attach.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker
    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class ShardWorkerPool:
    """Executes shard sweeps on a pool of worker processes (one per shard).

    Parameters
    ----------
    partition:
        The :class:`GraphPartition` whose blocks the workers own.  Each
        worker receives its block once at startup (free under ``fork``,
        one pickle under ``spawn``) and keeps it for the pool's life.
    max_columns:
        Capacity of the shared belief buffers in stacked columns
        (``q·k``).  Batches wider than this raise
        :class:`~repro.exceptions.ValidationError` — callers fall back
        to the sequential executor.
    context:
        ``multiprocessing`` context or start-method name; defaults to
        the platform default (``fork`` on Linux).
    """

    def __init__(self, partition: GraphPartition,
                 max_columns: int = DEFAULT_MAX_COLUMNS,
                 context=None):
        if max_columns < 1:
            raise ValidationError("max_columns must be >= 1")
        self.partition = partition
        self.capacity = int(max_columns)
        self._plan: Optional[block_engine.ShardedPlan] = None
        self._width = 0
        self._num_queries = 0
        self._parity = 0
        self._closed = False
        n = partition.num_nodes
        p = partition.num_shards
        buffer_bytes = max(n * self.capacity * 8, 8)
        self._segments = {}
        self._connections: List = []
        self._workers: List = []
        try:
            for key, size in (("even", buffer_bytes), ("odd", buffer_bytes),
                              ("explicit", buffer_bytes),
                              ("residual", max(p * self.capacity * 8, 8))):
                self._segments[key] = shared_memory.SharedMemory(
                    create=True, size=size)
        except Exception:
            self.close()
            raise
        # Segments are sized for float64 (8 bytes per stacked column);
        # narrower dtypes view a prefix of the same bytes, so one pool
        # serves float64 and float32 batches without reallocation.  The
        # per-shard residual table stays float64 — it is tiny and the
        # convergence reduction should not lose width.
        self._num_nodes = n
        self._views = {}
        self._even, self._odd, self._explicit = self._dtype_views(np.float64)
        self._residuals = np.ndarray((p, self.capacity), dtype=np.float64,
                                     buffer=self._segments["residual"].buf)
        if context is None:
            context = multiprocessing.get_context()
        elif isinstance(context, str):
            context = multiprocessing.get_context(context)
        names = {key: segment.name
                 for key, segment in self._segments.items()}
        try:
            for block in partition.blocks:
                parent_end, child_end = context.Pipe()
                worker = context.Process(
                    target=_pool_worker, daemon=True,
                    args=(block, n, p, self.capacity, names, child_end))
                worker.start()
                child_end.close()
                self._connections.append(parent_end)
                self._workers.append(worker)
        except Exception:
            self.close()
            raise

    # ------------------------------------------------------------------ #
    # executor contract (same as SequentialShardExecutor)
    # ------------------------------------------------------------------ #
    def _dtype_views(self, dtype):
        """The (even, odd, explicit) buffer views for one element type."""
        dtype = np.dtype(dtype)
        views = self._views.get(dtype.name)
        if views is None:
            views = tuple(
                np.ndarray((self._num_nodes, self.capacity), dtype=dtype,
                           buffer=self._segments[key].buf)
                for key in ("even", "odd", "explicit"))
            self._views[dtype.name] = views
        return views

    def load(self, plan: block_engine.ShardedPlan,
             explicit_stack: np.ndarray,
             initial_stack: Optional[np.ndarray] = None) -> None:
        """Begin a new batch on the pool."""
        self._ensure_open()
        if plan.partition is not self.partition:
            raise ValidationError("plan was built for a different partition")
        width = int(explicit_stack.shape[1])
        if width > self.capacity:
            raise ValidationError(
                f"batch width {width} exceeds the pool capacity "
                f"{self.capacity} stacked columns; use a wider pool or the "
                f"sequential executor")
        self._plan = plan
        self._width = width
        self._num_queries = width // plan.num_classes
        self._parity = 0
        self._even, self._odd, self._explicit = self._dtype_views(plan.dtype)
        self._explicit[:, :width] = explicit_stack
        if initial_stack is None:
            self._even[:, :width] = 0.0
        else:
            self._even[:, :width] = initial_stack
        self._broadcast(("load", width, plan.num_classes,
                         plan.echo_cancellation, plan.dtype.name,
                         plan.residual.tobytes(),
                         plan.residual_squared.tobytes()))

    def step(self) -> np.ndarray:
        """One parallel sweep; returns the per-query maximum change."""
        self._ensure_open()
        if self._plan is None:
            raise ValidationError("load() a batch before stepping")
        with span("shard.halo_exchange", shards=len(self._connections)):
            self._broadcast(("step",))
        HALO_EXCHANGES.inc()
        self._parity ^= 1
        residuals = self._residuals[:, :self._num_queries]
        return residuals.max(axis=0) if residuals.size \
            else np.zeros(self._num_queries)

    def beliefs(self, query: int) -> np.ndarray:
        """Copy of the current ``n x k`` belief block of one query."""
        k = self._plan.num_classes
        front = self._even if self._parity == 0 else self._odd
        return front[:, query * k:(query + 1) * k].copy()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop the workers and release the shared segments (idempotent)."""
        if getattr(self, "_closed", False):
            return
        self._closed = True
        for connection in getattr(self, "_connections", []):
            try:
                connection.send(("stop",))
            except (OSError, ValueError):
                pass
        for worker in getattr(self, "_workers", []):
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - stuck worker
                worker.terminate()
                worker.join(timeout=5.0)
        for connection in getattr(self, "_connections", []):
            connection.close()
        # Drop the numpy views before closing the mappings (an exported
        # buffer keeps the mmap alive and SharedMemory.close would fail).
        self._even = self._odd = self._explicit = self._residuals = None
        self._views = {}
        for segment in getattr(self, "_segments", {}).values():
            try:
                segment.close()
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "ShardWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - best-effort safety net
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _ensure_open(self) -> None:
        if self._closed:
            raise ValidationError("the worker pool has been closed")

    def _broadcast(self, message: tuple) -> None:
        """Send one message to every worker and wait for all acks."""
        for connection in self._connections:
            connection.send(message)
        for index, connection in enumerate(self._connections):
            if not connection.poll(_STEP_TIMEOUT_SECONDS):
                self.close()
                raise RuntimeError(
                    f"shard worker {index} did not answer within "
                    f"{_STEP_TIMEOUT_SECONDS:.0f}s")
            try:
                reply = connection.recv()
            except (EOFError, ConnectionResetError, OSError):
                self.close()
                raise RuntimeError(f"shard worker {index} died unexpectedly")
            if reply[0] != "ok":
                self.close()
                raise RuntimeError(
                    f"shard worker {index} failed:\n{reply[1]}")


def _pool_worker(block: ShardBlock, num_nodes: int, num_shards: int,
                 capacity: int, names: dict, connection) -> None:
    """Worker process: attach the shared buffers, serve sweep messages."""
    import traceback

    segments = {key: _attach(name) for key, name in names.items()}
    views = {}

    def dtype_views(dtype):
        """Per-dtype (even, odd, explicit) views of the shared buffers."""
        triple = views.get(dtype.name)
        if triple is None:
            triple = tuple(
                np.ndarray((num_nodes, capacity), dtype=dtype,
                           buffer=segments[key].buf)
                for key in ("even", "odd", "explicit"))
            views[dtype.name] = triple
        return triple

    even, odd, explicit = dtype_views(np.dtype(np.float64))
    residuals = np.ndarray((num_shards, capacity), dtype=np.float64,
                           buffer=segments["residual"].buf)
    # The block arrives in float64; narrower batches use a lazily cast
    # shadow (index arrays shared), kept for the pool's lifetime.
    typed_blocks = {np.dtype(np.float64).name: block}
    local_block = block
    buffers = None
    width = num_classes = 0
    echo = True
    coupling = coupling_squared = None
    parity = 0
    try:
        while True:
            message = connection.recv()
            kind = message[0]
            try:
                if kind == "stop":
                    break
                if kind == "load":
                    (_, width, num_classes, echo, dtype_name,
                     h_bytes, h2_bytes) = message
                    dtype = np.dtype(dtype_name)
                    even, odd, explicit = dtype_views(dtype)
                    local_block = typed_blocks.get(dtype.name)
                    if local_block is None:
                        local_block = typed_blocks.setdefault(
                            dtype.name, block.astype(dtype))
                    coupling = np.frombuffer(h_bytes, dtype=dtype).reshape(
                        num_classes, num_classes)
                    coupling_squared = np.frombuffer(
                        h2_bytes, dtype=dtype).reshape(
                        num_classes, num_classes)
                    if buffers is None or buffers.width != width \
                            or buffers.dtype != dtype:
                        buffers = block_engine.ShardBuffers(
                            block, width, dtype=dtype)
                    buffers.load_explicit(local_block, explicit[:, :width])
                    parity = 0
                elif kind == "step":
                    front = even if parity == 0 else odd
                    back = odd if parity == 0 else even
                    changes = block_engine.shard_step(
                        local_block, buffers,
                        front[:, :width], back[:, :width],
                        coupling, coupling_squared, echo, num_classes)
                    residuals[block.shard_id, :changes.size] = changes
                    parity ^= 1
                else:  # pragma: no cover - protocol error
                    raise ValueError(f"unknown message {kind!r}")
                connection.send(("ok",))
            except Exception:  # pragma: no cover - surfaced to the driver
                connection.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # pragma: no cover
        pass
    finally:
        buffers = None
        even = odd = explicit = residuals = None
        views.clear()
        for segment in segments.values():
            segment.close()
        connection.close()
