"""Block-Jacobi LinBP sweeps over a partitioned graph.

The LinBP update (Eq. 6) for a row block ``s`` of the partition reads

    B̂_s ← Ê_s + A_s·(B̂ Ĥ) − diag(d_s)·(B̂_s Ĥ²)

where ``A_s`` is the shard's ``n_s x (n_s + h_s)`` local CSR block and
``B̂`` on the right-hand side is the *previous* sweep's beliefs of the
shard's columns (owned first, halo after).  Because every shard's rows
are complete, one synchronous pass over all shards computes exactly the
same update as the single-matrix iteration of
:func:`repro.engine.batch.run_batch` — the only difference is the
per-shard column ordering of the sparse accumulations, i.e. pure
floating-point round-off (≪ 1e-12; the equivalence tests assert 1e-10).

Three layers live here:

* :class:`ShardedPlan` — the per-``(partition, coupling, echo)`` bundle
  (shard blocks shared with the partition, contiguous Ĥ and Ĥ²),
  memoised by :func:`get_sharded_plan` in the engine's plan-cache style;
* :func:`shard_step` — one shard's update into caller-provided buffers,
  the kernel both executors run (in-process or in a worker process);
* :func:`run_sharded_batch` — the driver: per-shard residuals reduce to
  the same per-query stopping test as ``run_batch`` (each query
  converges when *every* shard's block change drops below tolerance),
  with identical freezing, history and iteration accounting.

Executors plug in via three methods — ``load``, ``step``, ``beliefs``
(see :class:`SequentialShardExecutor`, the in-process fallback used for
``p=1``, debugging and platforms without ``multiprocessing``;
:class:`repro.shard.pool.ShardWorkerPool` is the parallel one).
"""

from __future__ import annotations

import weakref
from typing import List, Optional, Sequence

import numpy as np

from repro.core.results import PropagationResult
from repro.coupling.matrices import CouplingMatrix
from repro.engine import backend as array_backend
from repro.engine import kernels
from repro.engine import plan as engine_plan
from repro.exceptions import NotConvergentParametersError, ValidationError
from repro.obs import counter, span
from repro.shard.partition import GraphPartition, ShardBlock

__all__ = ["ShardedPlan", "get_sharded_plan", "shard_step",
           "SequentialShardExecutor", "run_sharded_batch"]

#: Shares the series of :data:`repro.engine.batch.SWEEPS`.
SWEEPS = counter("repro_engine_sweeps_total",
                 "Propagation sweeps executed, by engine.")


class ShardedPlan:
    """Precomputed artifacts for block-Jacobi propagation on one partition.

    The partition is held only *weakly* — like
    :class:`repro.engine.plan.PropagationPlan` holds its graph — so a
    plan sitting in the bounded plan cache never pins a retired
    partition (whose shard blocks duplicate the adjacency) or its graph
    in memory.  Callers that run a plan always hold the partition
    themselves (a service snapshot, an executor, a local variable), so
    live plans are unaffected.  The plan adds the scaled coupling
    factors in the contiguous layout the kernels want, plus lazy access
    to the exact Lemma 8 convergence criterion (computed on the *global*
    plan — the block iteration is the same linear operator, so the
    criterion transfers verbatim).
    """

    def __init__(self, partition: GraphPartition, coupling: CouplingMatrix,
                 echo_cancellation: bool = True,
                 dtype=array_backend.DEFAULT_DTYPE):
        self._partition_ref = weakref.ref(partition)
        self.coupling = coupling
        self.echo_cancellation = bool(echo_cancellation)
        self.dtype: np.dtype = array_backend.canonical_dtype(dtype)
        self.residual: np.ndarray = np.ascontiguousarray(
            coupling.residual, dtype=self.dtype)
        self.residual_squared: np.ndarray = np.ascontiguousarray(
            coupling.residual_squared, dtype=self.dtype)
        # Non-default dtypes get shadow shard blocks (values cast, index
        # arrays shared with the partition), built lazily on first use.
        self._typed_blocks: Optional[List[ShardBlock]] = None

    @property
    def partition(self) -> Optional[GraphPartition]:
        """The partition this plan was built for (None once collected)."""
        return self._partition_ref()

    def _live_partition(self) -> GraphPartition:
        partition = self._partition_ref()
        if partition is None:
            raise ValidationError(
                "the partition this sharded plan was built for has been "
                "garbage collected; rebuild the plan with "
                "get_sharded_plan() on a live partition")
        return partition

    @property
    def blocks(self) -> List[ShardBlock]:
        """The partition's shard blocks, in the plan's dtype."""
        if self.dtype == np.float64:
            return self._live_partition().blocks
        if self._typed_blocks is None:
            self._typed_blocks = [block.astype(self.dtype)
                                  for block in self._live_partition().blocks]
        return self._typed_blocks

    @property
    def num_shards(self) -> int:
        """Number of shards ``p``."""
        return self._live_partition().num_shards

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._live_partition().num_nodes

    @property
    def num_classes(self) -> int:
        """Number of classes ``k``."""
        return self.residual.shape[0]

    @property
    def method_name(self) -> str:
        """``"LinBP"`` or ``"LinBP*"`` depending on echo cancellation."""
        return "LinBP" if self.echo_cancellation else "LinBP*"

    def is_exactly_convergent(self) -> bool:
        """Exact Lemma 8 criterion, delegated to the global plan.

        The sharded sweep applies the same update matrix as the
        single-matrix iteration, so convergence is governed by the same
        spectral radius; the global plan (cached by the engine) computes
        and memoises it.
        """
        return engine_plan.get_plan(
            self._live_partition().graph, self.coupling,
            echo_cancellation=self.echo_cancellation).is_exactly_convergent()

    def check_explicit(self, explicit_residuals: np.ndarray) -> np.ndarray:
        """Validate one ``n x k`` explicit-belief matrix against the plan."""
        explicit = np.asarray(explicit_residuals, dtype=self.dtype)
        if explicit.ndim != 2:
            raise ValidationError("explicit beliefs must be a 2-D matrix")
        if explicit.shape != (self.num_nodes, self.num_classes):
            raise ValidationError(
                f"expected a {self.num_nodes} x {self.num_classes} explicit "
                f"matrix, got {explicit.shape[0]} x {explicit.shape[1]}")
        return explicit


_sharded_plan_cache = engine_plan.GraphKeyedCache(engine_plan.PLAN_CACHE_SIZE)
engine_plan.register_auxiliary_cache(
    _sharded_plan_cache.clear,
    lambda: {"shard_size": len(_sharded_plan_cache),
             "shard_hits": _sharded_plan_cache.stats["hits"],
             "shard_misses": _sharded_plan_cache.stats["misses"]})


def get_sharded_plan(partition: GraphPartition, coupling: CouplingMatrix,
                     echo_cancellation: bool = True,
                     dtype=array_backend.DEFAULT_DTYPE) -> ShardedPlan:
    """Return the (cached) sharded plan for a partition and coupling.

    Keyed like :func:`repro.engine.plan.get_plan` — graph identity plus
    coupling values plus the echo flag plus the canonical dtype — with
    the partition's identity added, so repartitioning the same graph
    (or asking for a float32 plan next to a float64 one) yields a fresh
    plan.
    """
    key_suffix = (id(partition), bool(echo_cancellation),
                  array_backend.dtype_name(dtype)) \
        + engine_plan.coupling_key(coupling)
    plan = _sharded_plan_cache.lookup(partition.graph, key_suffix)
    if plan is None or plan.partition is not partition:
        with span("engine.plan_build", kind="sharded",
                  shards=partition.num_shards):
            plan = ShardedPlan(partition, coupling,
                               echo_cancellation=echo_cancellation,
                               dtype=dtype)
        engine_plan.PLAN_BUILDS.inc(kind="sharded")
        _sharded_plan_cache.store(partition.graph, key_suffix, plan)
    else:
        engine_plan.PLAN_CACHE_HITS.inc(kind="sharded")
    return plan


# ---------------------------------------------------------------------- #
# the per-shard kernel
# ---------------------------------------------------------------------- #
class ShardBuffers:
    """Per-shard working memory for :func:`shard_step` (allocated once).

    ``gather`` holds the shard's column beliefs (owned + halo) pulled
    from the global front buffer — the halo exchange; ``explicit`` the
    shard's rows of the stacked Ê block; ``out`` the new owned beliefs;
    ``scratch`` the coupling products.
    """

    def __init__(self, block: ShardBlock, width: int,
                 dtype=array_backend.DEFAULT_DTYPE):
        self.width = int(width)
        self.dtype = array_backend.canonical_dtype(dtype)
        columns = block.column_nodes.size
        self.gather = np.empty((columns, width), dtype=self.dtype)
        self.scratch = np.empty((columns, width), dtype=self.dtype)
        self.out = np.empty((block.num_nodes, width), dtype=self.dtype)
        self.scratch_own = np.empty((block.num_nodes, width),
                                    dtype=self.dtype)
        self.explicit = np.empty((block.num_nodes, width), dtype=self.dtype)

    def load_explicit(self, block: ShardBlock, explicit_stack: np.ndarray
                      ) -> None:
        """Pull the shard's rows of the stacked explicit block."""
        np.take(explicit_stack, block.nodes, axis=0, out=self.explicit)


def shard_step(block: ShardBlock, buffers: ShardBuffers, front: np.ndarray,
               back: np.ndarray, residual: np.ndarray,
               residual_squared: np.ndarray, echo_cancellation: bool,
               num_classes: int) -> np.ndarray:
    """One block-Jacobi update of a single shard, in place.

    Reads the previous beliefs of the shard's columns from ``front``
    (the halo exchange is this gather), writes the new owned beliefs
    into ``back`` and returns the shard's per-query maximum absolute
    change — the local residual the convergence reduction combines.
    """
    if block.num_nodes == 0:
        return np.zeros(buffers.width // num_classes, dtype=buffers.dtype)
    np.take(front, block.column_nodes, axis=0, out=buffers.gather)
    kernels.block_matmul(buffers.gather, residual, out=buffers.scratch,
                         num_classes=num_classes)
    np.copyto(buffers.out, buffers.explicit)
    kernels.spmm(block.adjacency, buffers.scratch, out=buffers.out,
                 accumulate=True)
    own_front = buffers.gather[:block.num_nodes]
    if echo_cancellation:
        kernels.block_matmul(own_front, residual_squared,
                             out=buffers.scratch_own,
                             num_classes=num_classes)
        kernels.scale_rows(block.degrees, buffers.scratch_own,
                           out=buffers.scratch_own)
        np.subtract(buffers.out, buffers.scratch_own, out=buffers.out)
    changes = kernels.max_abs_change_per_query(
        buffers.out, own_front, buffers.scratch_own,
        num_classes=num_classes)
    back[block.nodes] = buffers.out
    return changes


# ---------------------------------------------------------------------- #
# the in-process executor
# ---------------------------------------------------------------------- #
class SequentialShardExecutor:
    """Run every shard in-process, one after another.

    The fallback executor: same sweep semantics as the worker pool
    (synchronous block-Jacobi, per-shard residuals) without processes or
    shared memory — the right choice for ``p=1``, for debugging, and on
    platforms where ``multiprocessing`` is unavailable.  Reusable across
    batches of the same width via repeated :meth:`load`.
    """

    def __init__(self, partition: GraphPartition):
        self.partition = partition
        self._plan: Optional[ShardedPlan] = None
        self._front: Optional[np.ndarray] = None
        self._back: Optional[np.ndarray] = None
        self._buffers: List[ShardBuffers] = []
        self._width = -1
        self._dtype: Optional[np.dtype] = None

    def load(self, plan: ShardedPlan, explicit_stack: np.ndarray,
             initial_stack: Optional[np.ndarray] = None) -> None:
        """Begin a new batch: stacked Ê block and optional start beliefs."""
        if plan.partition is not self.partition:
            raise ValidationError(
                "plan was built for a different partition")
        width = explicit_stack.shape[1]
        if width != self._width or plan.dtype != self._dtype:
            self._front = np.empty((plan.num_nodes, width), dtype=plan.dtype)
            self._back = np.empty((plan.num_nodes, width), dtype=plan.dtype)
            self._buffers = [ShardBuffers(block, width, dtype=plan.dtype)
                             for block in plan.blocks]
            self._width = width
            self._dtype = plan.dtype
        self._plan = plan
        if initial_stack is None:
            self._front[...] = 0.0
        else:
            np.copyto(self._front, initial_stack)
        for block, buffers in zip(plan.blocks, self._buffers):
            buffers.load_explicit(block, explicit_stack)

    def step(self) -> np.ndarray:
        """One synchronous sweep over all shards; per-query max change."""
        plan = self._plan
        k = plan.num_classes
        changes = np.zeros(self._width // k, dtype=plan.dtype)
        for block, buffers in zip(plan.blocks, self._buffers):
            local = shard_step(block, buffers, self._front, self._back,
                               plan.residual, plan.residual_squared,
                               plan.echo_cancellation, k)
            np.maximum(changes, local, out=changes)
        self._front, self._back = self._back, self._front
        return changes

    def beliefs(self, query: int) -> np.ndarray:
        """Copy of the current ``n x k`` belief block of one query."""
        k = self._plan.num_classes
        return self._front[:, query * k:(query + 1) * k].copy()

    def close(self) -> None:
        """Release buffers (symmetry with the worker pool; no-op-ish)."""
        self._front = self._back = None
        self._buffers = []
        self._width = -1
        self._dtype = None

    def __enter__(self) -> "SequentialShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# the driver
# ---------------------------------------------------------------------- #
def run_sharded_batch(plan: ShardedPlan,
                      explicit_list: Sequence[np.ndarray],
                      initial_beliefs: Optional[Sequence[Optional[np.ndarray]]]
                      = None,
                      max_iterations: int = 100, tolerance: float = 1e-10,
                      num_iterations: Optional[int] = None,
                      require_convergence: bool = False,
                      executor=None) -> List[PropagationResult]:
    """Propagate a batch of queries with block-Jacobi sweeps over shards.

    Mirrors :func:`repro.engine.batch.run_batch` — same stopping rules,
    per-query freezing, histories and result metadata — but executes the
    update as per-shard block sweeps with halo exchange, through
    ``executor`` (a :class:`SequentialShardExecutor` is created when none
    is given; pass a :class:`repro.shard.pool.ShardWorkerPool` to run
    shards in parallel processes).  Beliefs agree with the single-matrix
    iteration to floating-point round-off (equivalence-tested at 1e-10).
    """
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")
    if tolerance <= 0:
        raise ValidationError("tolerance must be positive")
    if len(explicit_list) == 0:
        return []
    if require_convergence and not plan.is_exactly_convergent():
        raise NotConvergentParametersError(
            f"{plan.method_name} does not converge for this coupling scale "
            f"(Lemma 8); reduce epsilon")
    q, k = len(explicit_list), plan.num_classes
    checked = [plan.check_explicit(explicit) for explicit in explicit_list]
    explicit_stack = np.concatenate(checked, axis=1) if plan.num_nodes \
        else np.zeros((0, q * k), dtype=plan.dtype)
    initial_stack = None
    if initial_beliefs is not None:
        initial_stack = np.zeros_like(explicit_stack)
        for query, start in enumerate(initial_beliefs):
            if start is None:
                continue
            start = np.asarray(start, dtype=plan.dtype)
            if start.shape != checked[query].shape:
                raise ValidationError(
                    "initial beliefs must have the same shape as Ê")
            initial_stack[:, query * k:(query + 1) * k] = start
    owns_executor = executor is None
    if owns_executor:
        executor = SequentialShardExecutor(plan._live_partition())
    try:
        executor.load(plan, explicit_stack, initial_stack)
        fixed_iterations = num_iterations is not None
        budget = num_iterations if fixed_iterations else max_iterations
        histories: List[List[float]] = [[] for _ in range(q)]
        iterations = np.zeros(q, dtype=int)
        converged = np.zeros(q, dtype=bool)
        frozen: List[Optional[np.ndarray]] = [None] * q
        sweeps_run = 0
        for _ in range(budget):
            if not fixed_iterations and converged.all():
                break
            with span("shard.sweep", shards=plan.num_shards,
                      queries=q) as sweep:
                changes = executor.step()
                sweep.set_tag("residual", float(changes.max()))
            sweeps_run += 1
            for query in np.nonzero(~converged)[0]:
                iterations[query] += 1
                histories[query].append(float(changes[query]))
                if not fixed_iterations and changes[query] < tolerance:
                    converged[query] = True
                    # Freeze at the sweep that converged: later sweeps
                    # keep the remaining queries moving, this one's
                    # beliefs are already final.
                    frozen[query] = executor.beliefs(query)
        if sweeps_run:
            SWEEPS.inc(sweeps_run, engine="shard")
        results: List[PropagationResult] = []
        for query in range(q):
            beliefs = frozen[query] if frozen[query] is not None \
                else executor.beliefs(query)
            history = histories[query]
            done = bool(converged[query]) if not fixed_iterations \
                else bool(history and history[-1] < tolerance)
            results.append(PropagationResult(
                beliefs=beliefs,
                method=plan.method_name,
                iterations=int(iterations[query]),
                converged=done,
                residual_history=history,
                extra={"echo_cancellation": plan.echo_cancellation,
                       "epsilon": plan.coupling.epsilon,
                       "engine": "shard",
                       "num_shards": plan.num_shards,
                       "dtype": plan.dtype.name,
                       "batch_size": q},
            ))
        return results
    finally:
        if owns_executor:
            executor.close()
