"""Sharded propagation: partition the graph, sweep blocks, pool workers.

The scaling step beyond one CSR matrix (ROADMAP north star): split the
graph into ``p`` row blocks with halo maps
(:mod:`repro.shard.partition`), run LinBP as synchronous block-Jacobi
sweeps that are equivalent to the single-matrix iteration to 1e-10
(:mod:`repro.shard.block_engine`), and execute the shards on a
``multiprocessing`` pool whose halo exchange rides ``shared_memory``
belief buffers with zero copies (:mod:`repro.shard.pool`).

Entry points: :func:`partition_graph` → :func:`get_sharded_plan` →
:func:`run_sharded_batch` (optionally with a :class:`ShardWorkerPool`
executor); the service layer wires these behind
``PropagationService(shards=p)``, and the CLI exposes
``repro partition`` and ``repro label --shards``.

Edge mutations repair instead of rebuilding:
:func:`repair_partition` (:mod:`repro.shard.repair`) rebuilds only the
row blocks and halo maps of the shards an edge delta touched — identical
to a from-scratch ``partition_from_assignment`` on the successor graph —
and :func:`cut_drift` measures how far the repaired cut has degraded
from the last full partition, the signal the service layer uses to
schedule a background re-partition.
"""

from repro.shard.block_engine import (
    SequentialShardExecutor,
    ShardedPlan,
    get_sharded_plan,
    run_sharded_batch,
)
from repro.shard.partition import (
    GraphPartition,
    PartitionStats,
    ShardBlock,
    bfs_assignment,
    hash_assignment,
    partition_from_assignment,
    partition_graph,
)
from repro.shard.pool import ShardWorkerPool
from repro.shard.repair import RepairResult, cut_drift, repair_partition

__all__ = [
    "GraphPartition",
    "PartitionStats",
    "ShardBlock",
    "bfs_assignment",
    "hash_assignment",
    "partition_from_assignment",
    "partition_graph",
    "RepairResult",
    "repair_partition",
    "cut_drift",
    "ShardedPlan",
    "get_sharded_plan",
    "run_sharded_batch",
    "SequentialShardExecutor",
    "ShardWorkerPool",
]
