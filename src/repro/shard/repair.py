"""Incremental partition repair for edge deltas.

A full :func:`~repro.shard.partition.partition_graph` on every edge
mutation re-runs the BFS grower and rebuilds all ``p`` shard blocks —
O(n + m) work for a delta that touched a handful of rows.  This module
repairs instead: adding edge ``(u, v)`` to the graph changes exactly two
rows of the adjacency (``u`` and ``v``) and two entries of the degree
vector, so under an *unchanged* node→shard assignment only the shards
owning ``u`` or ``v`` can see any difference — their row blocks and halo
maps are rebuilt from the successor graph, every other
:class:`~repro.shard.partition.ShardBlock` is carried over verbatim
(blocks own their data, nothing aliases the old graph's CSR arrays).

The repaired partition is **identical** — same assignment, equal blocks
— to ``partition_from_assignment(new_graph, old_assignment)``, and any
valid partition yields block-Jacobi sweeps equal to the single-matrix
iteration to 1e-10 (the invariant of :mod:`repro.shard.block_engine`,
property-tested over random edge-delta chains in
``tests/property/test_property_repartition.py``).  What repair does *not*
do is re-optimise: edges keep landing across whatever cut the original
BFS grower chose, so the cut fraction drifts upward over a long delta
chain.  :func:`cut_drift` measures that drift against the
:class:`~repro.shard.partition.PartitionStats` captured at the last full
partition; the service layer schedules a background full re-partition
once it crosses a threshold (see
:class:`~repro.service.service.PropagationService`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Edge, Graph
from repro.shard.partition import (
    GraphPartition,
    PartitionStats,
    build_shard_block,
    partition_from_assignment,
)

__all__ = ["RepairResult", "repair_partition", "cut_drift"]


@dataclass(frozen=True)
class RepairResult:
    """Outcome of one incremental repair.

    ``partition`` is the repaired partition of the successor graph;
    ``repaired_shards`` names the shards whose blocks were rebuilt (all
    others were carried over untouched) — the quantity that makes the
    saving observable in tests and service stats.
    """

    partition: GraphPartition
    repaired_shards: Tuple[int, ...]


def _edge_endpoints(new_edges: Sequence[Union[Tuple, Edge]],
                    num_nodes: int) -> np.ndarray:
    """All endpoint node ids of an edge delta, validated against range."""
    endpoints = []
    for edge in new_edges:
        if isinstance(edge, Edge):
            endpoints.append(edge.source)
            endpoints.append(edge.target)
        else:
            if len(edge) not in (2, 3):
                raise ValidationError(
                    f"edges must be (source, target[, weight]) tuples, "
                    f"got {edge!r}")
            endpoints.append(edge[0])
            endpoints.append(edge[1])
    ids = np.asarray(endpoints, dtype=np.int64)
    if ids.size and (ids.min() < 0 or ids.max() >= num_nodes):
        raise ValidationError(
            f"edge endpoints must lie in [0, {num_nodes})")
    return ids


def repair_partition(partition: GraphPartition, new_graph: Graph,
                     new_edges: Sequence[Union[Tuple, Edge]]) -> RepairResult:
    """Repartition ``new_graph`` by repairing ``partition`` in place of a rebuild.

    ``new_graph`` must be the successor of ``partition.graph`` under
    exactly ``new_edges`` (the delta handed to
    :meth:`~repro.graphs.graph.Graph.with_edges_added`): same node set,
    adjacency differing only in the rows of the delta's endpoints.  The
    assignment vector is kept; only the blocks of shards owning an
    endpoint are rebuilt.  Equivalent to
    ``partition_from_assignment(new_graph, partition.assignment)`` —
    block for block — at a cost proportional to the touched shards.
    """
    old_graph = partition.graph
    if new_graph.num_nodes != old_graph.num_nodes:
        raise ValidationError(
            f"incremental repair needs an unchanged node set: partition "
            f"has {old_graph.num_nodes} nodes, successor graph has "
            f"{new_graph.num_nodes}")
    if not new_edges:
        raise ValidationError("repair_partition needs a non-empty edge delta")
    endpoints = _edge_endpoints(new_edges, new_graph.num_nodes)
    assignment = partition.assignment
    affected = np.unique(assignment[endpoints])
    adjacency = new_graph.adjacency
    if adjacency.dtype != np.float64:
        adjacency = adjacency.astype(np.float64)
    degrees = new_graph.degree_vector()
    blocks = list(partition.blocks)
    for shard in affected:
        blocks[int(shard)] = build_shard_block(
            new_graph, assignment, int(shard),
            adjacency=adjacency, degrees=degrees)
    repaired = GraphPartition(new_graph, assignment, blocks,
                              method=partition.method)
    return RepairResult(partition=repaired,
                        repaired_shards=tuple(int(s) for s in affected))


def cut_drift(baseline: PartitionStats, current: PartitionStats) -> float:
    """How much worse the cut got since the last full partition.

    The increase in cut fraction (cross-shard edges over all edges)
    relative to ``baseline`` — 0.0 when the repaired cut is no worse.
    A *fraction*-based measure self-normalises over growing graphs: a
    delta chain that doubles the edge count without crossing shards
    drifts 0, one that lands every new edge on the cut drifts toward
    ``1 - baseline.cut_fraction``.
    """
    return max(0.0, current.cut_fraction - baseline.cut_fraction)


def full_repartition_equivalent(partition: GraphPartition) -> GraphPartition:
    """The from-scratch partition the repaired one must equal (test hook)."""
    return partition_from_assignment(partition.graph, partition.assignment,
                                     partition.num_shards,
                                     method=partition.method)
