"""Optional adapters between :class:`repro.graphs.Graph` and NetworkX.

NetworkX is not a runtime dependency of the library (the algorithms only need
``scipy.sparse``), but downstream users frequently hold their networks as
``networkx.Graph`` objects.  These converters bridge the two representations:

* :func:`from_networkx` — import an undirected NetworkX graph (node labels of
  any hashable type; an explicit node ordering can be supplied);
* :func:`to_networkx` — export a :class:`~repro.graphs.graph.Graph`, keeping
  edge weights and the optional node names.

The module imports NetworkX lazily so that ``import repro`` keeps working in
environments without it; calling either function without NetworkX installed
raises a clear error.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as error:  # pragma: no cover - depends on environment
        raise ImportError(
            "networkx is required for the graph adapters; install it with "
            "'pip install repro[graphs]' or 'pip install networkx'") from error
    return networkx


def from_networkx(nx_graph, node_order: Optional[Sequence[Hashable]] = None,
                  weight_attribute: str = "weight") -> Tuple[Graph, Dict[Hashable, int]]:
    """Convert an undirected NetworkX graph.

    Parameters
    ----------
    nx_graph:
        A ``networkx.Graph`` (directed graphs are rejected — the paper's
        algorithms assume undirected networks).
    node_order:
        Optional explicit ordering of the NetworkX node labels; defaults to
        the graph's iteration order.  The returned mapping translates original
        labels to the integer ids used by :class:`Graph`.
    weight_attribute:
        Edge-attribute name holding the weight (missing attributes mean 1.0).

    Returns
    -------
    (graph, node_index):
        The converted graph and the label -> integer-id mapping.
    """
    networkx = _require_networkx()
    if isinstance(nx_graph, (networkx.DiGraph, networkx.MultiDiGraph)):
        raise ValidationError("directed NetworkX graphs are not supported; "
                              "convert to an undirected graph first")
    labels: List[Hashable] = list(node_order) if node_order is not None \
        else list(nx_graph.nodes())
    if node_order is not None:
        missing = set(nx_graph.nodes()) - set(labels)
        if missing:
            raise ValidationError(f"node_order is missing nodes: {sorted(map(str, missing))}")
        if len(set(labels)) != len(labels):
            raise ValidationError("node_order contains duplicate labels")
    node_index: Dict[Hashable, int] = {label: index for index, label in enumerate(labels)}
    edges = []
    for source, target, attributes in nx_graph.edges(data=True):
        if source == target:
            continue  # the paper's graphs have no self-loops
        weight = float(attributes.get(weight_attribute, 1.0))
        edges.append((node_index[source], node_index[target], weight))
    node_names = [str(label) for label in labels]
    graph = Graph.from_edges(edges, num_nodes=len(labels), node_names=node_names)
    return graph, node_index


def to_networkx(graph: Graph, weight_attribute: str = "weight"):
    """Convert a :class:`Graph` into a ``networkx.Graph``.

    Node identifiers are the integer ids; each node gets a ``name`` attribute
    when the source graph carries node names, and each edge carries its
    weight under ``weight_attribute``.
    """
    networkx = _require_networkx()
    nx_graph = networkx.Graph()
    names = graph.node_names
    for node in range(graph.num_nodes):
        if names is not None:
            nx_graph.add_node(node, name=names[node])
        else:
            nx_graph.add_node(node)
    for edge in graph.edges():
        nx_graph.add_edge(edge.source, edge.target, **{weight_attribute: edge.weight})
    return nx_graph
