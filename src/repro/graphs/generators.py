"""Graph generators used by the paper's experiments and examples.

The evaluation section of the paper uses two families of graphs:

* **Kronecker graphs** (Leskovec et al. [28]) of growing size (Fig. 6a):
  starting from a small initiator matrix, the adjacency matrix is obtained by
  repeated Kronecker products.  The paper's suite grows by roughly a factor of
  three in nodes and four in edges per step, which matches a 3x3 initiator.
* **A small torus graph** with 8 nodes (Fig. 5c, taken from Weiss [45]) used
  for the detailed convergence example (Example 20, Fig. 4).

In addition this module provides the 7-node example graph of Fig. 5a/b used to
illustrate SBP's geodesic semantics, and a few generic generators (grid, ring,
star, complete, random) that the tests and examples rely on.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = [
    "kronecker_graph",
    "paper_kronecker_initiator",
    "torus_graph",
    "sbp_example_graph",
    "grid_graph",
    "ring_graph",
    "star_graph",
    "complete_graph",
    "random_graph",
    "chain_graph",
    "binary_tree_graph",
]


def paper_kronecker_initiator() -> np.ndarray:
    """The 3x3 stochastic-Kronecker initiator used for the synthetic suite.

    The paper's graphs (Fig. 6a) grow from 243 nodes / 1 024 edge-entries to
    1.6 M nodes / 67 M edge-entries: nodes triple and edge entries quadruple
    with every Kronecker power, which corresponds to a 3x3 initiator whose
    entries sum to 4 (the paper counts both directions of every edge).  The
    concrete probabilities below follow the common core-periphery shape used
    in the Kronecker-graph literature.
    """
    return np.array([
        [0.90, 0.60, 0.20],
        [0.60, 0.35, 0.30],
        [0.20, 0.30, 0.55],
    ])


def kronecker_graph(power: int, initiator: Optional[np.ndarray] = None,
                    seed: int = 0, deterministic_expected_edges: bool = True) -> Graph:
    """Generate a stochastic Kronecker graph.

    Parameters
    ----------
    power:
        Number of Kronecker powers of the initiator.  The resulting graph has
        ``m**power`` nodes for an ``m x m`` initiator (243, 729, 2 187, ... for
        the default 3x3 initiator, matching Fig. 6a).
    initiator:
        Square matrix of edge probabilities in ``[0, 1]``; defaults to
        :func:`paper_kronecker_initiator`.
    seed:
        Seed for the Bernoulli edge draws.
    deterministic_expected_edges:
        When true, edges are drawn so that the *expected* number of edges is
        respected using one uniform draw per candidate cell of the (sparse)
        probability structure, computed recursively without materialising the
        full dense probability matrix for large powers.

    Notes
    -----
    For tractability we materialise the probability matrix only up to
    ``power <= 8`` with the 3x3 initiator (6 561 nodes dense is fine; above
    that we sample edges region-by-region using the recursive structure).
    """
    if power < 1:
        raise ValidationError("power must be >= 1")
    init = paper_kronecker_initiator() if initiator is None else np.asarray(initiator, float)
    if init.ndim != 2 or init.shape[0] != init.shape[1]:
        raise ValidationError("initiator must be a square matrix")
    if np.any(init < 0) or np.any(init > 1):
        raise ValidationError("initiator entries must be probabilities in [0, 1]")
    if not np.allclose(init, init.T):
        raise ValidationError("initiator must be symmetric for undirected graphs")
    m = init.shape[0]
    n = m ** power
    rng = np.random.default_rng(seed)
    if n <= 6_561:
        probabilities = init.copy()
        for _ in range(power - 1):
            probabilities = np.kron(probabilities, init)
        # sample the upper triangle only, then mirror
        upper = np.triu(rng.random((n, n)) < probabilities, k=1)
        rows, cols = np.nonzero(upper)
        edges = list(zip(rows.tolist(), cols.tolist()))
        return Graph.from_edges(edges, num_nodes=n)
    return _sample_large_kronecker(init, power, rng)


def _sample_large_kronecker(initiator: np.ndarray, power: int,
                            rng: np.random.Generator) -> Graph:
    """Sample a large Kronecker graph by per-edge placement (ball dropping).

    Instead of materialising the full probability matrix, we draw the expected
    total number of edges and place each edge by descending ``power`` levels of
    the initiator, choosing a cell at each level proportionally to the
    initiator probabilities.  This is the standard fast generator used by the
    Kronecker-graph literature and preserves expected degree structure.
    """
    m = initiator.shape[0]
    n = m ** power
    total_probability = float(initiator.sum()) ** power
    expected_edges = int(round(total_probability / 2.0))
    cell_probabilities = (initiator / initiator.sum()).ravel()
    cells = np.arange(m * m)
    edge_set = set()
    # Oversample slightly to compensate for duplicates and self-loops.
    attempts = int(expected_edges * 1.2) + 10
    choices = rng.choice(cells, size=(attempts, power), p=cell_probabilities)
    row_digits = choices // m
    col_digits = choices % m
    powers_of_m = m ** np.arange(power - 1, -1, -1)
    rows = (row_digits * powers_of_m).sum(axis=1)
    cols = (col_digits * powers_of_m).sum(axis=1)
    for source, target in zip(rows.tolist(), cols.tolist()):
        if source == target:
            continue
        key = (source, target) if source < target else (target, source)
        edge_set.add(key)
        if len(edge_set) >= expected_edges:
            break
    return Graph.from_edges(sorted(edge_set), num_nodes=n)


def torus_graph() -> Graph:
    """The 8-node torus graph of Fig. 5c (Example 20, taken from Weiss [45]).

    The graph is drawn as two concentric squares: the inner nodes ``v5..v8``
    form a 4-cycle, and every outer node ``v1..v4`` hangs off its inner
    counterpart with a single spoke (``v1-v5``, ``v2-v6``, ``v3-v7``,
    ``v4-v8``).  We use 0-based ids, so paper node ``v_i`` is node ``i-1``
    here; the node names carry the paper's labels for readability.

    This structure reproduces every quantitative fact of Example 20:

    * node v4 has geodesic number 3 with exactly two shortest paths from
      explicitly labeled nodes, ``v1 -> v5 -> v8 -> v4`` and
      ``v3 -> v7 -> v8 -> v4`` (node v2 is four hops away and contributes
      nothing to the SBP limit);
    * the spectral radius is ``rho(A) = 1 + sqrt(2) ~= 2.414`` as quoted in
      the example.
    """
    edges = [
        # inner cycle v5-v6-v7-v8-v5
        (4, 5), (5, 6), (6, 7), (7, 4),
        # spokes v1-v5, v2-v6, v3-v7, v4-v8
        (0, 4), (1, 5), (2, 6), (3, 7),
    ]
    names = [f"v{i + 1}" for i in range(8)]
    return Graph.from_edges(edges, num_nodes=8, node_names=names)


def sbp_example_graph() -> Graph:
    """The 7-node example graph of Fig. 5a/5b (Examples 16 and 18).

    Node ``v1`` (index 0) has geodesic number 2: the nearest explicitly
    labeled nodes are ``v2`` and ``v7``, both two hops away, reached via three
    shortest paths (two through ``v3``/``v4`` from ``v2`` and one from ``v7``).
    The adjacency matrix below is exactly the matrix ``A`` printed in
    Example 18.
    """
    adjacency = np.array([
        [0, 0, 1, 1, 0, 0, 0],
        [0, 0, 1, 1, 0, 0, 0],
        [1, 1, 0, 0, 0, 0, 1],
        [1, 1, 0, 0, 1, 0, 0],
        [0, 0, 0, 1, 0, 1, 0],
        [0, 0, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 0],
    ], dtype=float)
    names = [f"v{i + 1}" for i in range(7)]
    return Graph(adjacency, node_names=names)


def grid_graph(rows: int, cols: int, periodic: bool = False) -> Graph:
    """A ``rows x cols`` lattice; ``periodic=True`` wraps both dimensions."""
    if rows < 1 or cols < 1:
        raise ValidationError("grid dimensions must be positive")
    edges: List[Tuple[int, int]] = []

    def node_id(r: int, c: int) -> int:
        return r * cols + c

    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append((node_id(r, c), node_id(r, c + 1)))
            elif periodic and cols > 2:
                edges.append((node_id(r, c), node_id(r, 0)))
            if r + 1 < rows:
                edges.append((node_id(r, c), node_id(r + 1, c)))
            elif periodic and rows > 2:
                edges.append((node_id(r, c), node_id(0, c)))
    return Graph.from_edges(edges, num_nodes=rows * cols)


def ring_graph(num_nodes: int) -> Graph:
    """A simple cycle of ``num_nodes`` >= 3 nodes."""
    if num_nodes < 3:
        raise ValidationError("a ring needs at least 3 nodes")
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    return Graph.from_edges(edges, num_nodes=num_nodes)


def chain_graph(num_nodes: int) -> Graph:
    """A path graph 0 - 1 - ... - (num_nodes-1)."""
    if num_nodes < 1:
        raise ValidationError("a chain needs at least 1 node")
    edges = [(i, i + 1) for i in range(num_nodes - 1)]
    return Graph.from_edges(edges, num_nodes=num_nodes)


def star_graph(num_leaves: int) -> Graph:
    """A star with node 0 at the centre and ``num_leaves`` leaves."""
    if num_leaves < 1:
        raise ValidationError("a star needs at least 1 leaf")
    edges = [(0, i) for i in range(1, num_leaves + 1)]
    return Graph.from_edges(edges, num_nodes=num_leaves + 1)


def complete_graph(num_nodes: int) -> Graph:
    """The complete graph on ``num_nodes`` nodes."""
    if num_nodes < 2:
        raise ValidationError("a complete graph needs at least 2 nodes")
    edges = [(i, j) for i in range(num_nodes) for j in range(i + 1, num_nodes)]
    return Graph.from_edges(edges, num_nodes=num_nodes)


def binary_tree_graph(depth: int) -> Graph:
    """A complete binary tree of the given depth (depth 0 = a single node)."""
    if depth < 0:
        raise ValidationError("depth must be non-negative")
    num_nodes = 2 ** (depth + 1) - 1
    edges = []
    for node in range(1, num_nodes):
        edges.append(((node - 1) // 2, node))
    if not edges:
        return Graph.empty(1)
    return Graph.from_edges(edges, num_nodes=num_nodes)


def random_graph(num_nodes: int, edge_probability: float, seed: int = 0,
                 weighted: bool = False,
                 weight_range: Tuple[float, float] = (0.5, 2.0)) -> Graph:
    """An Erdős–Rényi ``G(n, p)`` graph, optionally with uniform random weights."""
    if num_nodes < 1:
        raise ValidationError("num_nodes must be positive")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValidationError("edge_probability must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((num_nodes, num_nodes)) < edge_probability, k=1)
    rows, cols = np.nonzero(upper)
    if weighted:
        low, high = weight_range
        weights = rng.uniform(low, high, size=rows.size)
        edges = list(zip(rows.tolist(), cols.tolist(), weights.tolist()))
    else:
        edges = list(zip(rows.tolist(), cols.tolist()))
    return Graph.from_edges(edges, num_nodes=num_nodes)
