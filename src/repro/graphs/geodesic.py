"""Geodesic numbers and the modified adjacency matrix used by SBP.

Single-pass BP (Section 6 of the paper) assigns to every node ``t`` its
*geodesic number* ``g_t`` — the length of the shortest path to any node with
explicit beliefs (Definition 14) — and then propagates beliefs only along
edges that go from a node with geodesic number ``g`` to a node with geodesic
number ``g + 1``.  Lemma 17 shows this is equivalent to running LinBP over a
*modified adjacency matrix* ``A*`` in which

* edges between nodes with the same geodesic number are removed, and
* the remaining edges keep only the direction from lower to higher geodesic
  number (so ``A*`` is a DAG).

This module computes geodesic numbers with a multi-source BFS, builds ``A*``,
and exposes the per-level "frontier" structure that both the matrix SBP
implementation and the relational Algorithm 2 iterate over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = [
    "UNREACHABLE",
    "geodesic_numbers",
    "GeodesicLevels",
    "geodesic_levels",
    "modified_adjacency",
    "shortest_path_weights",
]

#: Geodesic number assigned to nodes that cannot reach any labeled node.
UNREACHABLE = -1


def geodesic_numbers(graph: Graph, labeled_nodes: Iterable[int]) -> np.ndarray:
    """Multi-source BFS distances from the set of explicitly labeled nodes.

    Returns an integer array of length ``n`` where labeled nodes have value 0,
    nodes at distance ``g`` have value ``g``, and nodes in components without
    any labeled node have value :data:`UNREACHABLE`.

    Edge weights are ignored for the distance itself (the paper's geodesic
    number counts hops); weights only enter the belief computation through the
    path-weight products (Definition 15).
    """
    labeled = sorted(set(int(node) for node in labeled_nodes))
    numbers = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    if not labeled:
        return numbers
    for node in labeled:
        if node < 0 or node >= graph.num_nodes:
            raise ValidationError(
                f"labeled node {node} out of range [0, {graph.num_nodes})")
    frontier = np.array(labeled, dtype=np.int64)
    numbers[frontier] = 0
    adjacency = graph.adjacency
    level = 0
    while frontier.size:
        level += 1
        # All neighbours of the current frontier, restricted to unvisited nodes.
        candidates = set()
        for node in frontier:
            start, end = adjacency.indptr[node], adjacency.indptr[node + 1]
            candidates.update(adjacency.indices[start:end].tolist())
        next_frontier = [node for node in candidates if numbers[node] == UNREACHABLE]
        if not next_frontier:
            break
        next_frontier_array = np.array(sorted(next_frontier), dtype=np.int64)
        numbers[next_frontier_array] = level
        frontier = next_frontier_array
    return numbers


@dataclass
class GeodesicLevels:
    """Geodesic numbers plus the per-level node lists ("frontiers").

    Attributes
    ----------
    numbers:
        Array of geodesic numbers (``UNREACHABLE`` for disconnected nodes).
    levels:
        ``levels[g]`` is the sorted array of nodes with geodesic number ``g``.
    unreachable:
        Sorted array of nodes that cannot reach any labeled node.
    """

    numbers: np.ndarray
    levels: List[np.ndarray]
    unreachable: np.ndarray

    @property
    def max_level(self) -> int:
        """The largest geodesic number present (−1 when no node is labeled)."""
        return len(self.levels) - 1

    def nodes_at(self, level: int) -> np.ndarray:
        """Nodes with geodesic number ``level`` (empty array when none)."""
        if 0 <= level < len(self.levels):
            return self.levels[level]
        return np.array([], dtype=np.int64)


def geodesic_levels(graph: Graph, labeled_nodes: Iterable[int]) -> GeodesicLevels:
    """Compute geodesic numbers and group nodes by level."""
    numbers = geodesic_numbers(graph, labeled_nodes)
    reachable = numbers[numbers != UNREACHABLE]
    max_level = int(reachable.max()) if reachable.size else -1
    levels = [np.sort(np.nonzero(numbers == g)[0]) for g in range(max_level + 1)]
    unreachable = np.sort(np.nonzero(numbers == UNREACHABLE)[0])
    return GeodesicLevels(numbers=numbers, levels=levels, unreachable=unreachable)


def modified_adjacency(graph: Graph, labeled_nodes: Iterable[int]) -> sp.csr_matrix:
    """The modified adjacency matrix ``A*`` of Lemma 17.

    ``A*(s, t) = w`` exactly when the original graph has an edge ``s — t`` of
    weight ``w`` and ``g_t = g_s + 1``; all other entries are zero.  The
    resulting directed graph is acyclic (information only flows from smaller
    to larger geodesic numbers), and SBP over the original graph equals LinBP
    over ``A*ᵀ``.

    Edges incident to unreachable nodes are dropped entirely.
    """
    numbers = geodesic_numbers(graph, labeled_nodes)
    rows: List[int] = []
    cols: List[int] = []
    data: List[float] = []
    for edge in graph.directed_edges():
        g_source, g_target = numbers[edge.source], numbers[edge.target]
        if g_source == UNREACHABLE or g_target == UNREACHABLE:
            continue
        if g_target == g_source + 1:
            rows.append(edge.source)
            cols.append(edge.target)
            data.append(edge.weight)
    n = graph.num_nodes
    return sp.coo_matrix((data, (rows, cols)), shape=(n, n)).tocsr()


def shortest_path_weights(graph: Graph, labeled_nodes: Sequence[int]) -> sp.csr_matrix:
    """Aggregate path weights from each labeled node to every node.

    Definition 15 sums, over all shortest paths ``p`` from labeled nodes to a
    node ``t`` of geodesic length ``g_t``, the product of the edge weights
    along ``p``, multiplied by the explicit belief at the path's start.  This
    helper returns the ``n x n_labeled`` sparse matrix ``W`` where
    ``W[t, j]`` is the total weight of shortest paths from the ``j``-th
    labeled node to ``t``; the SBP beliefs are then ``Ĥ^{g_t} Σ_j W[t, j] ê_j``.

    For an unweighted graph ``W[t, j]`` simply counts shortest paths (e.g. the
    factor 2 for node v1 in Example 16).

    The computation runs level by level over the DAG ``A*``: the path weight
    of a node at level ``g`` is the weighted sum of the path weights of its
    level-``g−1`` in-neighbours.
    """
    labeled = [int(node) for node in labeled_nodes]
    if len(set(labeled)) != len(labeled):
        raise ValidationError("labeled_nodes must not contain duplicates")
    levels = geodesic_levels(graph, labeled)
    n = graph.num_nodes
    n_labeled = len(labeled)
    column_of = {node: j for j, node in enumerate(labeled)}
    # Path-weight matrix, built level by level (lil for efficient row updates).
    weights = sp.lil_matrix((n, n_labeled))
    for j, node in enumerate(labeled):
        weights[node, j] = 1.0
    dag = modified_adjacency(graph, labeled)
    dag_csc = dag.tocsc()
    for level in range(1, levels.max_level + 1):
        for node in levels.nodes_at(level):
            start, end = dag_csc.indptr[node], dag_csc.indptr[node + 1]
            in_neighbors = dag_csc.indices[start:end]
            in_weights = dag_csc.data[start:end]
            if in_neighbors.size == 0:
                continue
            accumulated = np.zeros(n_labeled)
            for neighbor, weight in zip(in_neighbors, in_weights):
                accumulated += weight * weights[neighbor].toarray().ravel()
            weights[node] = accumulated
    return weights.tocsr()
