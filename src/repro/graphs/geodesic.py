"""Geodesic numbers and the modified adjacency matrix used by SBP.

Single-pass BP (Section 6 of the paper) assigns to every node ``t`` its
*geodesic number* ``g_t`` — the length of the shortest path to any node with
explicit beliefs (Definition 14) — and then propagates beliefs only along
edges that go from a node with geodesic number ``g`` to a node with geodesic
number ``g + 1``.  Lemma 17 shows this is equivalent to running LinBP over a
*modified adjacency matrix* ``A*`` in which

* edges between nodes with the same geodesic number are removed, and
* the remaining edges keep only the direction from lower to higher geodesic
  number (so ``A*`` is a DAG).

Everything in this module is set-at-a-time: the multi-source BFS expands
whole frontiers with CSR ``indptr``/``indices`` gathers and ``np.unique``,
``A*`` is carved out of the adjacency COO arrays with boolean masks, and the
per-level structure is exposed both as node lists (:class:`GeodesicLevels`)
and as contiguous per-level CSR blocks (:func:`level_slices`) that the
engine's :class:`repro.engine.sbp_plan.SBPPlan` sweeps one level at a time.
The gather/segment primitives (:func:`neighbor_gather`, :func:`segment_sum`)
are shared with the incremental ΔSBP repairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = [
    "UNREACHABLE",
    "as_node_array",
    "geodesic_numbers",
    "GeodesicLevels",
    "geodesic_levels",
    "level_slices",
    "modified_adjacency",
    "neighbor_gather",
    "neighbor_targets",
    "segment_sum",
    "shortest_path_weights",
]

#: Geodesic number assigned to nodes that cannot reach any labeled node.
UNREACHABLE = -1


def as_node_array(nodes: Iterable[int]) -> np.ndarray:
    """Sorted, deduplicated int64 node array from any iterable.

    Already-canonical ndarrays pass through without boxing their elements
    into Python ints — the hot path, since callers hand over the result of
    ``np.nonzero`` or a cached plan's ``labeled`` array.
    """
    if isinstance(nodes, np.ndarray):
        return np.unique(nodes.astype(np.int64, copy=False))
    return np.unique(np.array(list(nodes), dtype=np.int64))


def _checked_labeled(labeled_nodes: Iterable[int], num_nodes: int) -> np.ndarray:
    """Sorted, deduplicated labeled-node array, validated against ``[0, n)``."""
    labeled = as_node_array(labeled_nodes)
    if labeled.size:
        bad = labeled[0] if labeled[0] < 0 else labeled[-1]
        if bad < 0 or bad >= num_nodes:
            raise ValidationError(
                f"labeled node {int(bad)} out of range [0, {num_nodes})")
    return labeled


def _gather_positions(adjacency: sp.csr_matrix,
                      nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Flat CSR data positions of the rows of ``nodes``, plus per-row counts."""
    indptr = adjacency.indptr
    starts = indptr[nodes].astype(np.int64)
    counts = indptr[nodes + 1].astype(np.int64) - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    bases = np.cumsum(counts) - counts
    positions = np.repeat(starts - bases, counts) + np.arange(total, dtype=np.int64)
    return positions, counts


def neighbor_targets(adjacency: sp.csr_matrix, nodes: np.ndarray) -> np.ndarray:
    """Concatenated neighbour ids of ``nodes`` (duplicates included).

    The lightweight sibling of :func:`neighbor_gather` for frontier
    expansion: only the neighbour ids are materialised — no owner
    positions, no edge weights — which is all a BFS wave needs.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    positions, _counts = _gather_positions(adjacency, nodes)
    return adjacency.indices[positions].astype(np.int64, copy=False)


def neighbor_gather(adjacency: sp.csr_matrix,
                    nodes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated adjacency rows of ``nodes``: ``(owner, neighbor, weight)``.

    ``owner[i]`` is the position *within* ``nodes`` whose row contributed the
    ``i``-th entry.  Each node's entries stay contiguous and owners ascend, so
    per-owner reductions can run through :func:`segment_sum`.  This is the
    vectorised replacement for per-node ``graph.neighbors`` loops: one fancy
    gather over ``indptr``/``indices``/``data``, no Python iteration.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    positions, counts = _gather_positions(adjacency, nodes)
    if positions.size == 0:
        return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.float64))
    owner = np.repeat(np.arange(nodes.size, dtype=np.int64), counts)
    return (owner, adjacency.indices[positions].astype(np.int64, copy=False),
            adjacency.data[positions].astype(np.float64, copy=False))


def segment_sum(values: np.ndarray, owner: np.ndarray,
                num_groups: int) -> np.ndarray:
    """Per-owner row sums over an *ascending* ``owner`` id array.

    ``values`` is ``(m, k)``; the result is ``(num_groups, k)`` with row ``j``
    the sum of all rows whose owner is ``j`` (zero for empty groups).  Built
    on ``np.add.reduceat`` over the non-empty group boundaries, which handles
    the empty-group pitfall of a naive reduceat call.
    """
    out = np.zeros((num_groups,) + values.shape[1:])
    if owner.size == 0 or num_groups == 0:
        return out
    counts = np.bincount(owner, minlength=num_groups)
    nonempty = counts > 0
    boundaries = np.concatenate(([0], np.cumsum(counts[nonempty])))[:-1]
    out[nonempty] = np.add.reduceat(values, boundaries, axis=0)
    return out


def geodesic_numbers(graph: Graph, labeled_nodes: Iterable[int]) -> np.ndarray:
    """Multi-source BFS distances from the set of explicitly labeled nodes.

    Returns an integer array of length ``n`` where labeled nodes have value 0,
    nodes at distance ``g`` have value ``g``, and nodes in components without
    any labeled node have value :data:`UNREACHABLE`.

    Edge weights are ignored for the distance itself (the paper's geodesic
    number counts hops); weights only enter the belief computation through the
    path-weight products (Definition 15).

    The BFS is fully vectorised: every frontier expansion is one gather of
    the frontier's CSR rows followed by an unvisited mask and ``np.unique`` —
    no Python-level per-node loops.
    """
    labeled = _checked_labeled(labeled_nodes, graph.num_nodes)
    numbers = np.full(graph.num_nodes, UNREACHABLE, dtype=np.int64)
    if labeled.size == 0:
        return numbers
    adjacency = graph.adjacency
    numbers[labeled] = 0
    frontier = labeled
    level = 0
    while frontier.size:
        level += 1
        neighbors = neighbor_targets(adjacency, frontier)
        if neighbors.size == 0:
            break
        fresh = neighbors[numbers[neighbors] == UNREACHABLE]
        if fresh.size == 0:
            break
        frontier = np.unique(fresh)
        numbers[frontier] = level
    return numbers


@dataclass
class GeodesicLevels:
    """Geodesic numbers plus the per-level node lists ("frontiers").

    Attributes
    ----------
    numbers:
        Array of geodesic numbers (``UNREACHABLE`` for disconnected nodes).
    levels:
        ``levels[g]`` is the sorted array of nodes with geodesic number ``g``.
    unreachable:
        Sorted array of nodes that cannot reach any labeled node.
    """

    numbers: np.ndarray
    levels: List[np.ndarray]
    unreachable: np.ndarray

    @property
    def max_level(self) -> int:
        """The largest geodesic number present (−1 when no node is labeled)."""
        return len(self.levels) - 1

    def nodes_at(self, level: int) -> np.ndarray:
        """Nodes with geodesic number ``level`` (empty array when none)."""
        if 0 <= level < len(self.levels):
            return self.levels[level]
        return np.array([], dtype=np.int64)


def _levels_from_numbers(numbers: np.ndarray) -> GeodesicLevels:
    """Group nodes by geodesic number with one stable argsort."""
    if numbers.size == 0:
        return GeodesicLevels(numbers=numbers, levels=[],
                              unreachable=np.array([], dtype=np.int64))
    order = np.argsort(numbers, kind="stable")
    sorted_numbers = numbers[order]
    # Stable sort on ascending node index keeps every group internally sorted.
    first_reachable = int(np.searchsorted(sorted_numbers, 0))
    unreachable = order[:first_reachable]
    max_level = int(sorted_numbers[-1])
    if max_level == UNREACHABLE:
        return GeodesicLevels(numbers=numbers, levels=[], unreachable=unreachable)
    bounds = np.searchsorted(sorted_numbers, np.arange(max_level + 2))
    levels = [order[bounds[level]:bounds[level + 1]]
              for level in range(max_level + 1)]
    return GeodesicLevels(numbers=numbers, levels=levels, unreachable=unreachable)


def geodesic_levels(graph: Graph, labeled_nodes: Iterable[int]) -> GeodesicLevels:
    """Compute geodesic numbers and group nodes by level."""
    return _levels_from_numbers(geodesic_numbers(graph, labeled_nodes))


def _dag_mask(adjacency: sp.csr_matrix,
              numbers: np.ndarray) -> Tuple[sp.coo_matrix, np.ndarray]:
    """COO view of the adjacency plus the Lemma-17 edge mask ``g_t = g_s + 1``."""
    coo = adjacency.tocoo()
    source_levels = numbers[coo.row]
    mask = (source_levels != UNREACHABLE) & (numbers[coo.col] == source_levels + 1)
    return coo, mask


def modified_adjacency(graph: Graph, labeled_nodes: Iterable[int]) -> sp.csr_matrix:
    """The modified adjacency matrix ``A*`` of Lemma 17.

    ``A*(s, t) = w`` exactly when the original graph has an edge ``s — t`` of
    weight ``w`` and ``g_t = g_s + 1``; all other entries are zero.  The
    resulting directed graph is acyclic (information only flows from smaller
    to larger geodesic numbers), and SBP over the original graph equals LinBP
    over ``A*ᵀ``.

    Edges incident to unreachable nodes are dropped entirely.  The matrix is
    carved out of the adjacency COO arrays with one boolean mask — no
    ``directed_edges()`` iteration.
    """
    numbers = geodesic_numbers(graph, labeled_nodes)
    coo, mask = _dag_mask(graph.adjacency, numbers)
    n = graph.num_nodes
    return sp.coo_matrix((coo.data[mask], (coo.row[mask], coo.col[mask])),
                         shape=(n, n)).tocsr()


def _slices_from_levels(adjacency: sp.csr_matrix,
                        levels: GeodesicLevels) -> List[sp.csr_matrix]:
    """Per-level CSR blocks of ``A*`` (see :func:`level_slices`)."""
    numbers = levels.numbers
    rank = np.zeros(adjacency.shape[0], dtype=np.int64)
    for nodes in levels.levels:
        rank[nodes] = np.arange(nodes.size, dtype=np.int64)
    coo, mask = _dag_mask(adjacency, numbers)
    sources = coo.row[mask]
    targets = coo.col[mask]
    data = coo.data[mask]
    target_levels = numbers[targets]
    order = np.argsort(target_levels, kind="stable")
    sources, targets, data = sources[order], targets[order], data[order]
    target_levels = target_levels[order]
    bounds = np.searchsorted(target_levels, np.arange(1, levels.max_level + 2))
    slices: List[sp.csr_matrix] = []
    for level in range(1, levels.max_level + 1):
        lo, hi = bounds[level - 1], bounds[level]
        shape = (levels.levels[level].size, levels.levels[level - 1].size)
        slices.append(sp.coo_matrix(
            (data[lo:hi].astype(np.float64),
             (rank[targets[lo:hi]], rank[sources[lo:hi]])),
            shape=shape).tocsr())
    return slices


def level_slices(graph: Graph,
                 labeled_nodes: Iterable[int]) -> Tuple[GeodesicLevels,
                                                        List[sp.csr_matrix]]:
    """The Lemma-17 DAG as contiguous per-level CSR blocks.

    Returns ``(levels, slices)`` where ``slices[g - 1]`` is the
    ``|level g| × |level g−1|`` matrix ``S_g`` with ``S_g[i, j]`` the weight
    of the ``A*`` edge from the ``j``-th node of level ``g−1`` into the
    ``i``-th node of level ``g``.  The single-pass sweep then reads
    ``B_g = (S_g B_{g−1}) Ĥ`` — each level multiplies only against the
    previous level's rows instead of slicing the full ``n × n`` DAG and
    multiplying against the whole belief matrix.
    """
    levels = geodesic_levels(graph, labeled_nodes)
    return levels, _slices_from_levels(graph.adjacency, levels)


def shortest_path_weights(graph: Graph, labeled_nodes: Sequence[int]) -> sp.csr_matrix:
    """Aggregate path weights from each labeled node to every node.

    Definition 15 sums, over all shortest paths ``p`` from labeled nodes to a
    node ``t`` of geodesic length ``g_t``, the product of the edge weights
    along ``p``, multiplied by the explicit belief at the path's start.  This
    helper returns the ``n x n_labeled`` sparse matrix ``W`` where
    ``W[t, j]`` is the total weight of shortest paths from the ``j``-th
    labeled node to ``t``; the SBP beliefs are then ``Ĥ^{g_t} Σ_j W[t, j] ê_j``.

    For an unweighted graph ``W[t, j]`` simply counts shortest paths (e.g. the
    factor 2 for node v1 in Example 16).

    The computation runs level by level over the per-level slices of the DAG
    ``A*``: the block of path weights at level ``g`` is one sparse product
    ``S_g W_{g−1}`` against the previous level's block, and the blocks are
    stitched together into the final CSR matrix at the end — no ``lil_matrix``
    row assignment, no per-neighbour densification.
    """
    labeled = [int(node) for node in labeled_nodes]
    if len(set(labeled)) != len(labeled):
        raise ValidationError("labeled_nodes must not contain duplicates")
    levels, slices = level_slices(graph, labeled)
    n = graph.num_nodes
    n_labeled = len(labeled)
    if n_labeled == 0:
        return sp.csr_matrix((n, 0))
    column_of = np.zeros(n, dtype=np.int64)
    column_of[np.array(labeled, dtype=np.int64)] = np.arange(n_labeled)
    base = levels.nodes_at(0)
    block = sp.csr_matrix(
        (np.ones(base.size), (np.arange(base.size), column_of[base])),
        shape=(base.size, n_labeled))
    row_blocks: List[Tuple[np.ndarray, sp.spmatrix]] = [(base, block)]
    for index, slice_matrix in enumerate(slices, start=1):
        block = (slice_matrix @ block).tocsr()
        row_blocks.append((levels.nodes_at(index), block))
    rows: List[np.ndarray] = []
    cols: List[np.ndarray] = []
    data: List[np.ndarray] = []
    for nodes, level_block in row_blocks:
        coo = level_block.tocoo()
        rows.append(nodes[coo.row])
        cols.append(coo.col.astype(np.int64))
        data.append(coo.data)
    return sp.coo_matrix(
        (np.concatenate(data), (np.concatenate(rows), np.concatenate(cols))),
        shape=(n, n_labeled)).tocsr()
