"""Undirected (optionally weighted) graph substrate.

The paper works with an undirected graph of ``n`` nodes represented by its
symmetric adjacency matrix ``A`` (weighted entries allowed, Section 5.2) and a
diagonal degree matrix ``D`` whose entries are the sums of squared edge
weights.  :class:`Graph` wraps a ``scipy.sparse`` CSR adjacency matrix and
provides exactly the views the algorithms need:

* ``adjacency`` — symmetric CSR matrix ``A``;
* ``degree_vector`` / ``degree_matrix`` — the echo-cancellation degrees;
  the squared-weight degree vector is computed once and cached on the
  instance (callers receive copies), since every LinBP run and convergence
  check needs it;
* ``neighbors(node)`` — neighbour ids and weights, for the message-passing
  BP baseline and for the SBP frontier expansion;
* ``edges()`` — an iterator over undirected edges, for the relational
  implementations and for dataset export.

Nodes are integers ``0..n-1``.  Optional string labels can be attached for
presentation purposes (used by the examples) but the algorithms never rely on
them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.exceptions import ValidationError
from repro.graphs import linalg

__all__ = ["Edge", "Graph"]


@dataclass(frozen=True)
class Edge:
    """A single undirected edge ``source — target`` with a positive weight."""

    source: int
    target: int
    weight: float = 1.0

    def reversed(self) -> "Edge":
        """The same edge with the endpoints swapped."""
        return Edge(self.target, self.source, self.weight)

    def key(self) -> Tuple[int, int]:
        """Canonical (sorted) endpoint pair used to deduplicate edges."""
        return (self.source, self.target) if self.source <= self.target \
            else (self.target, self.source)


class Graph:
    """An undirected, weighted graph backed by a symmetric sparse matrix.

    Parameters
    ----------
    adjacency:
        A square, symmetric matrix (dense or sparse) with non-negative
        entries.  ``adjacency[s, t]`` is the weight of edge ``s — t`` and zero
        when the edge is absent.
    node_names:
        Optional sequence of display names, one per node.
    validate:
        When true (default), check squareness, symmetry and non-negativity.
    """

    def __init__(self, adjacency, node_names: Optional[Sequence[str]] = None,
                 validate: bool = True):
        matrix = linalg.to_csr(adjacency).astype(float)
        if validate:
            self._validate(matrix)
        matrix.setdiag(0.0)
        matrix.eliminate_zeros()
        self._adjacency = matrix
        self._node_names = list(node_names) if node_names is not None else None
        if self._node_names is not None and len(self._node_names) != matrix.shape[0]:
            raise ValidationError(
                f"expected {matrix.shape[0]} node names, got {len(self._node_names)}")
        self._degree_cache: Optional[np.ndarray] = None

    @staticmethod
    def _validate(matrix: sp.csr_matrix) -> None:
        if matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(
                f"adjacency matrix must be square, got shape {matrix.shape}")
        if matrix.nnz and float(matrix.data.min()) < 0.0:
            raise ValidationError("edge weights must be non-negative")
        if not linalg.is_symmetric(matrix):
            raise ValidationError("adjacency matrix must be symmetric "
                                  "(the paper's graphs are undirected)")

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[int, int] | Tuple[int, int, float] | Edge],
                   num_nodes: Optional[int] = None,
                   node_names: Optional[Sequence[str]] = None) -> "Graph":
        """Build a graph from an iterable of edges.

        Each edge may be an :class:`Edge`, a ``(source, target)`` pair
        (weight 1.0), or a ``(source, target, weight)`` triple.  Duplicate
        edges are summed; self-loops are rejected.
        """
        weights: Dict[Tuple[int, int], float] = {}
        max_node = -1
        for item in edges:
            if isinstance(item, Edge):
                source, target, weight = item.source, item.target, item.weight
            elif len(item) == 2:
                source, target = item  # type: ignore[misc]
                weight = 1.0
            else:
                source, target, weight = item  # type: ignore[misc]
            source, target, weight = int(source), int(target), float(weight)
            if source == target:
                raise ValidationError(f"self-loop on node {source} is not allowed")
            if source < 0 or target < 0:
                raise ValidationError("node ids must be non-negative integers")
            if weight <= 0.0:
                raise ValidationError(
                    f"edge {source}-{target} has non-positive weight {weight}")
            key = (source, target) if source < target else (target, source)
            weights[key] = weights.get(key, 0.0) + weight
            max_node = max(max_node, source, target)
        n = num_nodes if num_nodes is not None else max_node + 1
        if n < max_node + 1:
            raise ValidationError(
                f"num_nodes={n} is smaller than the largest referenced node {max_node}")
        if not weights:
            return cls(sp.csr_matrix((n, n)), node_names=node_names, validate=False)
        rows, cols, vals = [], [], []
        for (source, target), weight in weights.items():
            rows.extend((source, target))
            cols.extend((target, source))
            vals.extend((weight, weight))
        matrix = sp.coo_matrix((vals, (rows, cols)), shape=(n, n)).tocsr()
        return cls(matrix, node_names=node_names, validate=False)

    @classmethod
    def empty(cls, num_nodes: int) -> "Graph":
        """A graph with ``num_nodes`` nodes and no edges."""
        if num_nodes < 0:
            raise ValidationError("num_nodes must be non-negative")
        return cls(sp.csr_matrix((num_nodes, num_nodes)), validate=False)

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def adjacency(self) -> sp.csr_matrix:
        """The symmetric CSR adjacency matrix ``A``."""
        return self._adjacency

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self._adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of undirected edges (each counted once)."""
        return self._adjacency.nnz // 2

    @property
    def num_directed_edges(self) -> int:
        """Number of adjacency-matrix entries (the paper's edge count, Fig. 6a)."""
        return self._adjacency.nnz

    @property
    def is_weighted(self) -> bool:
        """True when any edge weight differs from 1."""
        if self._adjacency.nnz == 0:
            return False
        return not np.allclose(self._adjacency.data, 1.0)

    @property
    def node_names(self) -> Optional[List[str]]:
        """Optional display names, one per node."""
        return list(self._node_names) if self._node_names is not None else None

    def name_of(self, node: int) -> str:
        """Display name of ``node`` (falls back to ``'v<node>'``)."""
        if self._node_names is not None:
            return self._node_names[node]
        return f"v{node}"

    # ------------------------------------------------------------------ #
    # degrees and linear algebra views
    # ------------------------------------------------------------------ #
    def degree_vector(self, weighted_squares: bool = True) -> np.ndarray:
        """Degrees per node; squared-weight sums by default (Section 5.2).

        The squared-weight vector is cached on first computation (the graph
        is immutable-ish, every propagation needs it); the returned array is
        a copy, so callers may mutate it freely.  The plain weighted variant
        (``weighted_squares=False``) is recomputed on each call.
        """
        if weighted_squares:
            if self._degree_cache is None:
                self._degree_cache = linalg.degree_vector(self._adjacency, True)
            return self._degree_cache.copy()
        return linalg.degree_vector(self._adjacency, False)

    def degree_matrix(self, weighted_squares: bool = True) -> sp.csr_matrix:
        """Diagonal degree matrix ``D`` used by the echo-cancellation term."""
        return sp.diags(self.degree_vector(weighted_squares), format="csr")

    def spectral_radius(self) -> float:
        """Spectral radius ``ρ(A)`` of the adjacency matrix."""
        return linalg.spectral_radius(self._adjacency)

    # ------------------------------------------------------------------ #
    # traversal
    # ------------------------------------------------------------------ #
    def neighbors(self, node: int) -> Tuple[np.ndarray, np.ndarray]:
        """Neighbour ids and edge weights of ``node`` as two aligned arrays."""
        if node < 0 or node >= self.num_nodes:
            raise ValidationError(f"node {node} out of range [0, {self.num_nodes})")
        start, end = self._adjacency.indptr[node], self._adjacency.indptr[node + 1]
        return (self._adjacency.indices[start:end].copy(),
                self._adjacency.data[start:end].copy())

    def degree(self, node: int) -> int:
        """Number of neighbours of ``node``."""
        return int(self._adjacency.indptr[node + 1] - self._adjacency.indptr[node])

    def edges(self) -> Iterator[Edge]:
        """Iterate over undirected edges once each (source < target)."""
        coo = self._adjacency.tocoo()
        for source, target, weight in zip(coo.row, coo.col, coo.data):
            if source < target:
                yield Edge(int(source), int(target), float(weight))

    def directed_edges(self) -> Iterator[Edge]:
        """Iterate over both directions of every edge (as stored in ``A``)."""
        coo = self._adjacency.tocoo()
        for source, target, weight in zip(coo.row, coo.col, coo.data):
            yield Edge(int(source), int(target), float(weight))

    def has_edge(self, source: int, target: int) -> bool:
        """True when the undirected edge ``source — target`` exists."""
        return self._adjacency[source, target] != 0.0

    def edge_weight(self, source: int, target: int) -> float:
        """Weight of edge ``source — target`` (0.0 when absent)."""
        return float(self._adjacency[source, target])

    # ------------------------------------------------------------------ #
    # modification (returns new Graph instances; Graph is immutable-ish)
    # ------------------------------------------------------------------ #
    def with_edges_added(self, new_edges: Iterable[Tuple[int, int] | Tuple[int, int, float] | Edge]) -> "Graph":
        """A new graph with ``new_edges`` added (weights summed on duplicates)."""
        combined: List[Edge] = list(self.edges())
        for item in new_edges:
            if isinstance(item, Edge):
                combined.append(item)
            elif len(item) == 2:
                combined.append(Edge(int(item[0]), int(item[1]), 1.0))
            else:
                combined.append(Edge(int(item[0]), int(item[1]), float(item[2])))
        return Graph.from_edges(combined, num_nodes=self.num_nodes,
                                node_names=self._node_names)

    def subgraph_weights_scaled(self, factor: float) -> "Graph":
        """A new graph with every edge weight multiplied by ``factor`` > 0."""
        if factor <= 0:
            raise ValidationError("scaling factor must be positive")
        return Graph(self._adjacency * factor, node_names=self._node_names,
                     validate=False)

    # ------------------------------------------------------------------ #
    # dunder helpers
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        kind = "weighted" if self.is_weighted else "unweighted"
        return (f"Graph(n={self.num_nodes}, undirected_edges={self.num_edges}, "
                f"{kind})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        if self.num_nodes != other.num_nodes:
            return False
        difference = (self._adjacency - other._adjacency).tocoo()
        if difference.nnz == 0:
            return True
        return bool(np.max(np.abs(difference.data)) < 1e-12)
