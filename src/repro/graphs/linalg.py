"""Sparse linear-algebra helpers used throughout the reproduction.

The convergence analysis of LinBP (Lemmas 8, 9 and 23 of the paper) relies on
spectral radii and on three cheap-to-compute sub-multiplicative norms:
the Frobenius norm, the induced 1-norm (maximum absolute column sum) and the
induced infinity-norm (maximum absolute row sum).  This module provides those
primitives for both dense ``numpy`` arrays and ``scipy.sparse`` matrices, plus
the degree matrix of Section 5.2 (sum of *squared* edge weights, because the
echo-cancellation term travels back and forth across each edge).
"""

from __future__ import annotations

from typing import Union

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.exceptions import ValidationError

MatrixLike = Union[np.ndarray, sp.spmatrix]

__all__ = [
    "spectral_radius",
    "frobenius_norm",
    "induced_1_norm",
    "induced_inf_norm",
    "minimum_norm",
    "degree_vector",
    "degree_matrix",
    "is_symmetric",
    "kron_spectral_radius",
    "to_csr",
    "to_dense",
]


def to_csr(matrix: MatrixLike) -> sp.csr_matrix:
    """Return ``matrix`` as a CSR sparse matrix (copying only if needed)."""
    if sp.issparse(matrix):
        return matrix.tocsr()
    return sp.csr_matrix(np.asarray(matrix, dtype=float))


def to_dense(matrix: MatrixLike) -> np.ndarray:
    """Return ``matrix`` as a dense ``numpy`` array of floats."""
    if sp.issparse(matrix):
        return matrix.toarray().astype(float)
    return np.asarray(matrix, dtype=float)


def is_symmetric(matrix: MatrixLike, tol: float = 1e-10) -> bool:
    """Check whether ``matrix`` equals its transpose up to ``tol``."""
    if sp.issparse(matrix):
        difference = (matrix - matrix.T).tocoo()
        if difference.nnz == 0:
            return True
        return float(np.max(np.abs(difference.data))) <= tol
    dense = np.asarray(matrix, dtype=float)
    if dense.shape[0] != dense.shape[1]:
        return False
    return bool(np.allclose(dense, dense.T, atol=tol))


def spectral_radius(matrix: MatrixLike, tol: float = 1e-10) -> float:
    """Largest absolute eigenvalue of a square matrix.

    Small matrices (order < 64) are handled densely with ``numpy.linalg.eigvals``;
    larger sparse matrices use ARPACK (``scipy.sparse.linalg.eigs``) asking only
    for the eigenvalue of largest magnitude.  ARPACK can fail to converge on
    pathological inputs, in which case we fall back to a dense computation when
    feasible and to a power-iteration estimate otherwise.
    """
    n = matrix.shape[0]
    if matrix.shape[0] != matrix.shape[1]:
        raise ValidationError(
            f"spectral_radius requires a square matrix, got shape {matrix.shape}")
    if n == 0:
        return 0.0
    if n < 64 or not sp.issparse(matrix):
        dense = to_dense(matrix)
        if n < 512:
            eigenvalues = np.linalg.eigvals(dense)
            return float(np.max(np.abs(eigenvalues))) if eigenvalues.size else 0.0
        matrix = sp.csr_matrix(dense)
    sparse = matrix.tocsr().astype(float)
    if sparse.nnz == 0:
        return 0.0
    try:
        eigenvalues = spla.eigs(sparse, k=1, which="LM", return_eigenvectors=False,
                                maxiter=5000, tol=tol)
        return float(np.abs(eigenvalues[0]))
    except (spla.ArpackNoConvergence, spla.ArpackError):
        return _power_iteration_radius(sparse)


def _power_iteration_radius(matrix: sp.spmatrix, iterations: int = 200,
                            seed: int = 0) -> float:
    """Estimate the spectral radius with plain power iteration.

    Used only as a fall-back when ARPACK fails; accuracy of a few digits is
    plenty for the convergence-threshold experiments.
    """
    rng = np.random.default_rng(seed)
    vector = rng.standard_normal(matrix.shape[0])
    vector /= np.linalg.norm(vector)
    estimate = 0.0
    for _ in range(iterations):
        product = matrix @ vector
        norm = np.linalg.norm(product)
        if norm == 0.0:
            return 0.0
        estimate = norm
        vector = product / norm
    return float(estimate)


def frobenius_norm(matrix: MatrixLike) -> float:
    """Frobenius norm (the element-wise 2-norm), sub-multiplicative."""
    if sp.issparse(matrix):
        return float(np.sqrt(np.sum(matrix.data ** 2)))
    return float(np.linalg.norm(np.asarray(matrix, dtype=float), ord="fro"))


def induced_1_norm(matrix: MatrixLike) -> float:
    """Induced 1-norm: the maximum absolute column sum."""
    if sp.issparse(matrix):
        if matrix.nnz == 0:
            return 0.0
        column_sums = np.abs(matrix).sum(axis=0)
        return float(np.max(np.asarray(column_sums)))
    dense = np.abs(np.asarray(matrix, dtype=float))
    if dense.size == 0:
        return 0.0
    return float(np.max(dense.sum(axis=0)))


def induced_inf_norm(matrix: MatrixLike) -> float:
    """Induced infinity-norm: the maximum absolute row sum."""
    if sp.issparse(matrix):
        if matrix.nnz == 0:
            return 0.0
        row_sums = np.abs(matrix).sum(axis=1)
        return float(np.max(np.asarray(row_sums)))
    dense = np.abs(np.asarray(matrix, dtype=float))
    if dense.size == 0:
        return 0.0
    return float(np.max(dense.sum(axis=1)))


def minimum_norm(matrix: MatrixLike) -> float:
    """Minimum over the paper's recommended norm set M.

    Lemma 9 suggests taking, for each matrix, the minimum over (i) the
    Frobenius norm, (ii) the induced 1-norm, and (iii) the induced
    infinity-norm; every member upper-bounds the spectral radius, so the
    minimum gives the tightest of the three bounds.
    """
    return min(frobenius_norm(matrix), induced_1_norm(matrix),
               induced_inf_norm(matrix))


def degree_vector(adjacency: MatrixLike, weighted_squares: bool = True) -> np.ndarray:
    """Per-node degrees as used by the LinBP echo-cancellation term.

    For unweighted graphs this is the ordinary degree.  For weighted graphs,
    Section 5.2 of the paper defines the degree of a node as the sum of the
    *squared* weights to its neighbours, because the echo travels across each
    edge once in each direction.  Set ``weighted_squares=False`` to obtain the
    plain weighted degree (sum of weights) instead.
    """
    csr = to_csr(adjacency)
    if weighted_squares:
        squared = csr.copy()
        squared.data = squared.data ** 2
        degrees = np.asarray(squared.sum(axis=1)).ravel()
    else:
        degrees = np.asarray(csr.sum(axis=1)).ravel()
    return degrees.astype(float)


def degree_matrix(adjacency: MatrixLike, weighted_squares: bool = True) -> sp.csr_matrix:
    """Diagonal degree matrix ``D = diag(d)`` (see :func:`degree_vector`)."""
    degrees = degree_vector(adjacency, weighted_squares=weighted_squares)
    return sp.diags(degrees, format="csr")


def kron_spectral_radius(coupling_residual: np.ndarray, adjacency: MatrixLike,
                         degree: MatrixLike | None = None) -> float:
    """Spectral radius of ``Ĥ⊗A − Ĥ²⊗D`` (or of ``Ĥ⊗A`` when ``degree`` is None).

    This is the quantity that Lemma 8 compares against 1 to decide whether the
    LinBP (respectively LinBP*) iteration converges.  The Kronecker product is
    assembled sparsely, which keeps it tractable for the graph sizes used in
    the experiments (the factor ``Ĥ`` is only k×k).
    """
    coupling = np.asarray(coupling_residual, dtype=float)
    adjacency_csr = to_csr(adjacency)
    propagation = sp.kron(sp.csr_matrix(coupling), adjacency_csr, format="csr")
    if degree is not None:
        degree_csr = to_csr(degree)
        echo = sp.kron(sp.csr_matrix(coupling @ coupling), degree_csr, format="csr")
        propagation = (propagation - echo).tocsr()
    return spectral_radius(propagation)
