"""Plain-text I/O for graphs and belief matrices.

The paper's SQL implementation stores the network in three relations:
``A(s, t, w)`` for the (weighted) adjacency matrix, ``E(v, c, b)`` for the
explicit beliefs, and ``H(c1, c2, h)`` for the coupling matrix.  This module
reads and writes the adjacency and belief relations as whitespace- or
comma-separated text files so that datasets can be exchanged with other tools
(and so the examples can persist generated workloads).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_belief_table",
    "read_belief_table",
]

PathLike = Union[str, Path]


def write_edge_list(graph: Graph, path: PathLike, delimiter: str = "\t",
                    include_weights: Optional[bool] = None) -> None:
    """Write a graph as one ``source <delim> target [<delim> weight]`` line per edge.

    Each undirected edge is written once with ``source < target``.  Weights
    are included when the graph is weighted, or always when
    ``include_weights=True``.
    """
    destination = Path(path)
    with_weights = graph.is_weighted if include_weights is None else include_weights
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for edge in graph.edges():
            if with_weights:
                writer.writerow([edge.source, edge.target, repr(edge.weight)])
            else:
                writer.writerow([edge.source, edge.target])


def read_edge_list(path: PathLike, delimiter: Optional[str] = None,
                   num_nodes: Optional[int] = None) -> Graph:
    """Read a graph written by :func:`write_edge_list`.

    Lines starting with ``#`` are ignored.  When ``delimiter`` is None the
    line is split on arbitrary whitespace, otherwise with the given character.
    A third column, when present, is interpreted as the edge weight.
    """
    source_path = Path(path)
    edges: List[Tuple[int, int, float]] = []
    with source_path.open() as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(delimiter) if delimiter else line.split()
            if len(parts) not in (2, 3):
                raise ValidationError(
                    f"{source_path}:{line_number}: expected 2 or 3 columns, "
                    f"got {len(parts)}")
            source, target = int(parts[0]), int(parts[1])
            weight = float(parts[2]) if len(parts) == 3 else 1.0
            edges.append((source, target, weight))
    return Graph.from_edges(edges, num_nodes=num_nodes)


def write_belief_table(beliefs: np.ndarray, path: PathLike,
                       delimiter: str = "\t",
                       skip_zero_rows: bool = True) -> None:
    """Write a belief matrix in the relational layout ``node, class, belief``.

    Rows that are entirely zero (nodes without explicit beliefs) are skipped
    by default, matching the sparse ``E(v, c, b)`` relation used by the SQL
    implementation.
    """
    matrix = np.asarray(beliefs, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError("belief matrix must be two-dimensional")
    destination = Path(path)
    with destination.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for node in range(matrix.shape[0]):
            row = matrix[node]
            if skip_zero_rows and not np.any(row):
                continue
            for class_index in range(matrix.shape[1]):
                writer.writerow([node, class_index, repr(float(row[class_index]))])


def read_belief_table(path: PathLike, num_nodes: int, num_classes: int,
                      delimiter: Optional[str] = None) -> np.ndarray:
    """Read a ``node, class, belief`` table back into an ``n x k`` matrix."""
    source_path = Path(path)
    matrix = np.zeros((num_nodes, num_classes))
    with source_path.open() as handle:
        for line_number, raw_line in enumerate(handle, start=1):
            line = raw_line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(delimiter) if delimiter else line.split()
            if len(parts) != 3:
                raise ValidationError(
                    f"{source_path}:{line_number}: expected 3 columns, got {len(parts)}")
            node, class_index, belief = int(parts[0]), int(parts[1]), float(parts[2])
            if not (0 <= node < num_nodes):
                raise ValidationError(
                    f"{source_path}:{line_number}: node {node} out of range")
            if not (0 <= class_index < num_classes):
                raise ValidationError(
                    f"{source_path}:{line_number}: class {class_index} out of range")
            matrix[node, class_index] = belief
    return matrix
