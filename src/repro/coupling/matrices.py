"""Coupling ("heterophily") matrices and their centered residual form.

The paper couples neighbouring nodes through a k x k matrix ``H`` whose entry
``H(j, i)`` is the relative influence of class ``j`` of a node on class ``i``
of its neighbour (Fig. 1).  The derivation of LinBP requires ``H`` to be
symmetric and doubly stochastic, and then works exclusively with the
*residual* matrix ``Ĥ = H − 1/k`` (Definition 3), every row and column of
which sums to zero.

Section 6.2 additionally separates the *shape* of the coupling from its
*strength*: ``Ĥ = ε_H · Ĥo`` where ``Ĥo`` is the unscaled residual coupling
matrix and ``ε_H > 0`` the scaling factor that the experiments sweep.

:class:`CouplingMatrix` stores the unscaled residual ``Ĥo`` (or, equivalently,
the stochastic matrix it came from) and produces scaled residuals, squares,
spectral radii, and norms on demand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.graphs import linalg

__all__ = [
    "CouplingMatrix",
    "residual_from_stochastic",
    "stochastic_from_residual",
    "is_doubly_stochastic",
    "make_doubly_stochastic",
]


def is_doubly_stochastic(matrix: np.ndarray, tol: float = 1e-8) -> bool:
    """True when every row and column of ``matrix`` sums to 1 (within ``tol``)."""
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        return False
    # rtol=0 keeps the check consistent with the residual-matrix validation
    # (which compares sums against zero, where relative tolerance is void).
    row_ok = np.allclose(array.sum(axis=1), 1.0, atol=tol, rtol=0.0)
    col_ok = np.allclose(array.sum(axis=0), 1.0, atol=tol, rtol=0.0)
    return bool(row_ok and col_ok)


def make_doubly_stochastic(matrix: np.ndarray, iterations: int = 1000,
                           tol: float = 1e-12) -> np.ndarray:
    """Sinkhorn–Knopp balancing of a non-negative matrix.

    The paper assumes the coupling matrix is doubly stochastic and notes
    (footnote 7) that single stochasticity "could easily be constructed" by
    normalisation; this helper performs the full balancing so arbitrary
    non-negative affinity matrices can be used as input.
    """
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise ValidationError("coupling matrix must be square")
    if np.any(array < 0):
        raise ValidationError("coupling affinities must be non-negative")
    if np.any(array.sum(axis=1) == 0) or np.any(array.sum(axis=0) == 0):
        raise ValidationError("coupling matrix must have no all-zero row or column")
    balanced = array.copy()
    for _ in range(iterations):
        balanced = balanced / balanced.sum(axis=1, keepdims=True)
        balanced = balanced / balanced.sum(axis=0, keepdims=True)
        if is_doubly_stochastic(balanced, tol=tol):
            break
    return balanced


def residual_from_stochastic(matrix: np.ndarray) -> np.ndarray:
    """Residual coupling matrix ``Ĥ = H − 1/k`` (Definition 3)."""
    array = np.asarray(matrix, dtype=float)
    k = array.shape[0]
    return array - 1.0 / k


def stochastic_from_residual(residual: np.ndarray) -> np.ndarray:
    """Inverse of :func:`residual_from_stochastic`: ``H = Ĥ + 1/k``."""
    array = np.asarray(residual, dtype=float)
    k = array.shape[0]
    return array + 1.0 / k


@dataclass(frozen=True)
class CouplingMatrix:
    """An unscaled residual coupling matrix ``Ĥo`` plus a scaling factor ``ε_H``.

    Instances are immutable; scaling produces new instances.  The residual
    actually used by the algorithms is ``residual = ε_H · Ĥo``.

    Attributes
    ----------
    unscaled_residual:
        The k x k residual matrix ``Ĥo`` (rows and columns sum to zero).
    epsilon:
        The positive scaling factor ``ε_H``; 1.0 means "use ``Ĥo`` as is".
    class_names:
        Optional display names for the k classes.
    """

    unscaled_residual: np.ndarray
    epsilon: float = 1.0
    class_names: Optional[Sequence[str]] = None

    def __post_init__(self):
        residual = np.asarray(self.unscaled_residual, dtype=float)
        if residual.ndim != 2 or residual.shape[0] != residual.shape[1]:
            raise ValidationError("residual coupling matrix must be square")
        if residual.shape[0] < 2:
            raise ValidationError("at least two classes are required")
        if not np.allclose(residual, residual.T, atol=1e-9):
            raise ValidationError("residual coupling matrix must be symmetric")
        if not np.allclose(residual.sum(axis=0), 0.0, atol=1e-8):
            raise ValidationError(
                "residual coupling matrix columns must sum to zero "
                "(is the source matrix doubly stochastic?)")
        if not np.allclose(residual.sum(axis=1), 0.0, atol=1e-8):
            raise ValidationError("residual coupling matrix rows must sum to zero")
        if self.epsilon <= 0:
            raise ValidationError("epsilon (the coupling scale) must be positive")
        if self.class_names is not None and len(self.class_names) != residual.shape[0]:
            raise ValidationError(
                f"expected {residual.shape[0]} class names, got {len(self.class_names)}")
        object.__setattr__(self, "unscaled_residual", residual)
        if self.class_names is not None:
            object.__setattr__(self, "class_names", tuple(self.class_names))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_stochastic(cls, matrix: np.ndarray, epsilon: float = 1.0,
                        class_names: Optional[Sequence[str]] = None,
                        balance: bool = False) -> "CouplingMatrix":
        """Build from a (doubly) stochastic coupling matrix like Fig. 1a–c.

        With ``balance=True`` an arbitrary non-negative affinity matrix is
        first made doubly stochastic with Sinkhorn balancing.
        """
        array = np.asarray(matrix, dtype=float)
        if balance:
            array = make_doubly_stochastic(array)
        if not is_doubly_stochastic(array):
            raise ValidationError(
                "coupling matrix must be doubly stochastic; "
                "pass balance=True to balance an affinity matrix first")
        if not np.allclose(array, array.T, atol=1e-9):
            raise ValidationError("coupling matrix must be symmetric")
        return cls(residual_from_stochastic(array), epsilon=epsilon,
                   class_names=class_names)

    @classmethod
    def from_residual(cls, residual: np.ndarray, epsilon: float = 1.0,
                      class_names: Optional[Sequence[str]] = None) -> "CouplingMatrix":
        """Build directly from an unscaled residual matrix ``Ĥo`` (e.g. Fig. 6b)."""
        return cls(np.asarray(residual, dtype=float), epsilon=epsilon,
                   class_names=class_names)

    # ------------------------------------------------------------------ #
    # basic views
    # ------------------------------------------------------------------ #
    @property
    def num_classes(self) -> int:
        """Number of classes ``k``."""
        return self.unscaled_residual.shape[0]

    @property
    def residual(self) -> np.ndarray:
        """The scaled residual ``Ĥ = ε_H · Ĥo`` used by the algorithms."""
        return self.epsilon * self.unscaled_residual

    @property
    def residual_squared(self) -> np.ndarray:
        """``Ĥ²`` as needed by the echo-cancellation term."""
        scaled = self.residual
        return scaled @ scaled

    @property
    def stochastic(self) -> np.ndarray:
        """The (approximately) stochastic matrix ``H = Ĥ + 1/k``.

        Only a genuine probability matrix when the scaled residual entries
        stay within ``[−1/k, (k−1)/k]``; the experiments use small ``ε_H``
        where this always holds.
        """
        return stochastic_from_residual(self.residual)

    def scaled(self, epsilon: float) -> "CouplingMatrix":
        """A copy of this coupling with a different scale ``ε_H``."""
        return CouplingMatrix(self.unscaled_residual, epsilon=float(epsilon),
                              class_names=self.class_names)

    # ------------------------------------------------------------------ #
    # analysis helpers
    # ------------------------------------------------------------------ #
    def spectral_radius(self, scaled: bool = True) -> float:
        """``ρ(Ĥ)`` of the scaled (default) or unscaled residual."""
        matrix = self.residual if scaled else self.unscaled_residual
        return linalg.spectral_radius(matrix)

    def minimum_norm(self, scaled: bool = True) -> float:
        """Minimum of Frobenius / induced-1 / induced-inf norms (Lemma 9)."""
        matrix = self.residual if scaled else self.unscaled_residual
        return linalg.minimum_norm(matrix)

    def is_homophily(self) -> bool:
        """True when every diagonal entry dominates its column (homophily)."""
        residual = self.unscaled_residual
        diagonal = np.diag(residual)
        off_diagonal_max = np.max(residual - np.diag(np.full(self.num_classes, np.inf)),
                                  axis=0)
        return bool(np.all(diagonal > off_diagonal_max))

    def name_of(self, class_index: int) -> str:
        """Display name of a class (falls back to ``'class<i>'``)."""
        if self.class_names is not None:
            return self.class_names[class_index]
        return f"class{class_index}"

    def __repr__(self) -> str:  # pragma: no cover - repr formatting
        return (f"CouplingMatrix(k={self.num_classes}, epsilon={self.epsilon:g}, "
                f"rho_unscaled={self.spectral_radius(scaled=False):.4f})")
