"""The concrete coupling matrices used throughout the paper.

* Fig. 1a — binary **homophily** (Democrats / Republicans).
* Fig. 1b — binary **heterophily** (Talkative / Silent).
* Fig. 1c — the general 3-class mix used for the fraud example
  (Honest / Accomplice / Fraudster) and for Example 20.
* Fig. 6b — the unscaled residual coupling matrix of the synthetic
  experiments (values scaled by 1/100 so they are small residuals).
* Fig. 11a — the 4-class homophily residual matrix of the DBLP experiment
  (values scaled by 1/100).

The Fig. 6b and Fig. 11a matrices are printed in the paper as small integers;
the experiments always multiply them by a scaling factor ``ε_H``, so the
absolute normalisation is irrelevant (Section 6.2).  We divide by 100 so the
default matrices are already "small residuals" in the sense of the derivation.
"""

from __future__ import annotations

import numpy as np

from repro.coupling.matrices import CouplingMatrix

__all__ = [
    "homophily_matrix",
    "heterophily_matrix",
    "fraud_matrix",
    "synthetic_residual_matrix",
    "dblp_residual_matrix",
    "general_homophily",
    "general_heterophily",
]


def homophily_matrix(epsilon: float = 1.0) -> CouplingMatrix:
    """Fig. 1a: binary homophily between Democrats (D) and Republicans (R)."""
    stochastic = np.array([
        [0.8, 0.2],
        [0.2, 0.8],
    ])
    return CouplingMatrix.from_stochastic(stochastic, epsilon=epsilon,
                                          class_names=("D", "R"))


def heterophily_matrix(epsilon: float = 1.0) -> CouplingMatrix:
    """Fig. 1b: binary heterophily between Talkative (T) and Silent (S)."""
    stochastic = np.array([
        [0.3, 0.7],
        [0.7, 0.3],
    ])
    return CouplingMatrix.from_stochastic(stochastic, epsilon=epsilon,
                                          class_names=("T", "S"))


def fraud_matrix(epsilon: float = 1.0) -> CouplingMatrix:
    """Fig. 1c: the general 3-class case (Honest / Accomplice / Fraudster).

    Honest people show homophily, accomplices and fraudsters form
    near-bipartite cores (heterophily between A and F).  This is also the
    coupling matrix used by Example 20 (after centering around 1/3).
    """
    stochastic = np.array([
        [0.6, 0.3, 0.1],
        [0.3, 0.0, 0.7],
        [0.1, 0.7, 0.2],
    ])
    return CouplingMatrix.from_stochastic(stochastic, epsilon=epsilon,
                                          class_names=("H", "A", "F"))


def synthetic_residual_matrix(epsilon: float = 1.0) -> CouplingMatrix:
    """Fig. 6b: the unscaled residual coupling matrix of the synthetic suite.

    The paper prints integer affinities ``[[10, -4, -6], [-4, 7, -3],
    [-6, -3, 9]]``; rows and columns sum to zero, so after dividing by 100
    this is directly a valid (small) residual matrix ``Ĥo``.
    """
    residual = np.array([
        [10.0, -4.0, -6.0],
        [-4.0, 7.0, -3.0],
        [-6.0, -3.0, 9.0],
    ]) / 100.0
    return CouplingMatrix.from_residual(residual, epsilon=epsilon,
                                        class_names=("c1", "c2", "c3"))


def dblp_residual_matrix(epsilon: float = 1.0) -> CouplingMatrix:
    """Fig. 11a: the 4-class homophily residual matrix of the DBLP experiment.

    The paper prints ``6`` on the diagonal and ``−2`` off the diagonal; the
    four classes are AI, DB, DM and IR.
    """
    residual = (np.full((4, 4), -2.0) + np.diag(np.full(4, 8.0))) / 100.0
    return CouplingMatrix.from_residual(residual, epsilon=epsilon,
                                        class_names=("AI", "DB", "DM", "IR"))


def general_homophily(num_classes: int, strength: float = 0.1,
                      epsilon: float = 1.0) -> CouplingMatrix:
    """A k-class homophily residual: ``+strength`` on the diagonal, balanced off it."""
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    off_diagonal = -strength / (num_classes - 1)
    residual = np.full((num_classes, num_classes), off_diagonal)
    np.fill_diagonal(residual, strength)
    return CouplingMatrix.from_residual(residual, epsilon=epsilon)


def general_heterophily(num_classes: int, strength: float = 0.1,
                        epsilon: float = 1.0) -> CouplingMatrix:
    """A k-class heterophily residual: ``−strength`` on the diagonal."""
    if num_classes < 2:
        raise ValueError("num_classes must be >= 2")
    off_diagonal = strength / (num_classes - 1)
    residual = np.full((num_classes, num_classes), off_diagonal)
    np.fill_diagonal(residual, -strength)
    return CouplingMatrix.from_residual(residual, epsilon=epsilon)
