"""Coupling (heterophily) matrices: residual centering, scaling, presets."""

from repro.coupling.matrices import (
    CouplingMatrix,
    is_doubly_stochastic,
    make_doubly_stochastic,
    residual_from_stochastic,
    stochastic_from_residual,
)
from repro.coupling.presets import (
    dblp_residual_matrix,
    fraud_matrix,
    general_heterophily,
    general_homophily,
    heterophily_matrix,
    homophily_matrix,
    synthetic_residual_matrix,
)

__all__ = [
    "CouplingMatrix",
    "is_doubly_stochastic",
    "make_doubly_stochastic",
    "residual_from_stochastic",
    "stochastic_from_residual",
    "dblp_residual_matrix",
    "fraud_matrix",
    "general_heterophily",
    "general_homophily",
    "heterophily_matrix",
    "homophily_matrix",
    "synthetic_residual_matrix",
]
