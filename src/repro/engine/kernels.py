"""Buffer-reuse numerical kernels for the propagation engine.

The LinBP update (Eq. 6) is three products — one sparse-times-dense
(``A @ B``), two small dense GEMMs (``· @ Ĥ`` and ``· @ Ĥ²``) — plus
element-wise combines.  Run naively, every iteration allocates a fresh
``n x k`` array per product; at high query rates the allocator, not the
FPU, becomes the bottleneck.  The kernels here write every product into a
caller-provided output buffer so a whole propagation runs on a fixed set
of preallocated arrays (see :class:`repro.engine.batch.BatchWorkspace`).

The sparse product has three tiers, tried in order:

1. ``scipy.sparse._sparsetools.csr_matvecs`` (the C++ routine behind
   ``csr_matrix.__matmul__``), which accumulates ``Y += A @ X`` into an
   existing row-major buffer.  Because the symbol is private, its
   availability is probed once at import time (:data:`HAVE_INPLACE_SPMM`).
2. The numba-compiled in-place sweep from :mod:`repro.engine.backend`
   (probed the same way, :data:`repro.engine.backend.HAVE_NUMBA`) — the
   fallback that keeps the zero-allocation path alive if a scipy release
   moves the private symbol.
3. The allocating ``A @ X`` as the last resort, and the generic path for
   non-numpy (e.g. CuPy) operands, whose libraries dispatch the
   operators natively.

Every kernel is dtype-preserving: operands must agree (float32 with
float32, float64 with float64 — enforced with a clear error, because the
allocating ``csr @ dense`` path would otherwise *silently upcast* on a
mismatch and scribble float64 results into a float32 buffer), and all
arithmetic runs in the operands' own dtype.  This is what makes the
float32 fast path of :mod:`repro.engine.precision` a pure bandwidth win:
the same kernels, half the bytes per element.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.engine import backend as _backend
from repro.exceptions import ValidationError

__all__ = ["HAVE_INPLACE_SPMM", "spmm", "block_matmul", "scale_rows",
           "max_abs_change_per_query"]

try:  # pragma: no cover - import probing
    from scipy.sparse import _sparsetools as _tools
    _csr_matvecs = getattr(_tools, "csr_matvecs", None)
except ImportError:  # pragma: no cover - very old/new scipy layouts
    _csr_matvecs = None

#: True when the zero-allocation CSR SpMM path is available.
HAVE_INPLACE_SPMM = _csr_matvecs is not None


def _check_spmm_dtypes(csr, dense, out) -> None:
    """Reject dtype disagreement before any product runs.

    The compiled in-place routines are dtype-templated (mixing operand
    widths would corrupt the output buffer), and the allocating
    ``csr @ dense`` fallback would silently upcast — computing in
    float64 and casting back, which defeats the bandwidth saving the
    caller asked for and masks plan/workspace dtype bugs.  One explicit
    guard keeps every tier honest.
    """
    if not (csr.dtype == dense.dtype == out.dtype):
        raise ValidationError(
            f"spmm dtype mismatch: adjacency is {csr.dtype}, dense block "
            f"is {dense.dtype}, out buffer is {out.dtype}; build the plan "
            f"and workspace with one dtype (see repro.engine.backend)")


def spmm(csr: sp.csr_matrix, dense: np.ndarray, out: np.ndarray,
         accumulate: bool = False) -> np.ndarray:
    """``out <- csr @ dense`` (or ``out += ...``) into the preallocated buffer.

    ``dense`` and ``out`` must be C-contiguous 2-D arrays of matching dtype
    (which must also match ``csr.data`` — enforced, see above).  With
    ``accumulate=True`` the product is added onto the existing contents
    of ``out`` — the engine uses this to fuse the ``Ê +`` term of the LinBP
    update into the sparse product for free (the underlying C routine is
    accumulating by nature; the non-accumulating form just zeroes first).
    Returns ``out`` for chaining.
    """
    _check_spmm_dtypes(csr, dense, out)
    if isinstance(out, np.ndarray) and out.flags.c_contiguous \
            and dense.flags.c_contiguous:
        if HAVE_INPLACE_SPMM:
            if not accumulate:
                out[...] = 0
            _csr_matvecs(csr.shape[0], csr.shape[1], dense.shape[1],
                         csr.indptr, csr.indices, csr.data,
                         dense.reshape(-1), out.reshape(-1))
            return out
        if _backend.HAVE_NUMBA:
            return _backend.numba_spmm(csr, dense, out, accumulate=accumulate)
    if accumulate:
        out += csr @ dense
    else:
        out[...] = csr @ dense
    return out


def block_matmul(block: np.ndarray, small: np.ndarray, out: np.ndarray,
                 num_classes: int) -> np.ndarray:
    """Per-query right-multiplication ``out <- block ·_k small``.

    ``block`` and ``out`` are ``n x (q·k)`` matrices whose columns are ``q``
    consecutive ``k``-wide query blocks; ``small`` is the shared ``k x k``
    coupling factor.  Because the blocks are contiguous, the batched product
    is a single GEMM on the ``(n·q) x k`` reshaped view — no per-query loop,
    no allocation.
    """
    n, qk = block.shape
    tall = block.reshape(n * (qk // num_classes), num_classes)
    np.matmul(tall, small, out=out.reshape(tall.shape))
    return out


def scale_rows(factors: np.ndarray, block: np.ndarray,
               out: np.ndarray) -> np.ndarray:
    """``out <- diag(factors) @ block`` (row scaling) without allocation."""
    np.multiply(factors[:, None], block, out=out)
    return out


def max_abs_change_per_query(new: np.ndarray, old: np.ndarray,
                             scratch: np.ndarray,
                             num_classes: int) -> np.ndarray:
    """Maximum absolute difference per ``k``-wide query block.

    Computes ``max |new - old|`` separately for each of the ``q`` stacked
    queries, using ``scratch`` (same shape) as the only working memory.
    The reduction runs over axis 0 first (a fast contiguous column
    reduction) and only then folds the ``k`` columns of each query.
    Returns a fresh length-``q`` vector in the buffers' dtype (tiny; the
    only allocation in the iteration loop).
    """
    n, qk = scratch.shape
    num_queries = qk // num_classes
    if n == 0:
        return np.zeros(num_queries, dtype=scratch.dtype)
    np.subtract(new, old, out=scratch)
    np.abs(scratch, out=scratch)
    if num_queries == 1:
        # Single query: one flat (contiguous) reduction is fastest.
        return np.array([scratch.max()])
    column_max = scratch.max(axis=0)
    return column_max.reshape(num_queries, num_classes).max(axis=1)
