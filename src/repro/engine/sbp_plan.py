"""Cached single-pass BP plans: geodesic structure + level-sliced kernels.

Single-pass BP (Section 6, Algorithm 2) is one sweep over the geodesic
levels of the labeled-node set.  Everything the sweep needs — geodesic
numbers from the vectorised multi-source BFS, the Lemma-17 DAG ``A*``
carved out of the adjacency with COO masks, and the per-level CSR slices
laid out contiguously — depends only on the *graph* and the *labeled-node
set*, not on the belief values or the coupling.  :class:`SBPPlan` bundles
those artifacts and :func:`get_sbp_plan` memoises them in an engine LRU
alongside :mod:`repro.engine.plan`'s LinBP plans, so repeated SBP queries
against one graph and label set pay the precomputation once.

On top of the plan:

* :meth:`SBPPlan.propagate` runs the single sweep as one
  ``csr_matvecs`` + GEMM pair per level against *only the previous
  level's rows*, over ping-pong buffers (the SBP analogue of
  :class:`repro.engine.batch.BatchWorkspace`);
* :func:`run_sbp_batch` stacks ``q`` explicit-belief matrices that share
  a labeled set into one ``n × (q·k)`` block and sweeps them together;
* :func:`repair_explicit_beliefs` / :func:`repair_added_edges` are the
  vectorised frontier repairs behind Algorithms 3 and 4 (ΔSBP): each
  wave gathers the frontier's parent rows at once, collapses them with a
  ``np.add.reduceat`` segment sum, and applies the residual coupling in
  a single GEMM — while keeping the "only touch changed nodes"
  accounting that the Fig. 7e experiment measures.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from repro.coupling.matrices import CouplingMatrix
from repro.core.results import PropagationResult
from repro.engine import backend as kernels_backend
from repro.engine import kernels
from repro.engine.plan import (
    PLAN_BUILDS,
    PLAN_CACHE_HITS,
    PLAN_CACHE_SIZE,
    GraphKeyedCache,
    register_auxiliary_cache,
)
from repro.exceptions import ValidationError
from repro.obs import counter, profile_sbp_query, span
from repro.graphs.geodesic import (
    UNREACHABLE,
    as_node_array,
    level_slices,
    neighbor_gather,
    neighbor_targets,
    segment_sum,
)
from repro.graphs.graph import Graph

__all__ = [
    "SBPPlan",
    "get_sbp_plan",
    "sbp_plan_cache_info",
    "run_sbp_batch",
    "RepairStats",
    "repair_explicit_beliefs",
    "repair_added_edges",
]

#: Shares the series of :data:`repro.engine.batch.SWEEPS` — get-or-create
#: on the default registry returns the same counter object.
SWEEPS = counter("repro_engine_sweeps_total",
                 "Propagation sweeps executed, by engine.")


class SBPPlan:
    """Precomputed single-pass structure for one ``(graph, labeled set)``.

    A plan is immutable once built and coupling-independent: the geodesic
    structure only depends on which nodes are labeled, so one plan serves
    every coupling matrix and every belief assignment over the same label
    set.  Instances are created by :func:`get_sbp_plan` (which caches
    them) or directly for one-off use.

    Attributes
    ----------
    labeled:
        Sorted, deduplicated labeled-node array the plan was built for.
    levels:
        The :class:`~repro.graphs.geodesic.GeodesicLevels` partition.
    slices:
        ``slices[g − 1]`` is the ``|level g| × |level g−1|`` CSR block of
        the Lemma-17 DAG ``A*`` — the only rows the sweep touches at
        level ``g`` — stored in the plan's dtype.
    dtype:
        Element type of the sweep (float64 default; float32 halves the
        bytes the level slices and belief buffers move).
    edges_per_sweep:
        Total ``A*`` entries one sweep reads (every edge at most once).
    """

    def __init__(self, graph: Graph, labeled_nodes: Iterable[int],
                 dtype=kernels_backend.DEFAULT_DTYPE):
        # Only a weak reference to the graph wrapper is kept; the plan owns
        # every artifact it needs, so a cached plan never pins a dead graph.
        self._graph_ref = weakref.ref(graph)
        self.labeled = as_node_array(labeled_nodes)
        self.dtype: np.dtype = kernels_backend.canonical_dtype(dtype)
        self.levels, self.slices = level_slices(graph, self.labeled)
        if any(block.dtype != self.dtype for block in self.slices):
            self.slices = [block.astype(self.dtype) for block in self.slices]
        self.num_nodes = graph.num_nodes
        self.max_level = self.levels.max_level
        self.max_width = max((nodes.size for nodes in self.levels.levels),
                             default=0)
        self.edges_per_sweep = int(sum(block.nnz for block in self.slices))
        self._slice_infinity_norms: Optional[List[float]] = None

    def slice_infinity_norms(self) -> List[float]:
        """``‖slice_g‖∞`` per level — the magnitude gain of each sweep step.

        Used by :mod:`repro.engine.precision` to price the float32
        rounding budget of the single sweep (error introduced at level
        ``g`` is amplified by at most the product of the later levels'
        norms).  Computed in float64 once and cached on the plan.
        """
        if self._slice_infinity_norms is None:
            norms = []
            for block in self.slices:
                if block.nnz:
                    norms.append(float(
                        abs(block.astype(np.float64)).sum(axis=1).max()))
                else:
                    norms.append(0.0)
            self._slice_infinity_norms = norms
        return self._slice_infinity_norms

    @property
    def graph(self) -> Optional[Graph]:
        """The graph this plan was built for (None once garbage collected)."""
        return self._graph_ref()

    @property
    def geodesic_numbers(self) -> np.ndarray:
        """Geodesic numbers of every node (shared array — copy to mutate)."""
        return self.levels.numbers

    # ------------------------------------------------------------------ #
    # the single sweep (Algorithm 2), level-sliced and batched
    # ------------------------------------------------------------------ #
    def propagate(self, explicit_block: np.ndarray,
                  residual: np.ndarray) -> Tuple[np.ndarray, int]:
        """One sweep over the levels for a stacked ``n × (q·k)`` block.

        ``explicit_block`` stacks ``q ≥ 1`` explicit-belief matrices side by
        side (``q = 1`` is the plain single-query case); ``residual`` is the
        ``k × k`` scaled coupling ``Ĥ``.  Level ``g`` is computed as
        ``B_g = (S_g B_{g−1}) Ĥ`` with one in-place GEMM and one
        ``csr_matvecs`` against the previous level's rows only, alternating
        between two preallocated level-width buffers.  Returns the full
        ``n × (q·k)`` belief block (zeros on unreachable nodes) and the
        number of ``A*`` entries read.
        """
        block = np.ascontiguousarray(explicit_block, dtype=self.dtype)
        if block.ndim != 2 or block.shape[0] != self.num_nodes:
            raise ValidationError(
                f"expected a 2-D block with {self.num_nodes} rows")
        k = residual.shape[0]
        width = block.shape[1]
        if width == 0 or width % k:
            raise ValidationError(
                f"block width {width} is not a multiple of k={k}")
        beliefs = np.zeros((self.num_nodes, width), dtype=self.dtype)
        if self.max_level < 0:
            return beliefs, 0
        base = self.levels.nodes_at(0)
        beliefs[base] = block[base]
        if self.max_level == 0:
            return beliefs, 0
        residual = np.ascontiguousarray(residual, dtype=self.dtype)
        front = np.empty((self.max_width, width), dtype=self.dtype)
        back = np.empty((self.max_width, width), dtype=self.dtype)
        scratch = np.empty((self.max_width, width), dtype=self.dtype)
        previous = front[:base.size]
        previous[...] = beliefs[base]
        for level in range(1, self.max_level + 1):
            slice_matrix = self.slices[level - 1]
            staged = scratch[:previous.shape[0]]
            kernels.block_matmul(previous, residual, out=staged, num_classes=k)
            current = back[:slice_matrix.shape[0]]
            kernels.spmm(slice_matrix, staged, out=current)
            beliefs[self.levels.nodes_at(level)] = current
            front, back = back, front
            previous = current
        return beliefs, self.edges_per_sweep


# ---------------------------------------------------------------------- #
# the SBP plan cache (joins the engine LRU via plan.register_auxiliary_cache)
# ---------------------------------------------------------------------- #
_sbp_plan_cache = GraphKeyedCache(PLAN_CACHE_SIZE)


def get_sbp_plan(graph: Graph, labeled_nodes: Iterable[int],
                 dtype=kernels_backend.DEFAULT_DTYPE) -> SBPPlan:
    """Return the (cached) single-pass plan for a graph and labeled set.

    The cache key is ``(graph identity, sorted labeled-node set,
    dtype)``; the coupling does not participate because the geodesic
    structure is coupling-independent.  Entries share the engine's LRU
    discipline (:data:`repro.engine.plan.PLAN_CACHE_SIZE` entries,
    weakref-evicted when the graph dies) and are cleared by
    :func:`repro.engine.plan.clear_plan_cache`.
    """
    labeled = as_node_array(labeled_nodes)
    key = (labeled.tobytes(), kernels_backend.dtype_name(dtype))
    plan = _sbp_plan_cache.lookup(graph, key)
    if plan is None:
        with span("engine.plan_build", kind="sbp",
                  nodes=graph.num_nodes, labeled=int(labeled.size)):
            plan = SBPPlan(graph, labeled, dtype=dtype)
        PLAN_BUILDS.inc(kind="sbp")
        _sbp_plan_cache.store(graph, key, plan)
    else:
        PLAN_CACHE_HITS.inc(kind="sbp")
    return plan


def sbp_plan_cache_info() -> Dict[str, int]:
    """SBP plan cache statistics: size plus cumulative hits/misses."""
    return {"sbp_size": len(_sbp_plan_cache),
            "sbp_hits": _sbp_plan_cache.stats["hits"],
            "sbp_misses": _sbp_plan_cache.stats["misses"]}


register_auxiliary_cache(_sbp_plan_cache.clear, sbp_plan_cache_info)


# ---------------------------------------------------------------------- #
# batched SBP over one shared plan
# ---------------------------------------------------------------------- #
def run_sbp_batch(graph: Graph, coupling: CouplingMatrix,
                  explicit_list: Sequence[np.ndarray],
                  dtype=kernels_backend.DEFAULT_DTYPE,
                  profile: bool = False
                  ) -> List[PropagationResult]:
    """Propagate many explicit-belief matrices through shared SBP plans.

    Queries are grouped by their labeled-node set (the non-zero rows of
    each matrix, exactly as :meth:`repro.core.sbp.SBP.run` determines it);
    every group shares one cached :class:`SBPPlan` and is swept as a single
    ``n × (q·k)`` stacked block, so the level structure is traversed once
    for the whole group.  Results come back in input order and match
    sequential :meth:`SBP.run` calls to floating-point round-off.

    ``dtype`` selects the sweep's element width (the level slices, the
    belief buffers and the returned beliefs); float64 — the default —
    reproduces the historical numerics bit for bit.  ``profile=True``
    attaches each query's traversal profile (level count, widest level,
    ``A*`` entries read — see :func:`repro.obs.profile_sbp_query`) to
    ``extra["profile"]``.
    """
    if len(explicit_list) == 0:
        return []
    dtype = kernels_backend.canonical_dtype(dtype)
    n, k = graph.num_nodes, coupling.num_classes
    checked: List[np.ndarray] = []
    for explicit in explicit_list:
        matrix = np.ascontiguousarray(explicit, dtype=dtype)
        if matrix.shape != (n, k):
            raise ValidationError(
                f"every explicit matrix must be {n} x {k}, got {matrix.shape}")
        checked.append(matrix)
    groups: "OrderedDict[bytes, Tuple[np.ndarray, List[int]]]" = OrderedDict()
    for index, matrix in enumerate(checked):
        labeled = np.nonzero(np.any(matrix != 0.0, axis=1))[0]
        key = labeled.tobytes()
        if key not in groups:
            groups[key] = (labeled, [])
        groups[key][1].append(index)
    residual = np.ascontiguousarray(coupling.residual, dtype=dtype)
    results: List[Optional[PropagationResult]] = [None] * len(checked)
    for labeled, indices in groups.values():
        plan = get_sbp_plan(graph, labeled, dtype=dtype)
        if len(indices) == 1:
            block = checked[indices[0]]
        else:
            block = np.concatenate([checked[i] for i in indices], axis=1)
        with span("engine.sweep", engine="sbp", queries=len(indices),
                  levels=max(0, plan.max_level)):
            beliefs, edges_touched = plan.propagate(block, residual)
        SWEEPS.inc(engine="sbp")
        for position, index in enumerate(indices):
            results[index] = PropagationResult(
                beliefs=np.ascontiguousarray(
                    beliefs[:, position * k:(position + 1) * k]),
                method="SBP",
                iterations=max(0, plan.max_level),
                converged=True,
                residual_history=[],
                extra={"geodesic_numbers": plan.geodesic_numbers.copy(),
                       "edges_touched": edges_touched,
                       "epsilon": coupling.epsilon,
                       "engine": "sbp_batch",
                       "dtype": dtype.name,
                       "batch_size": len(checked),
                       **({"profile": profile_sbp_query(plan, edges_touched)}
                          if profile else {})},
            )
    return results  # type: ignore[return-value]


# ---------------------------------------------------------------------- #
# vectorised incremental repairs (Algorithms 3 and 4)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class RepairStats:
    """Bookkeeping of one incremental repair.

    ``edges_touched`` counts parent edges read during belief recomputation
    (the Fig. 7d/7e cost proxy), ``nodes_updated`` the nodes whose geodesic
    number or belief was recomputed, and ``touched`` the sorted array of
    those nodes — the rows a relational caller must write back.
    """

    edges_touched: int
    nodes_updated: int
    touched: np.ndarray


def _recompute_frontier(adjacency: sp.csr_matrix, geodesic: np.ndarray,
                        beliefs: np.ndarray, explicit: np.ndarray,
                        residual: np.ndarray, nodes: np.ndarray) -> int:
    """Recompute ``beliefs[nodes]`` from each node's level−1 parents.

    The vectorised line 6 of Algorithms 3/4: one gather of every frontier
    node's adjacency row, a mask keeping parents exactly one level below
    their child, a ``reduceat`` segment sum of the weighted parent beliefs,
    and a single GEMM with the residual coupling.  Nodes at level 0 take
    their explicit beliefs; nodes without qualifying parents become zero
    (they lost their information source).  Returns the number of parent
    edges read.
    """
    levels = geodesic[nodes]
    roots = levels == 0
    if roots.any():
        beliefs[nodes[roots]] = explicit[nodes[roots]]
    work = nodes[~roots]
    if work.size == 0:
        return 0
    owner, parents, weights = neighbor_gather(adjacency, work)
    mask = geodesic[parents] == levels[~roots][owner] - 1
    owner, parents, weights = owner[mask], parents[mask], weights[mask]
    contributions = weights[:, None] * beliefs[parents]
    accumulated = segment_sum(contributions, owner, work.size)
    beliefs[work] = accumulated @ residual
    return int(mask.sum())


def repair_explicit_beliefs(adjacency: sp.csr_matrix, geodesic: np.ndarray,
                            beliefs: np.ndarray, explicit: np.ndarray,
                            residual: np.ndarray, nodes: np.ndarray,
                            vectors: np.ndarray) -> RepairStats:
    """Algorithm 3 (ΔSBP, new explicit beliefs) as vectorised frontier waves.

    Mutates ``geodesic``, ``beliefs`` and ``explicit`` in place.  Wave
    ``i`` visits the neighbours of wave ``i−1`` whose geodesic number is
    not already smaller than ``i`` and recomputes their beliefs from *all*
    their level-``i−1`` parents; the update stops as soon as a wave adds no
    node, so only the region whose nearest labeled node changed is touched.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    explicit[nodes] = vectors
    beliefs[nodes] = vectors
    geodesic[nodes] = 0
    nodes_updated = int(nodes.size)
    edges_touched = 0
    waves = [nodes]
    frontier = nodes
    level = 1
    while frontier.size:
        neighbors = neighbor_targets(adjacency, frontier)
        if neighbors.size == 0:
            break
        candidates = np.unique(neighbors)
        current = geodesic[candidates]
        frontier = candidates[(current == UNREACHABLE) | (current >= level)]
        if frontier.size == 0:
            break
        geodesic[frontier] = level
        edges_touched += _recompute_frontier(adjacency, geodesic, beliefs,
                                             explicit, residual, frontier)
        nodes_updated += int(frontier.size)
        waves.append(frontier)
        level += 1
    return RepairStats(edges_touched, nodes_updated,
                       np.unique(np.concatenate(waves)))


def _dedupe_minimum(nodes: np.ndarray,
                    numbers: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Unique nodes with the minimum associated number per node."""
    order = np.argsort(nodes, kind="stable")
    nodes, numbers = nodes[order], numbers[order]
    unique_nodes, first = np.unique(nodes, return_index=True)
    return unique_nodes, np.minimum.reduceat(numbers, first)


def repair_added_edges(adjacency: sp.csr_matrix, geodesic: np.ndarray,
                       beliefs: np.ndarray, explicit: np.ndarray,
                       residual: np.ndarray, sources: np.ndarray,
                       targets: np.ndarray) -> RepairStats:
    """Algorithm 4 (ΔSBP, new edges) as vectorised frontier waves.

    ``adjacency`` must already contain the new edges; ``sources``/``targets``
    are the endpoints of the edges just added.  Seed nodes — endpoints that
    gained a shorter (or first) geodesic path, or an additional shortest
    path of the same length — are found with one mask over the endpoint
    arrays; the repair then relaxes outwards, rewriting geodesic numbers
    where they shrink and refreshing children whose shortest-path parents
    changed beliefs, until no node changes.  Mutates ``geodesic`` and
    ``beliefs`` in place.
    """
    sources = np.asarray(sources, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    endpoint_from = np.concatenate((sources, targets))
    endpoint_to = np.concatenate((targets, sources))
    from_levels = geodesic[endpoint_from]
    valid = from_levels != UNREACHABLE
    candidates = from_levels[valid] + 1
    endpoint_to = endpoint_to[valid]
    current = geodesic[endpoint_to]
    seeded = (current == UNREACHABLE) | (candidates <= current)
    if not seeded.any():
        return RepairStats(0, 0, np.empty(0, dtype=np.int64))
    frontier_nodes, frontier_numbers = _dedupe_minimum(endpoint_to[seeded],
                                                       candidates[seeded])
    geodesic[frontier_nodes] = frontier_numbers
    nodes_updated = 0
    edges_touched = 0
    waves: List[np.ndarray] = []
    while frontier_nodes.size:
        edges_touched += _recompute_frontier(adjacency, geodesic, beliefs,
                                             explicit, residual, frontier_nodes)
        nodes_updated += int(frontier_nodes.size)
        waves.append(frontier_nodes)
        owner, neighbors, _ = neighbor_gather(adjacency, frontier_nodes)
        if neighbors.size == 0:
            break
        candidates = frontier_numbers[owner] + 1
        current = geodesic[neighbors]
        improved = (current == UNREACHABLE) | (candidates < current)
        # A parent on a shortest path changed its belief, so the child must
        # be refreshed even though its geodesic number is stable.  (Between
        # waves geodesic[frontier_nodes] == frontier_numbers, so this equals
        # the sequential algorithm's geodesic[parent] + 1 == current test.)
        refreshed = candidates == current
        selected = improved | refreshed
        if not selected.any():
            break
        frontier_nodes, frontier_numbers = _dedupe_minimum(
            neighbors[selected], candidates[selected])
        # Every selected candidate is <= the node's current level (or the
        # node was unreachable), so the minimum is the new geodesic number.
        geodesic[frontier_nodes] = frontier_numbers
    return RepairStats(edges_touched, nodes_updated,
                       np.unique(np.concatenate(waves)) if waves
                       else np.empty(0, dtype=np.int64))
