"""Lemma-8-certified mixed-precision propagation.

The LinBP sweep is memory-bandwidth-bound, so running it in float32
roughly doubles SpMM throughput (half the bytes per element) — *if* the
answer is still trustworthy.  This module prices that trade a priori:

* **LinBP.**  The iteration ``B ← Ê + A(BĤ) − D(BĤ²)`` is a linear
  fixed-point map whose Lemma 8 spectral radius ``ρ`` the plan already
  caches.  When ``ρ < 1`` every perturbation — including float32
  rounding — is amplified by at most the geometric series ``1/(1−ρ)``.
  One sweep rounds quantities no larger than ``s + m·s/(1−ρ)`` where
  ``s`` is the magnitude of the explicit beliefs, ``m`` the update
  operator's ∞-norm (:meth:`PropagationPlan.operator_infinity_norm`)
  and ``s/(1−ρ)`` the belief-magnitude ceiling; with unit roundoff
  ``u₃₂ = 2⁻²³`` and a safety factor covering the handful of rounded
  operations per sweep, the total float32 error obeys

  .. math::  e_\\infty \\;\\le\\; \\frac{u_{32} \\cdot S \\cdot
             (s + m \\cdot s/(1-\\rho))}{1-\\rho}.

* **SBP.**  The single pass multiplies through the ``L`` level slices
  once; error introduced at one level is amplified by at most the
  product of the downstream per-level gains ``g_j = ‖S_j‖_\\infty ·
  ‖Ĥ‖_\\infty`` (:meth:`SBPPlan.slice_infinity_norms`), giving the
  budget ``e_L ≤ u₃₂·S·s·L·max(∏ g_j, 1)``.

:func:`decide_linbp`/:func:`decide_sbp` evaluate those budgets against a
caller tolerance and return a :class:`PrecisionDecision`;
:func:`run_batch_auto`/:func:`run_sbp_batch_auto` act on the decision —
certified float32 sweep, plain float64 fallback, or (for LinBP) a
float32 *presolve* whose converged beliefs seed a short float64
refinement, so the expensive exact sweeps start next to the fixed point.

Honesty note: at the engine's default tolerance of ``1e-10`` float32 can
**never** certify (``u₃₂ ≈ 1.19e-7`` alone exceeds it), so auto mode
degrades to exact float64 unless the caller loosens the tolerance — the
certificate refuses rather than hand-waves.  All bounds are computed in
float64 from float64 sources; a certificate must not be computed in the
precision it certifies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.core.results import PropagationResult
from repro.engine import backend as array_backend
from repro.engine.batch import run_batch
from repro.engine.plan import PropagationPlan, get_plan
from repro.engine.sbp_plan import SBPPlan, get_sbp_plan, run_sbp_batch
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph

__all__ = [
    "PRECISION_MODES",
    "FLOAT32_SAFETY",
    "PrecisionDecision",
    "validate_precision",
    "strict_decision",
    "explicit_scale",
    "linbp_float32_bound",
    "sbp_float32_bound",
    "decide_linbp",
    "decide_sbp",
    "run_batch_auto",
    "run_sbp_batch_auto",
]

#: Recognised precision modes: ``strict`` pins the requested dtype,
#: ``auto`` certifies float32 against the tolerance and falls back.
PRECISION_MODES = ("strict", "auto")

#: Safety factor over the unit roundoff: one LinBP sweep (or one SBP
#: level) rounds a handful of fused products and element-wise combines
#: per entry — SpMM accumulate, two GEMMs, the echo subtraction — each
#: contributing O(u) relative error.  Eight covers them with slack.
FLOAT32_SAFETY = 8.0

#: float32 unit roundoff (machine epsilon), 2**-23.
_U32 = float(np.finfo(np.float32).eps)


@dataclass(frozen=True)
class PrecisionDecision:
    """The outcome of a mixed-precision certification.

    ``dtype`` is the element type the sweep actually ran (or should run)
    in; ``certified`` is True only when the float32 rounding budget was
    *proven* within ``tolerance`` (strict mode never certifies — it does
    not evaluate the budget at all).  ``error_bound`` is the evaluated
    float32 budget (None when not evaluated, ``inf`` when no a-priori
    bound exists because ``ρ ≥ 1``), and ``reason`` says in one sentence
    why the decision came out the way it did.
    """

    mode: str
    dtype: str
    certified: bool
    tolerance: float
    error_bound: Optional[float] = None
    spectral_radius: Optional[float] = None
    reason: str = ""

    def as_extra(self) -> Dict[str, object]:
        """The decision as a result-``extra`` payload (plain scalars)."""
        return {
            "mode": self.mode,
            "dtype": self.dtype,
            "certified": self.certified,
            "tolerance": self.tolerance,
            "error_bound": self.error_bound,
            "spectral_radius": self.spectral_radius,
            "reason": self.reason,
        }


def validate_precision(mode: str) -> str:
    """Normalise/validate a precision mode, listing the valid choices."""
    if mode not in PRECISION_MODES:
        known = ", ".join(PRECISION_MODES)
        raise ValidationError(
            f"unknown precision mode {mode!r}; valid modes: {known}")
    return mode


def strict_decision(dtype, tolerance: float) -> PrecisionDecision:
    """The (non-)decision of strict mode: run exactly the dtype asked for."""
    name = array_backend.dtype_name(dtype)
    return PrecisionDecision(
        mode="strict", dtype=name, certified=False,
        tolerance=float(tolerance),
        reason=f"strict mode pins {name}; no certification performed")


def explicit_scale(explicit_list: Sequence[np.ndarray]) -> float:
    """``s = max |Ê|`` over a batch — the magnitude the budgets scale with."""
    scale = 0.0
    for explicit in explicit_list:
        matrix = np.asarray(explicit)
        if matrix.size:
            scale = max(scale, float(np.abs(matrix).max()))
    return scale


# ---------------------------------------------------------------------- #
# the rounding-error budgets
# ---------------------------------------------------------------------- #
def _max_row_nnz(indptr) -> int:
    """Longest CSR row — the dot-product accumulation length of the SpMM."""
    pointers = np.asarray(indptr)
    if pointers.size <= 1:
        return 0
    return int(np.diff(pointers).max())


def linbp_float32_bound(plan: PropagationPlan, scale: float = 1.0) -> float:
    """Worst-case float32 *rounding* error of a LinBP run on this plan.

    ``u₃₂·C·(s + m·B_max)/(1−ρ)`` with ``B_max = s/(1−ρ)`` and the
    operation-count constant ``C = S + p + k`` (``p`` = longest adjacency
    row, ``k`` = classes — the dot-product accumulation lengths whose
    rounding compounds per entry, plus the :data:`FLOAT32_SAFETY` slack
    for the element-wise combines).  ``inf`` when ``ρ ≥ 1``: the
    geometric amplification argument needs contraction.
    """
    radius = plan.update_spectral_radius()
    if radius >= 1.0:
        return math.inf
    scale = float(scale)
    belief_ceiling = scale / (1.0 - radius)
    indptr = plan.backend.to_numpy(plan.adjacency.indptr) \
        if not isinstance(plan.adjacency.indptr, np.ndarray) \
        else plan.adjacency.indptr
    operations = FLOAT32_SAFETY + _max_row_nnz(indptr) + plan.num_classes
    per_sweep = _U32 * operations * (
        scale + plan.operator_infinity_norm() * belief_ceiling)
    return per_sweep / (1.0 - radius)


def sbp_float32_bound(plan: SBPPlan, residual_norm: float,
                      scale: float = 1.0) -> float:
    """Worst-case float32 rounding error of one SBP sweep on this plan.

    ``u₃₂·C·s·L·max(∏ g_j, 1)`` where ``g_j = ‖S_j‖∞·‖Ĥ‖∞`` is the
    magnitude gain of level ``j`` — error injected at any level is
    amplified by at most the product of the gains downstream of it, and
    each of the ``L`` levels injects fresh rounding.  ``C`` folds in the
    longest slice row (the SpMM accumulation length) next to the
    :data:`FLOAT32_SAFETY` slack.
    """
    norms = plan.slice_infinity_norms()
    amplification = 1.0
    for slice_norm in norms:
        amplification *= slice_norm * float(residual_norm)
    levels = max(len(norms), 1)
    row_nnz = max((_max_row_nnz(block.indptr) for block in plan.slices),
                  default=0)
    operations = FLOAT32_SAFETY + row_nnz
    return _U32 * operations * float(scale) * levels \
        * max(amplification, 1.0)


# ---------------------------------------------------------------------- #
# the decisions
# ---------------------------------------------------------------------- #
def decide_linbp(plan: PropagationPlan, tolerance: float,
                 scale: float = 1.0) -> PrecisionDecision:
    """Certify (or refuse) a float32 LinBP run within ``tolerance``.

    The certificate bounds the float32 run's total deviation from the
    *exact fixed point*: the rounding budget of
    :func:`linbp_float32_bound` plus the early-stopping truncation
    ``tol·ρ/(1−ρ)`` that any run halting at belief-change ``tol``
    incurs (a contraction step of size ``δ`` leaves the iterate within
    ``δ·ρ/(1−ρ)`` of the fixed point).  Certified iff that total fits
    the tolerance — so a certified float32 answer is as close to the
    truth as the tolerance promises, rounding included.

    ``plan`` should be the float64 reference plan — its cached spectral
    radius and operator norm price the budget; the float32 plan never
    needs to exist when the decision is a refusal.
    """
    radius = plan.update_spectral_radius()
    if radius >= 1.0:
        return PrecisionDecision(
            mode="auto", dtype="float64", certified=False,
            tolerance=float(tolerance), error_bound=math.inf,
            spectral_radius=radius,
            reason=f"Lemma 8 radius {radius:.4f} >= 1: no a-priori rounding "
                   f"bound exists; running exact float64")
    rounding = linbp_float32_bound(plan, scale=scale)
    truncation = float(tolerance) * radius / (1.0 - radius)
    bound = rounding + truncation
    if bound <= tolerance:
        return PrecisionDecision(
            mode="auto", dtype="float32", certified=True,
            tolerance=float(tolerance), error_bound=bound,
            spectral_radius=radius,
            reason=f"float32 deviation bound {bound:.3e} (rounding "
                   f"{rounding:.3e} + stopping truncation {truncation:.3e}) "
                   f"<= tolerance {tolerance:.3e} (Lemma 8 radius "
                   f"{radius:.4f})")
    return PrecisionDecision(
        mode="auto", dtype="float64", certified=False,
        tolerance=float(tolerance), error_bound=bound,
        spectral_radius=radius,
        reason=f"float32 deviation bound {bound:.3e} (rounding "
               f"{rounding:.3e} + stopping truncation {truncation:.3e}) "
               f"exceeds tolerance {tolerance:.3e}; falling back to float64")


def decide_sbp(graph: Graph, coupling: CouplingMatrix,
               explicit_list: Sequence[np.ndarray],
               tolerance: float) -> PrecisionDecision:
    """Certify (or refuse) a float32 SBP sweep for a whole batch.

    The batch may mix labeled-node sets (each with its own level
    structure), so the certificate takes the worst budget over the
    distinct sets — exactly the groups :func:`run_sbp_batch` will sweep.
    """
    scale = explicit_scale(explicit_list)
    residual64 = np.asarray(coupling.residual, dtype=np.float64)
    residual_norm = float(np.abs(residual64).sum(axis=1).max()) \
        if residual64.size else 0.0
    bound = 0.0
    for explicit in explicit_list:
        matrix = np.asarray(explicit)
        labeled = np.nonzero(np.any(matrix != 0.0, axis=1))[0]
        plan = get_sbp_plan(graph, labeled)
        bound = max(bound, sbp_float32_bound(plan, residual_norm,
                                             scale=scale))
    if bound <= tolerance:
        return PrecisionDecision(
            mode="auto", dtype="float32", certified=True,
            tolerance=float(tolerance), error_bound=bound,
            reason=f"float32 single-sweep bound {bound:.3e} <= tolerance "
                   f"{tolerance:.3e} over {len(explicit_list)} queries")
    return PrecisionDecision(
        mode="auto", dtype="float64", certified=False,
        tolerance=float(tolerance), error_bound=bound,
        reason=f"float32 single-sweep bound {bound:.3e} exceeds tolerance "
               f"{tolerance:.3e}; falling back to float64")


# ---------------------------------------------------------------------- #
# the drivers
# ---------------------------------------------------------------------- #
#: Stopping tolerance of the float32 presolve in refine mode — loose
#: enough for float32 to reach it, tight enough that the float64
#: refinement starts within a few sweeps of the fixed point.
PRESOLVE_TOLERANCE = 1e-4


def run_batch_auto(graph: Graph, coupling: CouplingMatrix,
                   explicit_list: Sequence[np.ndarray],
                   echo_cancellation: bool = True,
                   max_iterations: int = 100, tolerance: float = 1e-10,
                   num_iterations: Optional[int] = None,
                   require_convergence: bool = False,
                   refine: bool = True,
                   ) -> Tuple[List[PropagationResult], PrecisionDecision]:
    """Auto-precision LinBP batch: certified float32, else float64.

    Evaluates :func:`decide_linbp` against the batch's explicit scale.
    Certified → the whole run happens on the float32 plan.  Refused with
    ``ρ < 1`` and ``refine=True`` → a float32 *presolve* converges to
    :data:`PRESOLVE_TOLERANCE` first and its beliefs (upcast) seed the
    exact float64 run, which then only needs the last few contraction
    steps; the returned iteration counts and residual histories cover
    the float64 refinement (the sweeps whose numerics the caller gets).
    Refused with ``ρ ≥ 1`` → plain float64, nothing to presolve with.
    A fixed ``num_iterations`` also skips the presolve — the caller
    asked for an exact sweep count, which seeding would distort.

    Returns the per-query results (each carrying the decision under
    ``extra["precision"]``) and the decision itself.
    """
    tolerance = float(tolerance)
    if tolerance <= 0:
        raise ValidationError("tolerance must be positive")
    plan64 = get_plan(graph, coupling, echo_cancellation=echo_cancellation)
    if not explicit_list:
        return [], decide_linbp(plan64, tolerance, scale=0.0)
    scale = explicit_scale(explicit_list)
    decision = decide_linbp(plan64, tolerance, scale=scale)
    if decision.certified:
        plan32 = get_plan(graph, coupling,
                          echo_cancellation=echo_cancellation,
                          dtype=np.float32)
        results = run_batch(plan32, explicit_list,
                            max_iterations=max_iterations,
                            tolerance=tolerance,
                            num_iterations=num_iterations,
                            require_convergence=require_convergence)
    else:
        initial: Optional[List[Optional[np.ndarray]]] = None
        presolved = False
        if refine and num_iterations is None \
                and decision.spectral_radius is not None \
                and decision.spectral_radius < 1.0 \
                and tolerance < PRESOLVE_TOLERANCE:
            plan32 = get_plan(graph, coupling,
                              echo_cancellation=echo_cancellation,
                              dtype=np.float32)
            warm = run_batch(plan32, explicit_list,
                             max_iterations=max_iterations,
                             tolerance=PRESOLVE_TOLERANCE)
            initial = [result.beliefs.astype(np.float64)
                       for result in warm]
            presolved = True
        results = run_batch(plan64, explicit_list, initial_beliefs=initial,
                            max_iterations=max_iterations,
                            tolerance=tolerance,
                            num_iterations=num_iterations,
                            require_convergence=require_convergence)
        if presolved:
            decision = PrecisionDecision(
                mode=decision.mode, dtype=decision.dtype,
                certified=decision.certified, tolerance=decision.tolerance,
                error_bound=decision.error_bound,
                spectral_radius=decision.spectral_radius,
                reason=decision.reason + "; float32 presolve seeded the "
                       "float64 refinement")
    payload = decision.as_extra()
    for result in results:
        result.extra["precision"] = dict(payload)
    return results, decision


def run_sbp_batch_auto(graph: Graph, coupling: CouplingMatrix,
                       explicit_list: Sequence[np.ndarray],
                       tolerance: float = 1e-10,
                       ) -> Tuple[List[PropagationResult], PrecisionDecision]:
    """Auto-precision SBP batch: certified float32 sweep, else float64.

    SBP is a single pass — there is nothing to refine — so the refusal
    path is simply the exact float64 sweep.  Returns the per-query
    results (decision attached under ``extra["precision"]``) and the
    decision.
    """
    tolerance = float(tolerance)
    if tolerance <= 0:
        raise ValidationError("tolerance must be positive")
    if not explicit_list:
        return [], PrecisionDecision(
            mode="auto", dtype="float64", certified=False,
            tolerance=tolerance, reason="empty batch; nothing to certify")
    decision = decide_sbp(graph, coupling, explicit_list, tolerance)
    results = run_sbp_batch(graph, coupling, explicit_list,
                            dtype=np.float32 if decision.certified
                            else np.float64)
    payload = decision.as_extra()
    for result in results:
        result.extra["precision"] = dict(payload)
    return results, decision
