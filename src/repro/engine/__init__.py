"""Shared propagation engine: cached plans + batched buffer-reuse kernels.

This layer sits between the solver front ends (:mod:`repro.core.linbp`,
:mod:`repro.core.fabp`, :mod:`repro.core.sbp`, the experiment drivers)
and the raw linear algebra.  It contributes four things the
one-query-at-a-time API could not:

* :mod:`repro.engine.plan` — :class:`PropagationPlan`, a cached bundle of
  per-``(graph, coupling, echo_cancellation, dtype, backend)`` artifacts
  (canonical CSR adjacency, squared-degree vector, scaled residual
  coupling and its square, lazily the Lemma 8 spectral radius and the
  update operator's ∞-norm), plus a cached sparse LU factorisation for
  the binary FaBP closed form;
* :mod:`repro.engine.batch` — :func:`run_batch`, which propagates many
  explicit-belief matrices concurrently as one ``n x (q·k)`` block over
  preallocated ping-pong buffers (:class:`BatchWorkspace`), using the
  in-place kernels of :mod:`repro.engine.kernels`;
* :mod:`repro.engine.sbp_plan` — :class:`SBPPlan`, the single-pass
  analogue: cached geodesic structure (vectorised multi-source BFS, the
  Lemma-17 DAG, contiguous per-level CSR slices) per
  ``(graph, labeled set)``, :func:`run_sbp_batch` for stacked SBP
  queries, and the vectorised ΔSBP frontier repairs behind
  Algorithms 3–4;
* :mod:`repro.engine.backend` + :mod:`repro.engine.precision` — the
  array-backend/dtype layer (numpy default, capability-gated cupy, a
  numba-compiled CSR sweep fallback) and the Lemma-8-certified float32
  fast path: :func:`run_batch_auto` runs certified float32 when the
  rounding budget fits the tolerance and falls back (or presolves and
  refines) in exact float64 otherwise.

See ``docs/performance.md`` for the API guide and caching semantics.
"""

from repro.engine.backend import (
    ARRAY_BACKENDS,
    DEFAULT_DTYPE,
    HAVE_NUMBA,
    SUPPORTED_DTYPES,
    array_backend_info,
    canonical_dtype,
    get_array_backend,
)
from repro.engine.batch import BatchWorkspace, run_batch
from repro.engine.kernels import HAVE_INPLACE_SPMM
from repro.engine.plan import (
    PropagationPlan,
    clear_plan_cache,
    get_binary_solver,
    get_plan,
    plan_cache_info,
)
from repro.engine.precision import (
    PRECISION_MODES,
    PrecisionDecision,
    decide_linbp,
    decide_sbp,
    run_batch_auto,
    run_sbp_batch_auto,
)
from repro.engine.sbp_plan import (
    SBPPlan,
    get_sbp_plan,
    repair_added_edges,
    repair_explicit_beliefs,
    run_sbp_batch,
    sbp_plan_cache_info,
)

__all__ = [
    "ARRAY_BACKENDS",
    "DEFAULT_DTYPE",
    "HAVE_NUMBA",
    "SUPPORTED_DTYPES",
    "array_backend_info",
    "canonical_dtype",
    "get_array_backend",
    "BatchWorkspace",
    "run_batch",
    "HAVE_INPLACE_SPMM",
    "PropagationPlan",
    "clear_plan_cache",
    "get_binary_solver",
    "get_plan",
    "plan_cache_info",
    "PRECISION_MODES",
    "PrecisionDecision",
    "decide_linbp",
    "decide_sbp",
    "run_batch_auto",
    "run_sbp_batch_auto",
    "SBPPlan",
    "get_sbp_plan",
    "repair_added_edges",
    "repair_explicit_beliefs",
    "run_sbp_batch",
    "sbp_plan_cache_info",
]
