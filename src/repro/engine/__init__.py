"""Shared propagation engine: cached plans + batched buffer-reuse kernels.

This layer sits between the solver front ends (:mod:`repro.core.linbp`,
:mod:`repro.core.fabp`, :mod:`repro.core.sbp`, the experiment drivers)
and the raw linear algebra.  It contributes three things the
one-query-at-a-time API could not:

* :mod:`repro.engine.plan` — :class:`PropagationPlan`, a cached bundle of
  per-``(graph, coupling, echo_cancellation)`` artifacts (canonical CSR
  adjacency, squared-degree vector, scaled residual coupling and its
  square, lazily the Lemma 8 spectral radius), plus a cached sparse LU
  factorisation for the binary FaBP closed form;
* :mod:`repro.engine.batch` — :func:`run_batch`, which propagates many
  explicit-belief matrices concurrently as one ``n x (q·k)`` block over
  preallocated ping-pong buffers (:class:`BatchWorkspace`), using the
  in-place kernels of :mod:`repro.engine.kernels`;
* :mod:`repro.engine.sbp_plan` — :class:`SBPPlan`, the single-pass
  analogue: cached geodesic structure (vectorised multi-source BFS, the
  Lemma-17 DAG, contiguous per-level CSR slices) per
  ``(graph, labeled set)``, :func:`run_sbp_batch` for stacked SBP
  queries, and the vectorised ΔSBP frontier repairs behind
  Algorithms 3–4.

See ``docs/performance.md`` for the API guide and caching semantics.
"""

from repro.engine.batch import BatchWorkspace, run_batch
from repro.engine.kernels import HAVE_INPLACE_SPMM
from repro.engine.plan import (
    PropagationPlan,
    clear_plan_cache,
    get_binary_solver,
    get_plan,
    plan_cache_info,
)
from repro.engine.sbp_plan import (
    SBPPlan,
    get_sbp_plan,
    repair_added_edges,
    repair_explicit_beliefs,
    run_sbp_batch,
    sbp_plan_cache_info,
)

__all__ = [
    "BatchWorkspace",
    "run_batch",
    "HAVE_INPLACE_SPMM",
    "PropagationPlan",
    "clear_plan_cache",
    "get_binary_solver",
    "get_plan",
    "plan_cache_info",
    "SBPPlan",
    "get_sbp_plan",
    "repair_added_edges",
    "repair_explicit_beliefs",
    "run_sbp_batch",
    "sbp_plan_cache_info",
]
