"""The array-backend layer: who allocates buffers, in which dtype, where.

Every kernel in :mod:`repro.engine.kernels` is memory-bandwidth-bound —
the LinBP sweep is one SpMM plus two thin GEMMs per iteration, all
streaming — so the two levers that matter are *element width* and
*device*.  This module makes both pluggable without touching the kernel
or plan code:

* :class:`ArrayBackend` — the small protocol the engine needs from an
  array library: allocate (``empty``/``zeros``), ingest (``asarray``,
  ``csr``), and export (``to_numpy``).  :class:`NumpyBackend` is the
  always-available default; :class:`CupyBackend` is capability-gated the
  same way the DuckDB SQL backend is — registered, reported, selectable,
  and failing with a clear :class:`~repro.exceptions
  .BackendUnavailableError` (not an opaque ``ImportError``) when the
  package is absent.
* **dtype support.**  :data:`SUPPORTED_DTYPES` names the element types
  the kernel stack accepts (float32 and float64); :func:`canonical_dtype`
  normalises user input (strings, ``np.float32``, dtype objects) and
  rejects everything else with the valid choices listed.  Plans key
  their caches on the canonical dtype name, so a float32 and a float64
  plan for the same graph coexist.
* **A compiled CSR sweep fallback.**  The zero-allocation SpMM path in
  :mod:`repro.engine.kernels` rides a *private* scipy symbol
  (``_sparsetools.csr_matvecs``); when a scipy release moves it, the
  engine would silently fall back to the allocating ``A @ X``.  This
  module probes :mod:`numba` at import (:data:`HAVE_NUMBA`, mirroring
  ``HAVE_INPLACE_SPMM``) and, when present, compiles an equivalent
  in-place row-major CSR sweep on first use — so the fast path survives
  scipy layout changes on hosts with numba installed.

``repro backends`` prints :func:`array_backend_info` so operators can
see at a glance which backends, dtypes and compiled paths a host offers.
"""

from __future__ import annotations

import importlib.util
from typing import Dict, List, Union

import numpy as np
import scipy.sparse as sp

from repro.exceptions import BackendUnavailableError, UnknownBackendError

__all__ = [
    "SUPPORTED_DTYPES",
    "DEFAULT_DTYPE",
    "canonical_dtype",
    "dtype_name",
    "ArrayBackend",
    "NumpyBackend",
    "CupyBackend",
    "ARRAY_BACKENDS",
    "get_array_backend",
    "array_backend_info",
    "HAVE_NUMBA",
    "numba_spmm",
]

#: Element types the kernel stack accepts, keyed by canonical name.
SUPPORTED_DTYPES: Dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

#: The historical (and exact) default.
DEFAULT_DTYPE: np.dtype = SUPPORTED_DTYPES["float64"]

DTypeLike = Union[str, np.dtype, type]


def canonical_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalise a dtype spec to one of :data:`SUPPORTED_DTYPES`.

    Accepts canonical names (``"float32"``), numpy scalar types and
    dtype objects; anything else raises with the valid choices listed.
    """
    try:
        resolved = np.dtype(dtype)
    except TypeError:
        resolved = None
    if resolved is not None:
        for candidate in SUPPORTED_DTYPES.values():
            if resolved == candidate:
                return candidate
    known = ", ".join(sorted(SUPPORTED_DTYPES))
    raise UnknownBackendError(
        f"unsupported dtype {dtype!r}; the kernel layer supports: {known}")


def dtype_name(dtype: DTypeLike) -> str:
    """The canonical name (cache-key component) of a supported dtype."""
    return canonical_dtype(dtype).name


# ---------------------------------------------------------------------- #
# array backends
# ---------------------------------------------------------------------- #
class ArrayBackend:
    """What the engine needs from an array library, and nothing more.

    Buffers are allocated through the backend (``empty``/``zeros``),
    inputs converted on the way in (``asarray`` for dense,
    ``csr`` for the adjacency), results converted on the way out
    (``to_numpy``).  The kernels themselves stay backend-agnostic: they
    take whatever arrays the plan and workspace hand them and use either
    the compiled CPU paths (numpy operands) or generic operators
    (everything else — cupy arrays dispatch ufuncs natively).
    """

    name: str = "abstract"

    @classmethod
    def is_available(cls) -> bool:
        """Whether this backend can actually run on the current host."""
        raise NotImplementedError

    @classmethod
    def engine_version(cls) -> str:
        """Human-readable underlying library version (for reports)."""
        raise NotImplementedError

    def asarray(self, array, dtype: np.dtype):
        """A C-contiguous backend array of the given dtype."""
        raise NotImplementedError

    def empty(self, shape, dtype: np.dtype):
        """Uninitialised backend array."""
        raise NotImplementedError

    def zeros(self, shape, dtype: np.dtype):
        """Zero-initialised backend array."""
        raise NotImplementedError

    def csr(self, matrix: sp.csr_matrix, dtype: np.dtype):
        """The adjacency as this backend's CSR type in the given dtype."""
        raise NotImplementedError

    def to_numpy(self, array) -> np.ndarray:
        """Materialise a backend array as numpy (identity on numpy)."""
        raise NotImplementedError


class NumpyBackend(ArrayBackend):
    """The default host-memory backend; exact and always available."""

    name = "numpy"

    @classmethod
    def is_available(cls) -> bool:
        return True

    @classmethod
    def engine_version(cls) -> str:
        return f"numpy {np.__version__}"

    def asarray(self, array, dtype: np.dtype) -> np.ndarray:
        return np.ascontiguousarray(array, dtype=dtype)

    def empty(self, shape, dtype: np.dtype) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def zeros(self, shape, dtype: np.dtype) -> np.ndarray:
        return np.zeros(shape, dtype=dtype)

    def csr(self, matrix: sp.csr_matrix, dtype: np.dtype) -> sp.csr_matrix:
        if matrix.dtype == dtype:
            return matrix
        return matrix.astype(dtype)

    def to_numpy(self, array) -> np.ndarray:
        return array


class CupyBackend(ArrayBackend):
    """GPU arrays via CuPy — capability-gated like the DuckDB SQL backend.

    Selected only when the package is installed; otherwise every
    operation raises :class:`BackendUnavailableError` with an
    installation hint.  The sparse product runs through
    ``cupyx.scipy.sparse`` (the kernels' generic ``A @ X`` path — the
    scipy in-place symbol is CPU-only), the GEMMs through cupy's own
    ufunc dispatch, so the same plan/kernel code drives the GPU.
    """

    name = "cupy"

    @classmethod
    def is_available(cls) -> bool:
        return importlib.util.find_spec("cupy") is not None

    @classmethod
    def engine_version(cls) -> str:
        if not cls.is_available():
            return "not installed"
        import cupy
        return f"cupy {cupy.__version__}"

    def _cupy(self):
        try:
            import cupy
        except ImportError as error:  # pragma: no cover - gated in tests
            raise BackendUnavailableError(
                "the 'cupy' array backend requires the cupy package "
                "(pip install cupy-cuda12x for CUDA 12)") from error
        return cupy

    def asarray(self, array, dtype: np.dtype):  # pragma: no cover - needs GPU
        return self._cupy().ascontiguousarray(
            self._cupy().asarray(array, dtype=dtype))

    def empty(self, shape, dtype: np.dtype):  # pragma: no cover - needs GPU
        return self._cupy().empty(shape, dtype=dtype)

    def zeros(self, shape, dtype: np.dtype):  # pragma: no cover - needs GPU
        return self._cupy().zeros(shape, dtype=dtype)

    def csr(self, matrix: sp.csr_matrix, dtype):  # pragma: no cover - GPU
        self._cupy()
        from cupyx.scipy import sparse as cusparse
        return cusparse.csr_matrix(matrix.astype(dtype))

    def to_numpy(self, array) -> np.ndarray:  # pragma: no cover - needs GPU
        return array.get()


#: Registry of array backends, in preference order.
ARRAY_BACKENDS: Dict[str, type] = {
    "numpy": NumpyBackend,
    "cupy": CupyBackend,
}

_instances: Dict[str, ArrayBackend] = {}


def get_array_backend(name: str) -> ArrayBackend:
    """The (shared) backend instance registered under ``name``.

    Unknown names raise :class:`UnknownBackendError` listing the
    registry; known-but-uninstalled backends raise
    :class:`BackendUnavailableError` so callers can degrade cleanly.
    """
    try:
        backend_class = ARRAY_BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(ARRAY_BACKENDS))
        raise UnknownBackendError(
            f"unknown array backend {name!r}; registered backends: "
            f"{known}") from None
    if not backend_class.is_available():
        raise BackendUnavailableError(
            f"array backend {name!r} is registered but its package is not "
            f"installed on this host")
    instance = _instances.get(name)
    if instance is None:
        instance = _instances.setdefault(name, backend_class())
    return instance


def array_backend_info() -> List[Dict[str, object]]:
    """Capability report for ``repro backends``: one row per backend."""
    from repro.engine import kernels
    report: List[Dict[str, object]] = []
    for name, backend_class in ARRAY_BACKENDS.items():
        report.append({
            "name": name,
            "available": bool(backend_class.is_available()),
            "engine": backend_class.engine_version(),
            "dtypes": sorted(SUPPORTED_DTYPES),
        })
    report.append({
        "name": "spmm-inplace",
        "available": bool(kernels.HAVE_INPLACE_SPMM),
        "engine": "scipy._sparsetools.csr_matvecs",
        "dtypes": sorted(SUPPORTED_DTYPES),
    })
    report.append({
        "name": "spmm-numba",
        "available": bool(HAVE_NUMBA),
        "engine": _numba_version(),
        "dtypes": sorted(SUPPORTED_DTYPES),
    })
    return report


# ---------------------------------------------------------------------- #
# the compiled CSR sweep fallback (probed at import, like HAVE_INPLACE_SPMM)
# ---------------------------------------------------------------------- #
#: True when numba is importable — the compiled CSR sweep can be built.
HAVE_NUMBA = importlib.util.find_spec("numba") is not None

_numba_kernel = None


def _numba_version() -> str:
    if not HAVE_NUMBA:
        return "not installed"
    import numba
    return f"numba {numba.__version__}"


def _build_numba_kernel():
    """Compile the in-place CSR sweep (once; cached across calls)."""
    import numba

    @numba.njit(cache=True, fastmath=False)
    def csr_spmm(indptr, indices, data, dense, out):  # pragma: no cover
        rows = indptr.shape[0] - 1
        width = dense.shape[1]
        for row in range(rows):
            for pointer in range(indptr[row], indptr[row + 1]):
                weight = data[pointer]
                column = indices[pointer]
                for j in range(width):
                    out[row, j] += weight * dense[column, j]

    return csr_spmm


def numba_spmm(csr: sp.csr_matrix, dense: np.ndarray, out: np.ndarray,
               accumulate: bool = False) -> np.ndarray:
    """``out <- csr @ dense`` (or ``+=``) via the numba-compiled sweep.

    Drop-in for the scipy in-place path: same in-place accumulate
    semantics, same dtype-preserving arithmetic (the compiled loop
    multiplies and adds in the operands' own dtype).  Raises
    :class:`BackendUnavailableError` when numba is not installed —
    callers must check :data:`HAVE_NUMBA` first.
    """
    global _numba_kernel
    if not HAVE_NUMBA:
        raise BackendUnavailableError(
            "the compiled CSR sweep requires the numba package")
    if _numba_kernel is None:
        _numba_kernel = _build_numba_kernel()
    if not accumulate:
        out[...] = 0
    _numba_kernel(csr.indptr, csr.indices, csr.data, dense, out)
    return out
