"""Batched LinBP propagation over preallocated ping-pong buffers.

Many concurrent queries against the same graph share the adjacency
structure; only their explicit beliefs differ.  Stacking ``q`` explicit
``n x k`` matrices side by side into one ``n x (q·k)`` block turns the
``q`` sparse products of a sequential sweep into a *single* SpMM whose
traversal of the adjacency matrix is amortised across all queries — the
sparse product is memory-bound on ``A``, so this is where the batched
speedup comes from.  The two dense coupling products collapse likewise
into single GEMMs on an ``(n·q) x k`` view.

Crucially, the LinBP update touches each query's ``k`` columns
independently (``A`` acts on rows, ``Ĥ`` within a block), so every query
in the batch evolves exactly as it would alone: batched and sequential
runs agree to floating-point noise, and each query keeps its *own*
convergence test and iteration count.  A converged query's beliefs are
frozen (snapshotted) while the rest of the batch keeps iterating.

:class:`BatchWorkspace` owns the four preallocated buffers and performs
one update step with zero per-iteration allocation;
:func:`run_batch` drives it to convergence and unpacks one
:class:`~repro.core.results.PropagationResult` per query.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.results import PropagationResult
from repro.engine import kernels
from repro.engine.plan import PropagationPlan
from repro.exceptions import NotConvergentParametersError, ValidationError
from repro.obs import counter, profile_batch_query, span

__all__ = ["BatchWorkspace", "run_batch"]

#: One increment per batched LinBP sweep (all queries advance together).
SWEEPS = counter("repro_engine_sweeps_total",
                 "Propagation sweeps executed, by engine.")


class BatchWorkspace:
    """Preallocated buffers for propagating a ``q``-query batch on one plan.

    All working memory — the stacked explicit block, the ping-pong belief
    buffers and one scratch block — is allocated once in the constructor;
    :meth:`step` then performs one full LinBP update of every query with
    in-place kernel writes only.  Workspaces are reusable: call
    :meth:`load` again to start a new batch of the same width.
    """

    def __init__(self, plan: PropagationPlan, num_queries: int):
        if num_queries < 1:
            raise ValidationError("num_queries must be >= 1")
        self.plan = plan
        self.num_queries = int(num_queries)
        n, k = plan.num_nodes, plan.num_classes
        shape = (n, self.num_queries * k)
        # All buffers live in the plan's dtype on the plan's array
        # backend — the whole iteration then runs at that element width.
        # ``front`` must start zeroed (the default B̂⁰); the other buffers
        # are fully overwritten before their first read, so plain ``empty``
        # keeps workspace construction cheap.
        self._explicit = plan.backend.empty(shape, plan.dtype)
        self._front = plan.backend.zeros(shape, plan.dtype)
        self._back = plan.backend.empty(shape, plan.dtype)
        self._scratch = plan.backend.empty(shape, plan.dtype)

    # ------------------------------------------------------------------ #
    # loading and reading query blocks
    # ------------------------------------------------------------------ #
    def load(self, explicit_list: Sequence[np.ndarray],
             initial_beliefs: Optional[Sequence[Optional[np.ndarray]]] = None
             ) -> None:
        """Stack the per-query explicit beliefs (and optional starts)."""
        if len(explicit_list) != self.num_queries:
            raise ValidationError(
                f"expected {self.num_queries} explicit matrices, "
                f"got {len(explicit_list)}")
        k = self.plan.num_classes
        self._front[...] = 0.0
        checked = [self.plan.check_explicit(explicit)
                   for explicit in explicit_list]
        if self.plan.num_nodes:
            np.concatenate(checked, axis=1, out=self._explicit)
        if initial_beliefs is not None:
            for query, start in enumerate(initial_beliefs):
                if start is None:
                    continue
                start = np.asarray(start, dtype=self.plan.dtype)
                if start.shape != checked[query].shape:
                    raise ValidationError(
                        "initial beliefs must have the same shape as Ê")
                self._front[:, query * k:(query + 1) * k] = start

    def beliefs(self, query: int) -> np.ndarray:
        """Copy of the current ``n x k`` belief block of one query.

        Always a host (numpy) array in the plan's dtype, whatever array
        backend the buffers live on.
        """
        k = self.plan.num_classes
        block = self._front[:, query * k:(query + 1) * k]
        return np.array(self.plan.backend.to_numpy(block))

    # ------------------------------------------------------------------ #
    # one batched update step
    # ------------------------------------------------------------------ #
    def step(self, compute_changes: bool = True) -> Optional[np.ndarray]:
        """Apply Eq. 6 (or Eq. 7) to every query at once, in place.

        Returns the per-query maximum absolute belief change (length
        ``q``), the quantity the sequential solver uses for its stopping
        test.  The new beliefs become the front buffer.  Pass
        ``compute_changes=False`` to skip the stopping-test reduction and
        return ``None`` — used by timing experiments that measure the pure
        update cost (the reduction is three extra element-wise passes).
        """
        plan, k = self.plan, self.plan.num_classes
        # back <- Ê + A @ (front @ Ĥ) − (diag(d) @ front) @ Ĥ², through
        # preallocated buffers and in-place writes only.  Applying Ĥ
        # *before* the sparse product (associativity) lets the SpMM
        # accumulate straight onto Ê — one GEMM, one copy and one fused
        # sparse product instead of separate propagate/apply/add passes.
        kernels.block_matmul(self._front, plan.residual, out=self._scratch,
                             num_classes=k)
        np.copyto(self._back, self._explicit)
        kernels.spmm(plan.adjacency, self._scratch, out=self._back,
                     accumulate=True)
        if plan.echo_cancellation:
            kernels.block_matmul(self._front, plan.residual_squared,
                                 out=self._scratch, num_classes=k)
            kernels.scale_rows(plan.degrees, self._scratch, out=self._scratch)
            np.subtract(self._back, self._scratch, out=self._back)
        changes = kernels.max_abs_change_per_query(
            self._back, self._front, self._scratch, num_classes=k) \
            if compute_changes else None
        self._front, self._back = self._back, self._front
        return changes


def run_batch(plan: PropagationPlan, explicit_list: Sequence[np.ndarray],
              initial_beliefs: Optional[Sequence[Optional[np.ndarray]]] = None,
              max_iterations: int = 100, tolerance: float = 1e-10,
              num_iterations: Optional[int] = None,
              require_convergence: bool = False,
              workspace: Optional[BatchWorkspace] = None,
              profile: bool = False
              ) -> List[PropagationResult]:
    """Propagate many explicit-belief matrices concurrently on one plan.

    Parameters mirror :meth:`repro.core.linbp.LinBP.run`, applied to every
    query of the batch: each query stops (is frozen) as soon as its own
    maximum belief change drops below ``tolerance``, or runs exactly
    ``num_iterations`` steps when that is given.  The returned list holds
    one :class:`PropagationResult` per query, in input order, carrying the
    query's own iteration count and residual history — byte-for-byte the
    metadata a sequential :func:`repro.core.linbp.linbp` call would report
    (beliefs agree to floating-point round-off, typically ≪ 1e-12).

    ``workspace`` may supply a preallocated :class:`BatchWorkspace` (of
    matching width) to reuse across repeated batches.

    ``profile=True`` attaches a convergence profile (the residual
    trajectory next to the plan's Lemma 8 spectral radius — see
    :mod:`repro.obs.profile`) to every result's ``extra["profile"]``;
    the radius is an eigensolve on first use, cached on the plan.
    """
    if max_iterations < 1:
        raise ValidationError("max_iterations must be >= 1")
    if tolerance <= 0:
        raise ValidationError("tolerance must be positive")
    if len(explicit_list) == 0:
        return []
    if require_convergence and not plan.is_exactly_convergent():
        raise NotConvergentParametersError(
            f"{plan.method_name} does not converge for this coupling scale "
            f"(Lemma 8); reduce epsilon")
    if workspace is None:
        workspace = BatchWorkspace(plan, len(explicit_list))
    elif workspace.num_queries != len(explicit_list) or workspace.plan is not plan:
        raise ValidationError("workspace does not match this plan/batch width")
    workspace.load(explicit_list, initial_beliefs)
    q = len(explicit_list)
    fixed_iterations = num_iterations is not None
    budget = num_iterations if fixed_iterations else max_iterations
    histories: List[List[float]] = [[] for _ in range(q)]
    iterations = np.zeros(q, dtype=int)
    converged = np.zeros(q, dtype=bool)
    frozen: List[Optional[np.ndarray]] = [None] * q
    # Queries that converged on the previous iteration; their blocks are
    # snapshotted lazily, only when a further step is about to overwrite
    # them (in the common all-converge-together case nothing is copied).
    pending_freeze: List[int] = []
    sweeps_run = 0
    for _ in range(budget):
        if not fixed_iterations and converged.all():
            break
        for query in pending_freeze:
            frozen[query] = workspace.beliefs(query)
        pending_freeze = []
        with span("engine.sweep", engine="batch", queries=q) as sweep:
            changes = workspace.step()
            sweep.set_tag("residual", float(changes.max()))
        sweeps_run += 1
        for query in np.nonzero(~converged)[0]:
            iterations[query] += 1
            histories[query].append(float(changes[query]))
            if not fixed_iterations and changes[query] < tolerance:
                converged[query] = True
                pending_freeze.append(query)
    if sweeps_run:
        SWEEPS.inc(sweeps_run, engine="batch")
    results: List[PropagationResult] = []
    for query in range(q):
        beliefs = frozen[query] if frozen[query] is not None \
            else workspace.beliefs(query)
        history = histories[query]
        done = bool(converged[query]) if not fixed_iterations \
            else bool(history and history[-1] < tolerance)
        extra = {"echo_cancellation": plan.echo_cancellation,
                 "epsilon": plan.coupling.epsilon,
                 "engine": "batch",
                 "dtype": plan.dtype.name,
                 "batch_size": q}
        if profile:
            extra["profile"] = profile_batch_query(
                plan, history, int(iterations[query]), done, tolerance)
        results.append(PropagationResult(
            beliefs=beliefs,
            method=plan.method_name,
            iterations=int(iterations[query]),
            converged=done,
            residual_history=history,
            extra=extra,
        ))
    return results
