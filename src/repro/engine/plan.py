"""Cached per-graph propagation plans.

Every iterative solver needs the same per-``(graph, coupling)`` artifacts:
the CSR adjacency matrix in canonical float64 layout, the squared-weight
degree vector for the echo-cancellation term, the scaled residual coupling
``Ĥ`` and its square, and — when convergence guarantees are requested —
the Lemma 8 spectral radius of the update matrix.  Before the engine
existed, each of :func:`repro.core.linbp.linbp`, ``linbp_star`` and the
experiment paths recomputed these per call.

:class:`PropagationPlan` bundles the artifacts; :func:`get_plan` memoises
plans in a small process-wide LRU cache keyed by the *identity* of the
graph plus the *value* of the coupling (its residual entries and scale
``ε_H``) and the echo-cancellation flag.  Re-scaling the coupling — the
most common parameter change, e.g. an ``ε_H`` sweep — therefore yields a
fresh plan automatically; mutirequest traffic against the same graph and
coupling shares one plan and pays the precomputation once.

The binary (k = 2) closed forms of :mod:`repro.core.fabp` get the same
treatment: :func:`get_binary_solver` caches the sparse LU factorisation of
``I − c_a A + c_d D``, so repeated FaBP queries against one graph reduce
to two triangular solves each (and batches of right-hand sides to one
multi-RHS solve).
"""

from __future__ import annotations

import threading
import time
import weakref
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.coupling.matrices import CouplingMatrix
from repro.engine import backend as array_backend
from repro.exceptions import ValidationError
from repro.graphs.graph import Graph
from repro.obs import counter, span

__all__ = ["PropagationPlan", "GraphKeyedCache", "get_plan",
           "get_binary_solver", "clear_plan_cache", "plan_cache_info",
           "register_auxiliary_cache", "coupling_key"]

#: Maximum number of cached propagation plans / binary factorisations.
PLAN_CACHE_SIZE = 32

#: Plan-cache outcomes, by plan kind (``linbp`` here, ``sbp`` in
#: :mod:`repro.engine.sbp_plan`, ``sharded`` in the shard layer).
PLAN_BUILDS = counter("repro_plan_builds_total",
                      "Propagation plans built (cache misses), by kind.")
PLAN_CACHE_HITS = counter("repro_plan_cache_hits_total",
                          "Propagation plans served from cache, by kind.")


class PropagationPlan:
    """Precomputed artifacts for propagating beliefs over one graph.

    Instances are created by :func:`get_plan` (which caches them) or
    directly for one-off use.  A plan is immutable once built; all fields
    derived from the coupling use the *scaled* residual ``Ĥ = ε_H·Ĥo``.

    Attributes
    ----------
    graph, coupling, echo_cancellation, dtype, backend:
        The defining tuple; two plans coincide iff these match (coupling
        compared by value, graph by identity, dtype/backend by canonical
        name).  ``graph`` is held only weakly — the plan copies or shares
        every artifact it needs, so a cached plan never pins a dead graph
        in memory.
    adjacency:
        The graph's adjacency as canonical CSR (sorted indices, no
        duplicates) in the plan's dtype on the plan's array backend —
        the layout the SpMM kernel requires.  ``float64`` on ``numpy``
        (the defaults) is byte-identical to the historical layout.
    degrees:
        Squared-weight degree vector ``d`` (Section 5.2), or ``None`` for
        LinBP* where the echo term vanishes.
    residual, residual_squared:
        C-contiguous ``k x k`` arrays ``Ĥ`` and ``Ĥ²`` in the plan's
        dtype.
    """

    def __init__(self, graph: Graph, coupling: CouplingMatrix,
                 echo_cancellation: bool = True,
                 dtype=array_backend.DEFAULT_DTYPE,
                 backend: str = "numpy"):
        # Only a weak reference to the graph wrapper is kept: the plan owns
        # (copies or shares) every artifact it needs, so a cached plan does
        # not pin large graphs in memory beyond their natural lifetime.
        self._graph_ref = weakref.ref(graph)
        self.coupling = coupling
        self.echo_cancellation = bool(echo_cancellation)
        self.dtype: np.dtype = array_backend.canonical_dtype(dtype)
        self.backend: array_backend.ArrayBackend = \
            array_backend.get_array_backend(backend)
        adjacency = graph.adjacency
        if not adjacency.has_canonical_format:
            adjacency = adjacency.copy()
            adjacency.sum_duplicates()
        if adjacency.dtype != self.dtype:
            adjacency = adjacency.astype(self.dtype)
        self.adjacency = self.backend.csr(adjacency, self.dtype)
        self.degrees = self.backend.asarray(
            graph.degree_vector(), self.dtype) if echo_cancellation else None
        self.residual = self.backend.asarray(coupling.residual, self.dtype)
        self.residual_squared = self.backend.asarray(
            coupling.residual_squared, self.dtype)
        self._update_spectral_radius: Optional[float] = None
        self._operator_infinity_norm: Optional[float] = None

    @property
    def graph(self) -> Optional[Graph]:
        """The graph this plan was built for (None once garbage collected)."""
        return self._graph_ref()

    @property
    def num_nodes(self) -> int:
        """Number of nodes ``n``."""
        return self.adjacency.shape[0]

    @property
    def num_classes(self) -> int:
        """Number of classes ``k``."""
        return self.residual.shape[0]

    @property
    def method_name(self) -> str:
        """``"LinBP"`` or ``"LinBP*"`` depending on echo cancellation."""
        return "LinBP" if self.echo_cancellation else "LinBP*"

    # ------------------------------------------------------------------ #
    # convergence bookkeeping (computed lazily, cached on the plan)
    # ------------------------------------------------------------------ #
    def _host_adjacency64(self) -> sp.csr_matrix:
        """The adjacency as host (scipy) CSR float64, for analysis paths."""
        adjacency = self.adjacency
        if not isinstance(adjacency, sp.csr_matrix):  # pragma: no cover - GPU
            adjacency = adjacency.get()
        if adjacency.dtype != np.float64:
            adjacency = adjacency.astype(np.float64)
        return adjacency

    def update_spectral_radius(self) -> float:
        """Spectral radius of the update matrix — the exact Lemma 8 quantity.

        ``ρ(Ĥ⊗A − Ĥ²⊗D)`` for LinBP, ``ρ(Ĥ)·ρ(A) = ρ(Ĥ⊗A)`` for LinBP*.
        Computed on first use and cached for the lifetime of the plan, so
        per-query convergence checks against a hot plan are free.  The
        eigensolve always runs in float64 on the host, whatever dtype or
        backend the plan's kernel artifacts use — a certification bound
        must not itself be computed in the precision it certifies.
        """
        if self._update_spectral_radius is None:
            from repro.graphs import linalg
            adjacency = self._host_adjacency64()
            if self.echo_cancellation:
                degrees = np.asarray(self.backend.to_numpy(self.degrees),
                                     dtype=np.float64)
                degree = sp.diags(degrees, format="csr")
                self._update_spectral_radius = linalg.kron_spectral_radius(
                    np.asarray(self.coupling.residual, dtype=np.float64),
                    adjacency, degree=degree)
            else:
                self._update_spectral_radius = (
                    self.coupling.spectral_radius()
                    * linalg.spectral_radius(adjacency))
        return self._update_spectral_radius

    def operator_infinity_norm(self) -> float:
        """``‖Ĥᵀ⊗A − (Ĥ²)ᵀ⊗D‖∞`` — magnitude bound of one update sweep.

        The ∞-norm of the LinBP update operator: how much one sweep can
        amplify the *magnitude* of the belief block (``‖A‖∞·‖Ĥ‖∞ +
        ‖d‖∞·‖Ĥ²‖∞``; the echo term enters additively because the norm
        is submultiplicative, not signed).  Together with the Lemma 8
        spectral radius this prices the float32 rounding budget of
        :mod:`repro.engine.precision`: the radius bounds how errors
        *accumulate* across sweeps, this norm bounds how large the
        intermediate quantities each sweep rounds can get.  Lazy and
        cached like the radius; always computed in float64.
        """
        if self._operator_infinity_norm is None:
            adjacency = self._host_adjacency64()
            adjacency_norm = float(abs(adjacency).sum(axis=1).max()) \
                if adjacency.nnz else 0.0
            residual64 = np.asarray(self.coupling.residual, dtype=np.float64)
            norm = adjacency_norm * float(np.abs(residual64).sum(axis=1).max())
            if self.echo_cancellation:
                degrees = np.asarray(self.backend.to_numpy(self.degrees),
                                     dtype=np.float64)
                squared64 = np.asarray(self.coupling.residual_squared,
                                       dtype=np.float64)
                degree_norm = float(degrees.max()) if degrees.size else 0.0
                norm += degree_norm * \
                    float(np.abs(squared64).sum(axis=1).max())
            self._operator_infinity_norm = norm
        return self._operator_infinity_norm

    def is_exactly_convergent(self) -> bool:
        """Exact Lemma 8 criterion: the iteration converges iff radius < 1."""
        return self.update_spectral_radius() < 1.0

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def check_explicit(self, explicit_residuals: np.ndarray) -> np.ndarray:
        """Validate one ``n x k`` explicit-belief matrix against the plan.

        Returns the matrix in the plan's dtype (a view when it already
        matches, a cast copy otherwise).
        """
        explicit = np.asarray(explicit_residuals, dtype=self.dtype)
        if explicit.ndim != 2:
            raise ValidationError("explicit beliefs must be a 2-D matrix")
        if explicit.shape[0] != self.num_nodes:
            raise ValidationError(
                f"expected {self.num_nodes} rows, got {explicit.shape[0]}")
        if explicit.shape[1] != self.num_classes:
            raise ValidationError(
                f"expected {self.num_classes} columns, got {explicit.shape[1]}")
        return explicit


# ---------------------------------------------------------------------- #
# the plan cache
# ---------------------------------------------------------------------- #
class GraphKeyedCache:
    """Bounded, thread-safe LRU of per-graph artifacts (optionally TTL'd).

    Keys hold ``id(graph)`` plus a caller-supplied suffix; entries also
    hold a weakref to the graph to verify that the id was not recycled by
    a different object.  Neither the entry nor the cached value holds a
    strong reference to the graph wrapper, so entries are evicted as soon
    as their graph is garbage collected (the bounded LRU additionally
    caps how many values survive for long-lived graphs).  ``lookup``
    counts hits/misses; ``store`` inserts and trims.

    All operations take an internal re-entrant lock, so one cache may be
    shared by many threads (the propagation service's coalescer hits the
    plan and result caches concurrently).  The weakref eviction callback
    acquires the same lock; because it is re-entrant, a collection
    triggered *inside* a cache method cannot deadlock.

    ``ttl_seconds`` (optional) gives every entry a fixed lifetime from its
    last ``store``: expired entries behave as misses and are dropped on
    access.  ``clock`` is injectable for tests and must be monotonic.
    """

    def __init__(self, max_size: int, ttl_seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic):
        self._max_size = max_size
        self._ttl = float(ttl_seconds) if ttl_seconds is not None else None
        self._clock = clock
        self._lock = threading.RLock()
        self._entries: \
            "OrderedDict[tuple, Tuple[weakref.ref, object, Optional[float]]]" \
            = OrderedDict()
        self.stats = {"hits": 0, "misses": 0, "expired": 0}

    def lookup(self, graph: Graph, key_suffix: tuple):
        key = (id(graph),) + key_suffix
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                graph_ref, value, expires_at = entry
                if graph_ref() is not graph:
                    # id() was recycled by a new object; drop the stale entry.
                    del self._entries[key]
                elif expires_at is not None and self._clock() >= expires_at:
                    del self._entries[key]
                    self.stats["expired"] += 1
                else:
                    self._entries.move_to_end(key)
                    self.stats["hits"] += 1
                    return value
            self.stats["misses"] += 1
            return None

    def store(self, graph: Graph, key_suffix: tuple, value) -> None:
        key = (id(graph),) + key_suffix

        def _evict(_ref, key=key):
            with self._lock:
                self._entries.pop(key, None)

        expires_at = self._clock() + self._ttl if self._ttl is not None else None
        with self._lock:
            self._entries[key] = (weakref.ref(graph, _evict), value, expires_at)
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.stats = {"hits": 0, "misses": 0, "expired": 0}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


_plan_cache = GraphKeyedCache(PLAN_CACHE_SIZE)


def coupling_key(coupling: CouplingMatrix) -> Tuple[float, bytes]:
    """Hashable value identity of a coupling matrix (scale + residual bytes).

    Used as a cache-key component wherever "same coupling" must mean
    *same values*, not same object: the plan cache below and the
    propagation service's batching/result keys.
    """
    residual = np.ascontiguousarray(coupling.unscaled_residual)
    return float(coupling.epsilon), residual.tobytes()


def get_plan(graph: Graph, coupling: CouplingMatrix,
             echo_cancellation: bool = True,
             dtype=array_backend.DEFAULT_DTYPE,
             backend: str = "numpy") -> PropagationPlan:
    """Return the (cached) propagation plan for a solver configuration.

    The cache key is ``(graph identity, echo flag, dtype, backend, ε_H,
    Ĥo entries)``.  Changing any component — re-scaling the coupling
    with :meth:`CouplingMatrix.scaled`, or asking for a float32 plan
    next to an existing float64 one — misses the cache and builds a
    fresh plan; the stale plan ages out of the bounded LRU (at most
    ``PLAN_CACHE_SIZE`` plans are retained, least recently used first).
    """
    key_suffix = (bool(echo_cancellation),
                  array_backend.dtype_name(dtype), backend) \
        + coupling_key(coupling)
    plan = _plan_cache.lookup(graph, key_suffix)
    if plan is None:
        with span("engine.plan_build", kind="linbp",
                  nodes=graph.num_nodes):
            plan = PropagationPlan(graph, coupling,
                                   echo_cancellation=echo_cancellation,
                                   dtype=dtype, backend=backend)
        PLAN_BUILDS.inc(kind="linbp")
        _plan_cache.store(graph, key_suffix, plan)
    else:
        PLAN_CACHE_HITS.inc(kind="linbp")
    return plan


# Sibling engine caches (e.g. the SBP plan cache) register a clear
# function and an info function here so that clear_plan_cache() and
# plan_cache_info() cover the whole engine without import cycles.
_auxiliary_caches: list = []


def register_auxiliary_cache(clear, info) -> None:
    """Join a sibling engine cache to the clear/info reporting."""
    _auxiliary_caches.append((clear, info))


def clear_plan_cache() -> None:
    """Drop every cached plan and binary factorisation (mainly for tests)."""
    _plan_cache.clear()
    _binary_cache.clear()
    for clear, _info in _auxiliary_caches:
        clear()


def plan_cache_info() -> Dict[str, int]:
    """Cache statistics: current size plus cumulative hits/misses.

    Includes the auxiliary engine caches (e.g. ``sbp_size``/``sbp_hits``/
    ``sbp_misses`` from :mod:`repro.engine.sbp_plan`).
    """
    info = {"size": len(_plan_cache),
            "binary_size": len(_binary_cache),
            "hits": _plan_cache.stats["hits"],
            "misses": _plan_cache.stats["misses"]}
    for _clear, cache_info in _auxiliary_caches:
        info.update(cache_info())
    return info


# ---------------------------------------------------------------------- #
# cached binary (k = 2) factorisations for FaBP
# ---------------------------------------------------------------------- #
_binary_cache = GraphKeyedCache(PLAN_CACHE_SIZE)


def get_binary_solver(graph: Graph, h_residual: float,
                      variant: str = "linbp") -> Callable[[np.ndarray], np.ndarray]:
    """A cached direct solver for the binary system of Appendix E.

    Returns ``solve(rhs)`` backed by a sparse LU factorisation of
    ``I − c_a·A + c_d·D`` where the coefficients depend on ``variant``
    (see :func:`repro.core.fabp.fabp_closed_form`).  ``rhs`` may be a
    length-``n`` vector or an ``n x q`` matrix of stacked right-hand
    sides — SuperLU solves all ``q`` queries in one call, which is the
    binary analogue of :func:`repro.engine.batch.run_batch`.
    """
    h = float(h_residual)
    if variant == "exact":
        if abs(h) >= 0.5:
            raise ValidationError("the exact FABP variant requires |h| < 1/2")
        factor_a = 2.0 * h / (1.0 - 4.0 * h * h)
        factor_d = 4.0 * h * h / (1.0 - 4.0 * h * h)
    elif variant == "linbp":
        factor_a = 2.0 * h
        factor_d = 4.0 * h * h
    else:
        raise ValidationError(f"unknown variant {variant!r}")
    solve = _binary_cache.lookup(graph, (h, variant))
    if solve is not None:
        return solve
    degree = sp.diags(graph.degree_vector(), format="csr")
    system = (sp.identity(graph.num_nodes, format="csr")
              - factor_a * graph.adjacency + factor_d * degree)
    lu = spla.splu(system.tocsc())

    def solve(rhs: np.ndarray) -> np.ndarray:
        return lu.solve(np.asarray(rhs, dtype=np.float64))

    _binary_cache.store(graph, (h, variant), solve)
    return solve
