"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this library derive from
:class:`ReproError`, so callers can catch a single base class.  The more
specific subclasses distinguish between malformed inputs (shape and value
problems), algorithmic non-convergence, and misuse of the small relational
engine that backs the SQL-style implementations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """An input (graph, coupling matrix, belief matrix, ...) is malformed.

    Raised for shape mismatches, non-symmetric adjacency matrices, coupling
    matrices that are not doubly stochastic, belief rows that do not sum to
    one, negative edge weights, and similar structural problems.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative algorithm failed to converge within its iteration budget.

    Carries the number of iterations performed and the last observed residual
    so callers can report or relax their convergence criteria.
    """

    def __init__(self, message: str, iterations: int | None = None,
                 residual: float | None = None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class NotConvergentParametersError(ReproError, ValueError):
    """The supplied parameters provably prevent convergence.

    Raised when a caller explicitly asks for the convergence guarantee
    (``require_convergence=True``) but the spectral-radius criterion of the
    paper (Lemma 8) shows the iteration would diverge.
    """


class RelationalError(ReproError):
    """Misuse of the in-memory relational engine (unknown column, bad join...)."""


class SchemaError(RelationalError, ValueError):
    """A relational operation referenced a column that does not exist."""


class BackendError(RelationalError):
    """Base class for problems with the pluggable SQL execution backends."""


class UnknownBackendError(BackendError, ValueError):
    """A backend name does not match any registered execution backend.

    The message lists the registered names so the typo is obvious; callers
    (the CLI, the service layer) can catch it without string matching.
    """


class BackendUnavailableError(BackendError, ImportError):
    """A registered backend exists but its driver is not installed.

    Derives from :class:`ImportError` because the root cause is always a
    missing module (e.g. ``duckdb``); the message says which package to
    install instead of surfacing a bare ``ModuleNotFoundError``.
    """


class BackendStateError(BackendError, RuntimeError):
    """A backend was used out of order (no graph loaded, connection closed)."""


class DatasetError(ReproError, ValueError):
    """A dataset generator was asked for an impossible configuration."""
