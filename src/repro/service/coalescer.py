"""Micro-batching coalescer: many concurrent requests, one stacked call.

The batched engine entry points (:func:`repro.engine.batch.run_batch`,
:func:`repro.engine.sbp_plan.run_sbp_batch`) amortise the sparse-matrix
traversal over every query in a batch — but they need a *batch* to work
on, and independent clients submit one query at a time.  The
:class:`MicroBatcher` closes that gap: concurrent submissions that share
a *batch key* (same graph snapshot, coupling values and solver
parameters) within a short collection window are dispatched together as
one stacked call, and each submitter receives exactly its own result.

The design is leader-based and lock-light:

* the **first** submitter for a key becomes the batch *leader*: it
  registers a pending batch, waits up to ``window_seconds`` for
  followers, then closes the batch, runs the supplied batch function
  once, and publishes the results;
* **followers** append their item to the pending batch and block on the
  batch's completion event — they never touch the engine;
* a batch is dispatched *early* as soon as it reaches ``max_batch``
  items, so saturated closed-loop traffic never pays the window latency.

The batch function is called with the items in submission order and must
return one result per item, in the same order; this is exactly the
contract of the engine's ``run_batch``/``run_sbp_batch``, whose results
are equivalent to sequential per-query calls (the tests assert the
1e-10 agreement through the full service stack).  If the batch function
raises, every member of the batch observes the same exception.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Hashable, List, Sequence

from repro.exceptions import ValidationError
from repro.obs import counter, span

__all__ = ["MicroBatcher"]

#: Global coalescing telemetry (the per-instance ``stats`` dict stays
#: the source of truth for ``PropagationService.stats()``).
BATCHES = counter("repro_coalescer_batches_total",
                  "Micro-batches dispatched by the coalescer.")
COALESCED = counter("repro_coalescer_coalesced_requests_total",
                    "Requests that shared a dispatched micro-batch "
                    "(batches of one count zero).")


class _PendingBatch:
    """One in-flight batch: items, synchronisation events, outcome."""

    __slots__ = ("items", "results", "error", "done", "full", "closed")

    def __init__(self):
        self.items: List[object] = []
        self.results: Sequence[object] = ()
        self.error: BaseException | None = None
        self.done = threading.Event()
        self.full = threading.Event()
        #: Once True, late submitters must start a fresh batch.
        self.closed = False


class MicroBatcher:
    """Coalesce concurrent same-key submissions into single batched calls.

    Parameters
    ----------
    window_seconds:
        How long a batch leader waits for followers before dispatching.
        ``0`` disables coalescing (every request dispatches immediately,
        still through the same code path — useful as a baseline).
    max_batch:
        Dispatch early once this many requests joined one batch.

    Notes
    -----
    The instance is thread-safe; ``stats`` is a plain dict updated under
    the internal lock (read it without the lock only for monitoring).
    """

    def __init__(self, window_seconds: float = 0.002, max_batch: int = 16):
        if window_seconds < 0:
            raise ValidationError("window_seconds must be >= 0")
        if max_batch < 1:
            raise ValidationError("max_batch must be >= 1")
        self.window_seconds = float(window_seconds)
        self.max_batch = int(max_batch)
        self._lock = threading.Lock()
        self._pending: Dict[Hashable, _PendingBatch] = {}
        self.stats = {"requests": 0, "batches": 0,
                      "coalesced_requests": 0, "largest_batch": 0}

    def submit(self, key: Hashable, item: object,
               run: Callable[[List[object]], Sequence[object]]) -> object:
        """Submit one item; block until its result is available.

        ``run`` is the batch function used *if this submission ends up
        leading a batch*; all submissions sharing a key must pass
        functions that agree on semantics (in the service, the key
        derives from the same parameters the function closes over).
        Returns this item's result, raises what ``run`` raised.
        """
        with self._lock:
            self.stats["requests"] += 1
            batch = self._pending.get(key)
            if batch is None or batch.closed:
                batch = _PendingBatch()
                self._pending[key] = batch
                leader = True
            else:
                leader = False
            index = len(batch.items)
            batch.items.append(item)
            if len(batch.items) >= self.max_batch:
                batch.closed = True
                batch.full.set()
        if not leader:
            batch.done.wait()
            if batch.error is not None:
                raise batch.error
            return batch.results[index]
        # From the moment the batch is registered, the leader owes its
        # followers a completion signal: everything up to and including
        # the dispatch runs under one try/finally, so even an exception
        # raised *while waiting* (e.g. a KeyboardInterrupt delivered to
        # the leader thread) can never strand followers on done.wait().
        try:
            if self.window_seconds > 0 and self.max_batch > 1:
                batch.full.wait(self.window_seconds)
            with self._lock:
                batch.closed = True
                if self._pending.get(key) is batch:
                    del self._pending[key]
                items = list(batch.items)
                self.stats["batches"] += 1
                if len(items) > 1:
                    self.stats["coalesced_requests"] += len(items)
                if len(items) > self.stats["largest_batch"]:
                    self.stats["largest_batch"] = len(items)
            BATCHES.inc()
            if len(items) > 1:
                COALESCED.inc(len(items))
            with span("service.coalesce_dispatch", batch=len(items)):
                results = run(items)
            if len(results) != len(items):
                raise ValidationError(
                    f"batch function returned {len(results)} results "
                    f"for {len(items)} items")
            batch.results = results
        except BaseException as exc:
            batch.error = exc
            raise
        finally:
            with self._lock:
                batch.closed = True
                if self._pending.get(key) is batch:
                    del self._pending[key]
            batch.done.set()
        return results[index]
