"""The propagation service: snapshots, maintained views, coalesced queries.

:class:`PropagationService` is the traffic-serving layer on top of the
batched engines.  It owns three pieces of state:

* **Versioned graph snapshots.**  Every registered graph is wrapped in an
  immutable :class:`GraphSnapshot` ``(name, version, graph)``.  Mutations
  (:meth:`PropagationService.update`) never modify a
  :class:`~repro.graphs.graph.Graph` in place — they build the successor
  graph, route the change through the existing incremental paths (ΔSBP
  Algorithms 3/4 for SBP views, superposition / warm restarts for LinBP
  views), and atomically install a snapshot with a bumped version.  A
  query pins its snapshot on entry, so in-flight queries always see a
  consistent graph no matter how many updates land concurrently.

* **A micro-batching coalescer.**  Concurrent single-query requests that
  share a batch key — ``(snapshot, method, coupling values, solver
  parameters)``, plus the labeled-node set for SBP — are collected for a
  short window and dispatched as *one*
  :func:`repro.engine.batch.run_batch` /
  :func:`repro.engine.sbp_plan.run_sbp_batch` stacked call (see
  :mod:`repro.service.coalescer`).  Results are equivalent to sequential
  single-query calls to 1e-10.

* **TTL+LRU caches.**  Results are cached in a lock-protected
  :class:`repro.engine.plan.GraphKeyedCache` keyed by the snapshot's
  graph object plus a digest of the request, with a TTL; because every
  update installs a *new* graph object and the key carries the version,
  stale results can never be served after a mutation.  Plans are cached
  by the engine itself (:func:`repro.engine.plan.get_plan` /
  :func:`repro.engine.sbp_plan.get_sbp_plan`), which the coalescer turns
  into cross-request reuse.

Thread safety: the graph registry and counters are guarded by one
re-entrant lock that is only ever held for dictionary operations;
mutations (updates, view creation) serialise on a *per-graph* lock, and
queries pin their snapshot with a single attribute read — so propagation
work never serialises on the registry, and a long repair on one graph
never blocks queries (on any graph).
"""

from __future__ import annotations

import hashlib
import threading
import time
import warnings
from dataclasses import dataclass, fields
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from repro.core.incremental import IncrementalLinBP
from repro.core.results import PropagationResult
from repro.core.sbp import SBP
from repro.coupling.matrices import CouplingMatrix
from repro.engine import backend as array_backend
from repro.engine import batch as engine_batch
from repro.engine import plan as engine_plan
from repro.engine import precision as engine_precision
from repro.engine import sbp_plan as engine_sbp
from repro.exceptions import ValidationError
from repro.graphs.graph import Edge, Graph
from repro.obs import MetricsRegistry, counter, span
from repro.service.coalescer import MicroBatcher
from repro.service.spec import METHODS as _METHODS
from repro.service.spec import QuerySpec
from repro.shard import block_engine as shard_engine
from repro.shard import pool as shard_pool
from repro.shard import repair as shard_repair
from repro.shard.partition import (
    GraphPartition,
    PartitionStats,
    partition_graph,
)

__all__ = ["GraphSnapshot", "ShardedSnapshot", "PropagationService"]

#: Legacy keyword arguments of query(), now fields of QuerySpec.
_SPEC_FIELDS = frozenset(field.name for field in fields(QuerySpec))

#: Process-global telemetry (honours ``REPRO_OBS_DISABLED``); the
#: request accounting behind ``stats()`` lives on each service's own
#: always-on registry instead — see ``PropagationService.registry``.
RESULT_CACHE_LOOKUPS = counter(
    "repro_service_result_cache_lookups_total",
    "Result-cache probes on the query path, by outcome (hit/miss).")
SHARD_REPAIRS = counter(
    "repro_shard_repairs_total",
    "Partition maintenance passes, by kind (incremental/full).")


def _check_config_value(key: str, value: object) -> None:
    """Validate one serving-config ``service`` value, naming the key.

    Ranges the constructor would reject anyway are re-checked here so
    the error message always carries the artifact's key name and the
    accepted values — ``from_config`` errors must be actionable against
    the JSON the operator is editing.
    """

    def reject(accepted: str) -> None:
        raise ValidationError(
            f"serving config key 'service.{key}' must be {accepted}, "
            f"got {value!r}")

    def is_int(minimum: int) -> bool:
        return (isinstance(value, int) and not isinstance(value, bool)
                and value >= minimum)

    def is_number(minimum: float) -> bool:
        return (isinstance(value, (int, float))
                and not isinstance(value, bool) and value >= minimum)

    if key == "shards":
        if not is_int(1):
            reject("an integer >= 1")
    elif key == "shard_method":
        if value not in ("bfs", "hash"):
            reject("one of ['bfs', 'hash']")
    elif key == "shard_executor":
        if value not in ("pool", "sequential"):
            reject("one of ['pool', 'sequential']")
    elif key == "window_ms":
        if not is_number(0.0):
            reject("a number >= 0 (milliseconds; 0 disables coalescing)")
    elif key == "max_batch":
        if not is_int(1):
            reject("an integer >= 1")
    elif key == "result_cache_size":
        if not is_int(0):
            reject("an integer >= 0 (0 disables the result cache)")
    elif key == "result_ttl_seconds":
        if value is not None and not is_number(0.0):
            reject("a number >= 0 or null (null keeps entries until "
                   "LRU eviction)")
    elif key == "snapshot_history":
        if not is_int(0):
            reject("an integer >= 0 (0 disables stale serving)")
    elif key == "incremental_repartition":
        if not isinstance(value, bool):
            reject("true or false")
    elif key == "repartition_drift":
        if value is not None and not is_number(0.0):
            reject("a number >= 0 or null (null disables the background "
                   "re-partition)")


@dataclass(frozen=True)
class GraphSnapshot:
    """One immutable version of a registered graph.

    Queries pin a snapshot at submission; updates install a successor
    with ``version + 1`` and (for edge updates) a new ``graph`` object.
    """

    name: str
    version: int
    graph: Graph


@dataclass(frozen=True)
class ShardedSnapshot(GraphSnapshot):
    """A graph snapshot carrying its shard partition.

    Installed by services created with ``shards=p > 1``: registration and
    every edge mutation (which builds a successor graph) repartition the
    new graph, so the partition is always exactly as current as the
    snapshot it rides on.  LinBP-family queries against a sharded
    snapshot dispatch through the block engine
    (:func:`repro.shard.block_engine.run_sharded_batch`); SBP queries
    keep the single-matrix path (the single-pass geodesic sweep has no
    block-Jacobi analogue).
    """

    partition: GraphPartition


class _MaintainedView:
    """A named, incrementally maintained propagation result.

    Wraps one of the existing maintained runners — :class:`SBP` for the
    single-pass family, :class:`IncrementalLinBP` for the LinBP family —
    and relies on their update hooks for change accounting.
    """

    def __init__(self, name: str, method: str, runner):
        self.name = name
        self.method = method
        self.runner = runner
        self.last_result: Optional[PropagationResult] = None
        self.nodes_updated_total = 0
        runner.add_update_hook(self._on_update)

    def _on_update(self, event) -> None:
        if event.nodes_updated is not None:
            self.nodes_updated_total += int(event.nodes_updated)


class _GraphEntry:
    """Registry slot: the current snapshot plus the maintained views.

    ``lock`` serialises *mutations* of this one graph (updates and view
    creation, which must see a consistent graph and apply in order).
    Reading ``snapshot`` needs no lock — the attribute always points at
    a fully built immutable :class:`GraphSnapshot`, so queries pin their
    version with a single attribute read and never wait behind a
    long-running repair on this (or any other) graph.
    """

    def __init__(self, snapshot: GraphSnapshot):
        self.snapshot = snapshot
        self.views: Dict[str, _MaintainedView] = {}
        self.lock = threading.RLock()
        # Sharded execution state: the (lazily created) shard executor for
        # the current snapshot's partition.  ``executor_lock`` serialises
        # executor use — a worker pool runs one batch at a time.
        self.executor = None
        self.executor_lock = threading.Lock()
        # Recent snapshots, oldest first and ending in the current one.
        # A *tuple*, replaced wholesale on every install: staleness-bounded
        # queries read it with one attribute load, lock-free — the same
        # discipline as ``snapshot`` itself.
        self.history: Tuple[GraphSnapshot, ...] = (snapshot,)
        # Incremental-repartition accounting (sharded snapshots only):
        # cut stats at the last *full* partition, repair/re-partition
        # counters, the current drift, and the background re-partition
        # thread (at most one per graph).
        self.baseline_stats: Optional[PartitionStats] = None
        self.incremental_repairs = 0
        self.full_repartitions = 0
        self.cut_drift = 0.0
        self.repartition_thread: Optional[threading.Thread] = None
        if isinstance(snapshot, ShardedSnapshot):
            self.baseline_stats = snapshot.partition.stats()


class PropagationService:
    """Thread-safe propagation front end over both engines.

    Parameters
    ----------
    window_seconds, max_batch:
        Coalescing behaviour (see :class:`~repro.service.coalescer
        .MicroBatcher`).  ``window_seconds=0`` disables coalescing.
    result_cache_size, result_ttl_seconds:
        LRU capacity and entry lifetime of the result cache; ``None``
        TTL keeps results until evicted by LRU or a graph update.
    clock:
        Monotonic clock, injectable for tests (drives the TTL).
    shards:
        Number of shards per registered graph.  ``1`` (default) keeps
        the single-matrix engine; ``p > 1`` partitions every graph on
        registration (and re-partitions on every edge mutation) and
        routes LinBP-family queries through the block engine.
    shard_method:
        Partitioner for sharded graphs (``"bfs"`` or ``"hash"``, see
        :func:`repro.shard.partition.partition_graph`).
    shard_executor:
        ``"pool"`` (default) runs shards on a
        :class:`~repro.shard.pool.ShardWorkerPool` of worker processes;
        ``"sequential"`` keeps everything in-process (deterministic,
        debuggable, no extra processes).  Pools are created lazily per
        graph, survive across queries, and are torn down when the graph
        is re-partitioned, unregistered, or the service is closed.
    snapshot_history:
        How many *past* snapshots to retain per graph (beyond the
        current one) for staleness-bounded reads: a query carrying
        ``max_staleness=s`` may be answered from the result cache of any
        version within ``s`` of current (see :meth:`query`).  ``0``
        disables stale serving.
    incremental_repartition:
        When ``True`` (default) an edge mutation on a sharded graph
        *repairs* the partition — only the shards owning a delta
        endpoint rebuild their row blocks and halo maps
        (:func:`repro.shard.repair.repair_partition`), identical to a
        fresh partition under the same assignment — instead of
        re-running the BFS grower.  ``False`` restores the full
        re-partition on every edge update.
    repartition_drift:
        Cut-quality drift threshold for the background re-partition:
        when the repaired partition's cut fraction exceeds the last full
        partition's by more than this, a daemon thread re-runs the
        partitioner and atomically swaps the fresh partition in (same
        graph, same version — query results are unaffected).  ``None``
        disables the background pass entirely.
    """

    def __init__(self, window_seconds: float = 0.002, max_batch: int = 16,
                 result_cache_size: int = 256,
                 result_ttl_seconds: Optional[float] = 300.0,
                 clock: Callable[[], float] = time.monotonic,
                 shards: int = 1, shard_method: str = "bfs",
                 shard_executor: str = "pool",
                 snapshot_history: int = 4,
                 incremental_repartition: bool = True,
                 repartition_drift: Optional[float] = 0.25):
        if shards < 1:
            raise ValidationError("shards must be >= 1")
        if shard_executor not in ("pool", "sequential"):
            raise ValidationError(
                f"unknown shard_executor {shard_executor!r}; expected "
                f"'pool' or 'sequential'")
        if snapshot_history < 0:
            raise ValidationError("snapshot_history must be >= 0")
        if repartition_drift is not None and not repartition_drift >= 0.0:
            raise ValidationError(
                "repartition_drift must be >= 0 (or None to disable the "
                "background re-partition)")
        self._lock = threading.RLock()
        self._graphs: Dict[str, _GraphEntry] = {}
        self.batcher = MicroBatcher(window_seconds=window_seconds,
                                    max_batch=max_batch)
        self.results = engine_plan.GraphKeyedCache(
            result_cache_size, ttl_seconds=result_ttl_seconds, clock=clock)
        # Request accounting lives on a per-instance, *always-on* metrics
        # registry: these counters back the public ``stats()`` contract
        # (state, not optional telemetry), so they keep counting under
        # ``REPRO_OBS_DISABLED=1`` and never mix across service instances.
        # The ``metrics`` wire op and ``render_prometheus`` export this
        # registry next to the process-global one.
        self.registry = MetricsRegistry(always_on=True)
        self._m_queries = self.registry.counter(
            "repro_service_queries_total",
            "Propagation queries accepted, by graph.")
        self._m_updates = self.registry.counter(
            "repro_service_updates_total",
            "Graph mutations applied, by graph.")
        self._m_stale_hits = self.registry.counter(
            "repro_service_stale_hits_total",
            "Queries answered from a staleness-bounded older version, "
            "by graph.")
        self._m_snapshot_version = self.registry.gauge(
            "repro_service_snapshot_version",
            "Current snapshot version, by graph.")
        self._shards = int(shards)
        self._shard_method = shard_method
        self._shard_executor = shard_executor
        self._snapshot_history = int(snapshot_history)
        self._incremental_repartition = bool(incremental_repartition)
        self._repartition_drift = repartition_drift if repartition_drift \
            is None else float(repartition_drift)
        #: Spec used for queries that pass ``spec=None``.  Plain
        #: construction leaves it unset (``None`` → ``QuerySpec()``);
        #: :meth:`from_config` installs the artifact's ``query`` section
        #: here so a tuned service answers un-spec'd requests with its
        #: tuned solver settings.
        self.default_spec: Optional[QuerySpec] = None

    # ------------------------------------------------------------------ #
    # serving-config artifacts
    # ------------------------------------------------------------------ #
    #: Artifact schema version :meth:`from_config` accepts.
    CONFIG_VERSION = 1
    _CONFIG_TOP_KEYS = ("version", "kind", "service", "query", "meta")
    #: Accepted ``service`` section keys.  ``window_ms`` is declared in
    #: milliseconds (artifacts are human-edited JSON; 2.0 ms reads
    #: better than 0.002 s) and mapped onto ``window_seconds`` here.
    _CONFIG_SERVICE_KEYS = (
        "shards", "shard_method", "shard_executor", "window_ms",
        "max_batch", "result_cache_size", "result_ttl_seconds",
        "snapshot_history", "incremental_repartition",
        "repartition_drift")

    @classmethod
    def from_config(cls, config: Dict[str, object], *,
                    clock: Callable[[], float] = time.monotonic
                    ) -> "PropagationService":
        """Build a service from a serving-config artifact.

        ``config`` is the JSON document ``repro tune`` emits (and
        ``repro serve --config`` loads)::

            {"version": 1,
             "kind": "repro-serving-config",        # optional
             "service": {"shards": 1, "window_ms": 2.0, ...},
             "query":   {"dtype": "float32", ...},  # optional
             "meta":    {...}}                      # optional, ignored

        Validation is strict and names what it rejects: unknown keys at
        either level are errors listing the accepted keys, every value
        error names the offending key and the accepted values, and the
        required ``version`` field rejects artifacts from a future
        schema instead of misreading them.  The optional ``query``
        section becomes :attr:`default_spec` — the spec answering
        queries that do not bring their own.
        """
        if not isinstance(config, dict):
            raise ValidationError(
                "serving config must be a JSON object, got "
                f"{type(config).__name__}")
        unknown = sorted(set(config) - set(cls._CONFIG_TOP_KEYS))
        if unknown:
            raise ValidationError(
                f"serving config has unknown key(s) {unknown}; accepted "
                f"keys: {sorted(cls._CONFIG_TOP_KEYS)}")
        if "version" not in config:
            raise ValidationError(
                "serving config is missing the required 'version' field "
                f"(current version: {cls.CONFIG_VERSION})")
        version = config["version"]
        if version != cls.CONFIG_VERSION or isinstance(version, bool):
            raise ValidationError(
                f"unsupported serving-config version {version!r}; this "
                f"build accepts version {cls.CONFIG_VERSION}")
        kind = config.get("kind", "repro-serving-config")
        if kind != "repro-serving-config":
            raise ValidationError(
                f"serving config key 'kind' must be "
                f"'repro-serving-config', got {kind!r}")
        if "service" not in config:
            raise ValidationError(
                "serving config is missing the required 'service' section")
        service = config["service"]
        if not isinstance(service, dict):
            raise ValidationError(
                "serving config key 'service' must be an object, got "
                f"{type(service).__name__}")
        unknown = sorted(set(service) - set(cls._CONFIG_SERVICE_KEYS))
        if unknown:
            raise ValidationError(
                f"serving config 'service' section has unknown key(s) "
                f"{unknown}; accepted keys: "
                f"{sorted(cls._CONFIG_SERVICE_KEYS)}")
        kwargs: Dict[str, object] = {"clock": clock}
        for key, value in service.items():
            _check_config_value(key, value)
            if key == "window_ms":
                kwargs["window_seconds"] = float(value) / 1000.0
            else:
                kwargs[key] = value
        query = config.get("query")
        default_spec = None
        if query is not None:
            if not isinstance(query, dict):
                raise ValidationError(
                    "serving config key 'query' must be an object, got "
                    f"{type(query).__name__}")
            accepted = sorted(QuerySpec.__dataclass_fields__)
            unknown = sorted(set(query) - set(accepted))
            if unknown:
                raise ValidationError(
                    f"serving config 'query' section has unknown key(s) "
                    f"{unknown}; accepted keys: {accepted}")
            # QuerySpec.__post_init__ names the offending field and the
            # accepted values in its own errors.
            default_spec = QuerySpec(**query)
        meta = config.get("meta")
        if meta is not None and not isinstance(meta, dict):
            raise ValidationError(
                "serving config key 'meta' must be an object, got "
                f"{type(meta).__name__}")
        instance = cls(**kwargs)
        instance.default_spec = default_spec
        return instance

    # ------------------------------------------------------------------ #
    # graph registry and snapshots
    # ------------------------------------------------------------------ #
    def register_graph(self, name: str, graph: Graph) -> GraphSnapshot:
        """Register ``graph`` under ``name`` at version 0.

        On a sharded service (``shards > 1``) the graph is partitioned
        here — the one-time cost that every subsequent query amortises —
        and the snapshot is a :class:`ShardedSnapshot`.
        """
        snapshot = self._build_snapshot(name, 0, graph)
        with self._lock:
            if name in self._graphs:
                raise ValidationError(f"graph {name!r} is already registered")
            self._graphs[name] = _GraphEntry(snapshot)
        self._m_snapshot_version.set(0, graph=name)
        return snapshot

    def unregister_graph(self, name: str) -> None:
        """Drop a graph, its views, executors and cached results."""
        with self._lock:
            entry = self._graphs.pop(name, None)
            if entry is None:
                raise ValidationError(f"unknown graph {name!r}")
        self._close_entry_executor(entry)

    def close(self) -> None:
        """Shut down every shard executor (idempotent).

        Only needed on sharded services with the pool executor (worker
        processes and shared-memory segments are OS resources); safe to
        call on any service.  Registered graphs stay queryable — the
        next sharded query lazily builds a fresh executor.
        """
        self.join_repartitions(timeout=10.0)
        with self._lock:
            entries = list(self._graphs.values())
        for entry in entries:
            self._close_entry_executor(entry)

    def __enter__(self) -> "PropagationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _build_snapshot(self, name: str, version: int,
                        graph: Graph) -> GraphSnapshot:
        if self._shards > 1:
            partition = partition_graph(graph, self._shards,
                                        method=self._shard_method)
            return ShardedSnapshot(name=name, version=version, graph=graph,
                                   partition=partition)
        return GraphSnapshot(name=name, version=version, graph=graph)

    @staticmethod
    def _close_entry_executor(entry: "_GraphEntry") -> None:
        with entry.executor_lock:
            executor, entry.executor = entry.executor, None
        if executor is not None:
            executor.close()

    def snapshot(self, name: str) -> GraphSnapshot:
        """The current immutable snapshot of a registered graph."""
        return self._entry(name).snapshot

    def snapshot_history(self, name: str) -> Tuple[GraphSnapshot, ...]:
        """Retained snapshots of a graph, oldest first, current last.

        At most ``snapshot_history + 1`` entries; the versions a
        staleness-bounded query may be served from.
        """
        return self._entry(name).history

    def _install_snapshot(self, entry: "_GraphEntry",
                          snapshot: GraphSnapshot) -> None:
        """Make ``snapshot`` current and append it to the history window.

        Called under the entry's mutation lock.  Both attributes are
        replaced wholesale (the history is a fresh tuple), so lock-free
        readers always observe a consistent value.
        """
        entry.snapshot = snapshot
        entry.history = \
            (entry.history + (snapshot,))[-(self._snapshot_history + 1):]

    def graph_names(self) -> List[str]:
        """Names of all registered graphs (sorted)."""
        with self._lock:
            return sorted(self._graphs)

    def _entry(self, name: str) -> _GraphEntry:
        with self._lock:
            entry = self._graphs.get(name)
            if entry is None:
                raise ValidationError(f"unknown graph {name!r}")
            return entry

    # ------------------------------------------------------------------ #
    # coalesced one-shot queries
    # ------------------------------------------------------------------ #
    def _resolve_spec(self, spec, legacy: Dict[str, object]) -> QuerySpec:
        """Normalise ``query()``'s spec argument, shimming legacy kwargs.

        A :class:`QuerySpec` passes through; ``None`` with no legacy
        kwargs is the default spec.  Solver keyword arguments (the
        pre-QuerySpec API, including a bare method string in the spec
        position) still work but emit a :class:`DeprecationWarning`.
        """
        if isinstance(spec, str):
            # Old call shape: query(name, coupling, explicit, "sbp").
            if "method" in legacy:
                raise ValidationError(
                    "query() got the method both positionally and as a "
                    "keyword argument")
            legacy = dict(legacy, method=spec)
            spec = None
        if legacy:
            if spec is not None:
                raise ValidationError(
                    "pass a QuerySpec or legacy solver keyword arguments "
                    "to query(), not both")
            unknown = sorted(set(legacy) - _SPEC_FIELDS)
            if unknown:
                raise TypeError(
                    f"query() got unexpected keyword argument(s) {unknown}")
            warnings.warn(
                "passing solver parameters to PropagationService.query() "
                "as keyword arguments is deprecated; pass a QuerySpec "
                "(repro.service.QuerySpec) instead",
                DeprecationWarning, stacklevel=3)
            return QuerySpec(**legacy)
        if spec is None:
            return self.default_spec if self.default_spec is not None \
                else QuerySpec()
        if not isinstance(spec, QuerySpec):
            raise ValidationError(
                f"spec must be a QuerySpec, got {type(spec).__name__}")
        return spec

    def _lookup_stale(self, entry: "_GraphEntry", snapshot: GraphSnapshot,
                      max_staleness: int, params: Tuple, coupling_id,
                      digest) -> Optional[PropagationResult]:
        """Probe the result cache across the admissible version window.

        Newest-first over the retained history, stopping at
        ``snapshot.version - max_staleness``.  A hit on an older version
        is exactly the staleness contract: the caller preferred an
        already-computed answer within its bound over waiting for a cold
        solve against the freshest snapshot.
        """
        floor = snapshot.version - max_staleness
        for old in reversed(entry.history):
            if old.version > snapshot.version:
                continue  # an update raced us; stay within the bound
            if old.version < floor:
                break
            cached = self.results.lookup(
                old.graph, (old.version, params, coupling_id, digest))
            if cached is not None:
                if old.version != snapshot.version:
                    self._m_stale_hits.inc(graph=snapshot.name)
                return cached
        return None

    def query(self, graph_name: str, coupling: CouplingMatrix,
              explicit_residuals: np.ndarray,
              spec: Optional[QuerySpec] = None, *,
              max_staleness: int = 0, **legacy) -> PropagationResult:
        """Run one propagation query, coalescing with concurrent peers.

        Semantically identical to calling :func:`repro.core.linbp.linbp`
        (or ``linbp_star`` / :func:`repro.core.sbp.sbp`) on the graph's
        current snapshot; concurrently submitted queries that share the
        snapshot, coupling values and the spec's
        :meth:`~repro.service.spec.QuerySpec.solver_params` are
        dispatched as one stacked batch.  Results may be served from the
        TTL+LRU cache when an identical request (same snapshot version,
        same explicit bytes) was answered recently; cached results are
        shared — treat them as read-only.

        ``spec`` is the single parameter object describing the solve
        (method, iteration budget, dtype, precision — see
        :class:`~repro.service.spec.QuerySpec`); ``None`` means the
        default spec.  The pre-QuerySpec keyword arguments (``method=``,
        ``max_iterations=``, ...) are accepted as a deprecated shim that
        emits a :class:`DeprecationWarning`.

        ``max_staleness`` bounds how old an answer may be: ``s > 0``
        lets the query be served from the cache of any retained snapshot
        whose version is within ``s`` of current — so reads tolerant of
        slightly-stale data keep hitting warm results while a mutation's
        cold new version is still being computed against.  ``0``
        (default) only ever serves the current version.
        """
        spec = self._resolve_spec(spec, legacy)
        max_staleness = int(max_staleness)
        if max_staleness < 0:
            raise ValidationError("max_staleness must be >= 0")
        family, echo = spec.family, spec.echo
        precision = spec.precision
        dtype = spec.numpy_dtype
        tolerance = spec.tolerance
        max_iterations = spec.max_iterations
        num_iterations = spec.num_iterations
        entry = self._entry(graph_name)
        snapshot = entry.snapshot
        explicit = np.ascontiguousarray(explicit_residuals, dtype=np.float64)
        expected = (snapshot.graph.num_nodes, coupling.num_classes)
        if explicit.shape != expected:
            raise ValidationError(
                f"explicit beliefs must have shape {expected}, "
                f"got {explicit.shape}")
        self._m_queries.inc(graph=graph_name)
        params = spec.solver_params()
        coupling_id = engine_plan.coupling_key(coupling)
        digest = hashlib.sha1(explicit.tobytes()).digest()
        result_key = (snapshot.version, params, coupling_id, digest)
        with span("service.result_cache_lookup", graph=graph_name,
                  stale_window=max_staleness) as probe:
            if max_staleness:
                cached = self._lookup_stale(entry, snapshot, max_staleness,
                                            params, coupling_id, digest)
            else:
                cached = self.results.lookup(snapshot.graph, result_key)
            probe.set_tag("outcome", "hit" if cached is not None else "miss")
        RESULT_CACHE_LOOKUPS.inc(
            outcome="hit" if cached is not None else "miss")
        if cached is not None:
            return cached
        if family == "sbp":
            labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
            batch_key = (id(snapshot.graph), snapshot.version, params,
                         coupling_id, labeled.tobytes())

            def dispatch(items: List[object]) -> Sequence[PropagationResult]:
                explicits = [item[0] for item in items]
                if precision == "auto":
                    results, _ = engine_precision.run_sbp_batch_auto(
                        snapshot.graph, coupling, explicits,
                        tolerance=tolerance)
                    return results
                return engine_sbp.run_sbp_batch(
                    snapshot.graph, coupling, explicits, dtype=dtype)
        else:
            batch_key = (id(snapshot.graph), snapshot.version, params,
                         coupling_id)

            def dispatch(items: List[object]) -> Sequence[PropagationResult]:
                explicits = [item[0] for item in items]
                if isinstance(snapshot, ShardedSnapshot):
                    return self._dispatch_sharded(
                        entry, snapshot, coupling, echo, explicits,
                        max_iterations=max_iterations, tolerance=tolerance,
                        num_iterations=num_iterations,
                        dtype=dtype, precision=precision)
                if precision == "auto":
                    results, _ = engine_precision.run_batch_auto(
                        snapshot.graph, coupling, explicits,
                        echo_cancellation=echo,
                        max_iterations=max_iterations, tolerance=tolerance,
                        num_iterations=num_iterations)
                    return results
                plan = engine_plan.get_plan(snapshot.graph, coupling,
                                            echo_cancellation=echo,
                                            dtype=dtype)
                return engine_batch.run_batch(
                    plan, explicits,
                    max_iterations=max_iterations, tolerance=tolerance,
                    num_iterations=num_iterations)

        def dispatch_and_cache(items: List[object]
                               ) -> Sequence[PropagationResult]:
            with span("service.dispatch", graph=graph_name, family=family,
                      batch=len(items)):
                results = dispatch(items)
            for (_, key), result in zip(items, results):
                result.extra.setdefault("snapshot_version", snapshot.version)
                self.results.store(snapshot.graph, key, result)
            return results

        return self.batcher.submit(batch_key, (explicit, result_key),
                                   dispatch_and_cache)

    # ------------------------------------------------------------------ #
    # sharded execution
    # ------------------------------------------------------------------ #
    def _dispatch_sharded(self, entry: "_GraphEntry",
                          snapshot: "ShardedSnapshot",
                          coupling: CouplingMatrix, echo: bool,
                          explicits: List[np.ndarray],
                          max_iterations: int, tolerance: float,
                          num_iterations: Optional[int],
                          dtype=None, precision: str = "strict"
                          ) -> Sequence[PropagationResult]:
        """Run one coalesced batch through the shard block engine.

        The graph entry's executor (worker pool or sequential) is
        created lazily and reused across batches; executor use is
        serialised by the entry's executor lock (one batch at a time per
        graph — the pool owns a single set of belief buffers).  A batch
        wider than the pool's buffer capacity falls back to a one-off
        in-process execution rather than failing.

        Auto precision evaluates the Lemma-8 certificate on the global
        (cached, float64) plan before choosing the block plan's dtype:
        certified batches sweep float32 shard blocks, refusals sweep
        exact float64 (no presolve — the pool runs one dtype at a time,
        and seeding would double its traffic).
        """
        if dtype is None:
            dtype = array_backend.DEFAULT_DTYPE
        decision = None
        if precision == "auto":
            plan64 = engine_plan.get_plan(snapshot.graph, coupling,
                                          echo_cancellation=echo)
            decision = engine_precision.decide_linbp(
                plan64, tolerance,
                scale=engine_precision.explicit_scale(explicits))
            dtype = np.float32 if decision.certified else np.float64
        plan = shard_engine.get_sharded_plan(snapshot.partition, coupling,
                                             echo_cancellation=echo,
                                             dtype=dtype)
        width = len(explicits) * coupling.num_classes
        with entry.executor_lock:
            executor = entry.executor
            if executor is None \
                    or executor.partition is not snapshot.partition:
                if executor is not None:
                    executor.close()
                executor = self._make_executor(snapshot.partition,
                                               coupling.num_classes)
                entry.executor = executor
            capacity = getattr(executor, "capacity", None)
            if capacity is None or width <= capacity:
                results = shard_engine.run_sharded_batch(
                    plan, explicits, max_iterations=max_iterations,
                    tolerance=tolerance, num_iterations=num_iterations,
                    executor=executor)
            else:
                executor = None
        if executor is None:
            results = shard_engine.run_sharded_batch(
                plan, explicits, max_iterations=max_iterations,
                tolerance=tolerance, num_iterations=num_iterations)
        if decision is not None:
            payload = decision.as_extra()
            for result in results:
                result.extra["precision"] = dict(payload)
        return results

    def _make_executor(self, partition: GraphPartition, num_classes: int):
        """Build the configured shard executor for one partition.

        The pool's buffer capacity is sized so a full coalesced batch
        (``max_batch`` queries) of the *triggering* coupling's classes
        fits; a later coupling with more classes than this falls back to
        the in-process path for its oversized batches.  Pool creation
        can fail on platforms without working ``multiprocessing``/
        ``shared_memory`` (or in sandboxes denying process spawns); the
        service degrades to the in-process executor rather than failing
        queries.
        """
        if self._shard_executor == "pool":
            try:
                return shard_pool.ShardWorkerPool(
                    partition,
                    max_columns=max(shard_pool.DEFAULT_MAX_COLUMNS,
                                    self.batcher.max_batch * num_classes))
            except (OSError, ValueError, ImportError):
                pass
        return shard_engine.SequentialShardExecutor(partition)

    # ------------------------------------------------------------------ #
    # maintained views
    # ------------------------------------------------------------------ #
    def create_view(self, graph_name: str, view_name: str,
                    coupling: CouplingMatrix, explicit_residuals: np.ndarray,
                    method: str = "sbp", max_iterations: int = 200,
                    tolerance: float = 1e-10) -> PropagationResult:
        """Create a named maintained view and compute its initial result.

        The view is kept current by :meth:`update`: label changes ride
        the ΔSBP repair (``method="sbp"``) or the superposition solve
        (LinBP family); edge insertions ride the Algorithm 4 repair or a
        warm-started iteration.  Views pin their *own* graph lineage —
        they evolve with the updates applied through this service, in
        lock step with the snapshot version.
        """
        if method not in _METHODS:
            raise ValidationError(
                f"unknown method {method!r}; expected one of "
                f"{sorted(_METHODS)}")
        family, echo = _METHODS[method]
        entry = self._entry(graph_name)
        with entry.lock:
            if view_name in entry.views:
                raise ValidationError(
                    f"view {view_name!r} already exists on graph "
                    f"{graph_name!r}")
            graph = entry.snapshot.graph
            if family == "sbp":
                runner = SBP(graph, coupling)
            else:
                runner = IncrementalLinBP(
                    graph, coupling, echo_cancellation=echo,
                    max_iterations=max_iterations, tolerance=tolerance)
            view = _MaintainedView(view_name, method, runner)
            view.last_result = runner.run(explicit_residuals)
            entry.views[view_name] = view
            return view.last_result

    def view_result(self, graph_name: str, view_name: str) -> PropagationResult:
        """The most recent result of a maintained view."""
        entry = self._entry(graph_name)
        with entry.lock:
            view = entry.views.get(view_name)
            if view is None:
                raise ValidationError(
                    f"unknown view {view_name!r} on graph {graph_name!r}")
            return view.last_result

    def view_names(self, graph_name: str) -> List[str]:
        """Names of the maintained views of one graph (sorted)."""
        entry = self._entry(graph_name)
        with entry.lock:
            return sorted(entry.views)

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def update(self, graph_name: str,
               new_beliefs: Optional[Union[Dict[int, np.ndarray],
                                           np.ndarray]] = None,
               new_edges: Optional[Sequence[Union[Tuple[int, int],
                                                  Tuple[int, int, float],
                                                  Edge]]] = None
               ) -> GraphSnapshot:
        """Apply a mutation and install a new snapshot (version + 1).

        ``new_edges`` produces a successor graph via
        :meth:`Graph.with_edges_added`; ``new_beliefs`` updates the base
        explicit beliefs of every maintained view.  Either way each view
        is repaired through its incremental path — ΔSBP Algorithms 3/4
        for SBP views, superposition / warm restart for LinBP views —
        and the snapshot version is bumped, so queries submitted after
        this call see the new state while in-flight queries finish on
        the snapshot they pinned.

        Both inputs are validated *before* any view is touched (the
        successor graph is built first, so malformed edges raise before
        any repair runs, and belief shapes are checked against every
        view up front) — a rejected update leaves the service exactly as
        it was.
        """
        if new_beliefs is None and new_edges is None:
            raise ValidationError(
                "update() needs new_beliefs and/or new_edges")
        entry = self._entry(graph_name)
        with entry.lock:
            old = entry.snapshot
            graph = old.graph
            edges = None
            if new_edges is not None:
                edges = list(new_edges)
                if not edges:
                    raise ValidationError("new_edges must not be empty")
                # Building the successor graph validates every edge
                # (ids, weights, self-loops) before any view mutates.
                graph = graph.with_edges_added(edges)
            if new_beliefs is not None:
                for view in entry.views.values():
                    self._check_belief_update(old.graph, view, new_beliefs)
            if edges is not None:
                # Every view repairs against the one successor graph built
                # above: the snapshot and all maintained runners share a
                # single Graph object, so the engine's id()-keyed plan
                # caches serve view repairs and one-shot queries alike.
                for view in entry.views.values():
                    view.last_result = view.runner.add_edges(
                        edges, updated_graph=graph)
            if new_beliefs is not None:
                for view in entry.views.values():
                    view.last_result = \
                        view.runner.add_explicit_beliefs(new_beliefs)
            if graph is old.graph and isinstance(old, ShardedSnapshot):
                # Belief-only updates keep the graph object: reuse the
                # partition (and, downstream, the live executor).
                snapshot = ShardedSnapshot(name=graph_name,
                                           version=old.version + 1,
                                           graph=graph,
                                           partition=old.partition)
            elif (edges is not None and isinstance(old, ShardedSnapshot)
                  and self._incremental_repartition):
                # Edge delta on a sharded graph: repair only the shards
                # owning a delta endpoint instead of re-running the
                # partitioner — identical blocks, a fraction of the work.
                with span("shard.repair", graph=graph_name,
                          edges=len(edges)) as repair_span:
                    repaired = shard_repair.repair_partition(old.partition,
                                                             graph, edges)
                    repair_span.set_tag("repaired_shards",
                                        len(repaired.repaired_shards))
                SHARD_REPAIRS.inc(kind="incremental")
                snapshot = ShardedSnapshot(name=graph_name,
                                           version=old.version + 1,
                                           graph=graph,
                                           partition=repaired.partition)
                entry.incremental_repairs += 1
                if entry.baseline_stats is not None:
                    entry.cut_drift = shard_repair.cut_drift(
                        entry.baseline_stats, repaired.partition.stats())
            else:
                snapshot = self._build_snapshot(graph_name, old.version + 1,
                                                graph)
                if isinstance(snapshot, ShardedSnapshot):
                    entry.baseline_stats = snapshot.partition.stats()
                    entry.cut_drift = 0.0
            self._install_snapshot(entry, snapshot)
            schedule_repartition = (
                self._repartition_drift is not None
                and isinstance(snapshot, ShardedSnapshot)
                and entry.cut_drift > self._repartition_drift)
            if schedule_repartition:
                self._schedule_repartition(graph_name, entry, graph)
            self._m_updates.inc(graph=graph_name)
            self._m_snapshot_version.set(snapshot.version, graph=graph_name)
        if graph is not old.graph:
            # Edge mutations installed a new graph (and, when sharded, a
            # new partition): retire the executor built for the old
            # partition.  The next sharded query builds a fresh one.
            self._close_entry_executor(entry)
        return snapshot

    # ------------------------------------------------------------------ #
    # background re-partitioning
    # ------------------------------------------------------------------ #
    def _schedule_repartition(self, graph_name: str, entry: "_GraphEntry",
                              graph: Graph) -> None:
        """Kick off a background full re-partition (at most one per graph).

        Called under the entry's mutation lock.  The daemon thread runs
        the partitioner off the update path; if yet another edge update
        lands while it runs, the swap is abandoned (the newer update's
        own drift check will schedule a fresh pass).
        """
        thread = entry.repartition_thread
        if thread is not None and thread.is_alive():
            return
        thread = threading.Thread(
            target=self._background_repartition,
            args=(graph_name, entry, graph),
            name=f"repartition-{graph_name}", daemon=True)
        entry.repartition_thread = thread
        thread.start()

    def _background_repartition(self, graph_name: str, entry: "_GraphEntry",
                                graph: Graph) -> None:
        try:
            with span("shard.repartition", graph=graph_name,
                      shards=self._shards):
                partition = partition_graph(graph, self._shards,
                                            method=self._shard_method)
        except Exception:
            return  # a failed background pass must never hurt the service
        if self._swap_partition(graph_name, entry, graph, partition):
            SHARD_REPAIRS.inc(kind="full")

    def _swap_partition(self, graph_name: str, entry: "_GraphEntry",
                        graph: Graph, partition: GraphPartition) -> bool:
        """Install a freshly grown partition for an unchanged graph.

        Same graph object, same version — only the shard layout changes,
        so cached results and in-flight queries are untouched.  Returns
        ``False`` (a no-op) when a newer update superseded ``graph``
        while the partitioner ran.
        """
        with entry.lock:
            current = entry.snapshot
            if current.graph is not graph \
                    or not isinstance(current, ShardedSnapshot):
                return False
            snapshot = ShardedSnapshot(name=graph_name,
                                       version=current.version,
                                       graph=graph, partition=partition)
            entry.snapshot = snapshot
            if entry.history and entry.history[-1] is current:
                entry.history = entry.history[:-1] + (snapshot,)
            entry.baseline_stats = partition.stats()
            entry.full_repartitions += 1
            entry.cut_drift = 0.0
        # The old executor was built for the replaced partition.
        self._close_entry_executor(entry)
        return True

    def repartition_now(self, graph_name: str) -> bool:
        """Synchronously re-run the partitioner for one sharded graph.

        The foreground twin of the drift-triggered background pass
        (useful for tests and operational tooling).  Returns ``True``
        when a fresh partition was installed, ``False`` when the graph
        is not sharded or was mutated mid-pass.
        """
        entry = self._entry(graph_name)
        snapshot = entry.snapshot
        if not isinstance(snapshot, ShardedSnapshot):
            return False
        graph = snapshot.graph
        partition = partition_graph(graph, self._shards,
                                    method=self._shard_method)
        return self._swap_partition(graph_name, entry, graph, partition)

    def join_repartitions(self, timeout: Optional[float] = None) -> bool:
        """Wait for every in-flight background re-partition to finish.

        Returns ``True`` when none are left running (always, with no
        ``timeout``).  Tests use this to make the background swap
        deterministic; operationally it is a drain hook for shutdown.
        """
        with self._lock:
            entries = list(self._graphs.values())
        done = True
        for entry in entries:
            thread = entry.repartition_thread
            if thread is not None:
                thread.join(timeout)
                done = done and not thread.is_alive()
        return done

    @staticmethod
    def _check_belief_update(graph: Graph, view: _MaintainedView,
                             new_beliefs: Union[Dict[int, np.ndarray],
                                                np.ndarray]) -> None:
        """Reject a belief update that any view's runner would refuse.

        Runs the same shape/range checks as the runners' own
        ``add_explicit_beliefs`` validation, but against *every* view
        before *any* of them mutates — so a malformed update cannot be
        half-applied across views (or land after the edge repairs).
        """
        num_classes = view.runner.coupling.num_classes
        if isinstance(new_beliefs, Mapping):
            for node, vector in new_beliefs.items():
                index = int(node)
                if index < 0 or index >= graph.num_nodes:
                    raise ValidationError(
                        f"node {node} out of range [0, {graph.num_nodes})")
                if np.asarray(vector, dtype=float).shape != (num_classes,):
                    raise ValidationError(
                        f"belief vector for node {node} must have "
                        f"length {num_classes}")
            return
        matrix = np.asarray(new_beliefs, dtype=float)
        expected = (graph.num_nodes, num_classes)
        if matrix.shape != expected:
            raise ValidationError(
                f"expected a {expected[0]} x {expected[1]} matrix of "
                f"new beliefs for view {view.name!r}")

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Service counters: traffic, coalescing, caches, graph versions.

        The scalar counters are read off the service's always-on metrics
        registry (:attr:`registry`) — the same series the ``metrics``
        wire op and :func:`repro.obs.render_prometheus` export — summed
        across their per-graph label series and returned as the exact
        historical ints, so the dict shape predates the telemetry layer
        unchanged.
        """
        with self._lock:
            entries = dict(self._graphs)
        queries = int(self._m_queries.value())
        updates = int(self._m_updates.value())
        stale_hits = int(self._m_stale_hits.value())
        versions = {}
        views = {}
        shard_info = {}
        for name, entry in entries.items():
            versions[name] = entry.snapshot.version
            snapshot = entry.snapshot
            if isinstance(snapshot, ShardedSnapshot):
                partition_stats = snapshot.partition.stats()
                # Plain read: the lock is held for whole batches, and a
                # stats call must not stall behind a running dispatch.
                executor = entry.executor
                repartition_thread = entry.repartition_thread
                shard_info[name] = {
                    "num_shards": partition_stats.num_shards,
                    "method": partition_stats.method,
                    "cut_edges": partition_stats.cut_edges,
                    "cut_fraction": partition_stats.cut_fraction,
                    "balance": partition_stats.balance,
                    "executor": type(executor).__name__
                    if executor is not None else None,
                    "incremental_repairs": entry.incremental_repairs,
                    "full_repartitions": entry.full_repartitions,
                    "cut_drift": entry.cut_drift,
                    "repartition_pending": repartition_thread is not None
                    and repartition_thread.is_alive(),
                }
            # View dicts mutate under the per-graph lock (create_view), so
            # read them under the same lock to keep iteration safe.
            with entry.lock:
                if entry.views:
                    views[name] = {
                        view_name: {"method": view.method,
                                    "nodes_updated_total":
                                        view.nodes_updated_total}
                        for view_name, view in entry.views.items()}
        return {
            "queries": queries,
            "updates": updates,
            "stale_hits": stale_hits,
            "graphs": versions,
            "views": views,
            "shards": shard_info,
            "coalescer": dict(self.batcher.stats),
            "result_cache": {"size": len(self.results),
                             **self.results.stats},
            "plan_cache": engine_plan.plan_cache_info(),
        }
