"""The query parameter object of the service layer.

:class:`QuerySpec` is the *single* description of "how to solve one
propagation query": method, iteration budget, tolerance, dtype and
precision mode.  One frozen, hashable value object travels through every
layer that used to take a sprawl of keyword arguments —

* :meth:`repro.service.service.PropagationService.query` takes a spec
  (the old kwargs survive as a deprecated shim that builds one);
* the coalescer's batch key and the result-cache key embed
  :meth:`QuerySpec.solver_params`, so "may these requests share a
  batch?" is a value comparison on specs;
* the wire protocol (:mod:`repro.service.protocol`) builds a spec
  straight from the request object via :meth:`QuerySpec.from_request`,
  so the line protocol and the Python API accept exactly the same
  parameter surface.

Specs are validated on construction (unknown method, bad dtype, bad
precision, non-positive budgets all raise
:class:`~repro.exceptions.ValidationError` immediately), which moves
every parameter error to the edge — by the time a spec reaches the
engines it is known-good.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.engine import backend as array_backend
from repro.engine import precision as engine_precision
from repro.exceptions import ValidationError

__all__ = ["QuerySpec", "METHODS"]

#: Methods the service can route; values are (solver family, echo flag).
METHODS: Dict[str, Tuple[str, bool]] = {
    "linbp": ("linbp", True),
    "linbp*": ("linbp", False),
    "sbp": ("sbp", True),
}


@dataclass(frozen=True)
class QuerySpec:
    """How to solve one propagation query (frozen, hashable, validated).

    Parameters
    ----------
    method:
        ``"linbp"`` (echo-cancelled LinBP, the default), ``"linbp*"``
        (no echo cancellation) or ``"sbp"`` (single-pass).
    max_iterations, tolerance, num_iterations:
        Iterative solver budget; ``num_iterations`` pins an exact sweep
        count (disabling the convergence check).  Ignored by the
        single-pass SBP family except where ``precision="auto"`` reads
        the tolerance for its certificate.
    dtype:
        Kernel element width as a canonical dtype *name* (``"float64"``
        default, ``"float32"``); any numpy dtype-like spells it.
    precision:
        ``"strict"`` runs exactly ``dtype``; ``"auto"`` lets the
        Lemma-8 certificate choose (see :mod:`repro.engine.precision`).
    """

    method: str = "linbp"
    max_iterations: int = 100
    tolerance: float = 1e-10
    num_iterations: Optional[int] = None
    dtype: str = "float64"
    precision: str = "strict"

    def __post_init__(self):
        if self.method not in METHODS:
            raise ValidationError(
                f"unknown method {self.method!r}; expected one of "
                f"{sorted(METHODS)}")
        object.__setattr__(self, "precision",
                           engine_precision.validate_precision(self.precision))
        dtype = array_backend.canonical_dtype(
            self.dtype if self.dtype is not None
            else array_backend.DEFAULT_DTYPE)
        object.__setattr__(self, "dtype", dtype.name)
        try:
            max_iterations = int(self.max_iterations)
            tolerance = float(self.tolerance)
            num_iterations = None if self.num_iterations is None \
                else int(self.num_iterations)
        except (TypeError, ValueError) as error:
            raise ValidationError(f"malformed QuerySpec field: {error}")
        if max_iterations < 1:
            raise ValidationError("max_iterations must be >= 1")
        if not tolerance > 0.0:
            raise ValidationError("tolerance must be > 0")
        if num_iterations is not None and num_iterations < 1:
            raise ValidationError("num_iterations must be >= 1 (or None)")
        object.__setattr__(self, "max_iterations", max_iterations)
        object.__setattr__(self, "tolerance", tolerance)
        object.__setattr__(self, "num_iterations", num_iterations)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    @property
    def family(self) -> str:
        """Solver family: ``"linbp"`` or ``"sbp"``."""
        return METHODS[self.method][0]

    @property
    def echo(self) -> bool:
        """Whether the LinBP-family solve cancels echo terms."""
        return METHODS[self.method][1]

    @property
    def numpy_dtype(self) -> np.dtype:
        """The spec's dtype as a numpy dtype object."""
        return array_backend.canonical_dtype(self.dtype)

    def solver_params(self) -> Tuple:
        """The batch/result-cache key fragment this spec contributes.

        Two queries may coalesce into one stacked engine call (and share
        cached results) exactly when their snapshot, coupling and
        ``solver_params()`` agree.  Single-pass SBP ignores the
        iterative budget, so those fields must not fragment its batches:
        requests differing only in ``max_iterations``/``tolerance``
        still share a key — except under ``precision="auto"``, whose
        certificate depends on the tolerance.
        """
        if self.family == "sbp":
            return (self.method, self.dtype, self.precision) \
                + ((self.tolerance,) if self.precision == "auto" else ())
        return (self.method, self.dtype, self.precision,
                self.max_iterations, self.tolerance, self.num_iterations)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_request(cls, request: Mapping,
                     defaults: "Optional[QuerySpec]" = None) -> "QuerySpec":
        """Build a spec from a wire-protocol request object.

        Reads exactly the dataclass's field names from ``request``
        (other keys — ``op``, ``graph``, ``beliefs``, ... — are the
        transport's business and ignored here); missing fields keep
        their defaults — the class defaults, or ``defaults``'s field
        values when a base spec is given (how ``repro serve --config``
        applies a tuned artifact's query section to requests that do
        not bring their own settings).  Validation happens in
        ``__post_init__``, so a malformed field raises
        :class:`ValidationError` with the wire error code
        ``validation``.
        """
        kwargs = {} if defaults is None else \
            {field.name: getattr(defaults, field.name) for field in
             fields(cls)}
        kwargs.update(
            {field.name: request[field.name] for field in fields(cls)
             if field.name in request and request[field.name] is not None})
        return cls(**kwargs)
