"""Transports for the propagation service: a stdin loop and a TCP server.

Both speak the line protocol of :mod:`repro.service.protocol` against one
shared :class:`~repro.service.protocol.ServiceSession`:

* :func:`serve_stream` — read JSON request lines from a text stream,
  write plain-text response lines to another; used by ``repro serve``
  without ``--port`` (pipe-friendly, one client);
* :class:`LineProtocolServer` — a ``ThreadingTCPServer`` handling one
  connection per thread; because every connection shares the session,
  concurrent clients hit the same graphs and the service's coalescer
  batches their simultaneous queries.
"""

from __future__ import annotations

import socketserver
import threading
from typing import IO, Optional, Tuple

from repro.service.protocol import ServiceSession

__all__ = ["serve_stream", "LineProtocolServer"]


def serve_stream(session: ServiceSession, in_stream: IO[str],
                 out_stream: IO[str]) -> int:
    """Serve requests from a text stream until EOF or ``shutdown``.

    Returns the number of requests processed.  Blank lines are skipped
    (convenient for hand-typed sessions); responses are flushed after
    every line so the loop works over pipes.
    """
    handled = 0
    for line in in_stream:
        if not line.strip():
            continue
        response, keep_running = session.handle_line(line)
        handled += 1
        out_stream.write(response + "\n")
        out_stream.flush()
        if not keep_running:
            break
    return handled


class _LineProtocolHandler(socketserver.StreamRequestHandler):
    """One TCP connection: newline-delimited requests in, responses out."""

    def handle(self) -> None:
        session: ServiceSession = self.server.session
        while True:
            raw = self.rfile.readline()
            if not raw:
                return
            line = raw.decode("utf-8", errors="replace")
            if not line.strip():
                continue
            response, keep_running = session.handle_line(line)
            self.wfile.write((response + "\n").encode("utf-8"))
            if not keep_running:
                # A shutdown request stops the whole server, not just
                # this connection; shutdown() must run off-thread.
                threading.Thread(target=self.server.shutdown,
                                 daemon=True).start()
                return


class LineProtocolServer(socketserver.ThreadingTCPServer):
    """Threaded TCP front end for a shared :class:`ServiceSession`.

    Bind to port 0 to let the OS pick a free port (``server_address``
    reports the actual one) — the pattern the tests and the benchmark
    harness use.  ``serve_forever()`` blocks; call it from a dedicated
    thread when embedding.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int],
                 session: Optional[ServiceSession] = None):
        super().__init__(address, _LineProtocolHandler)
        self.session = session if session is not None else ServiceSession()
