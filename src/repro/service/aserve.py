"""Asyncio front end for the propagation service.

The thread-per-connection TCP server (:mod:`repro.service.server`)
serves each client with a dedicated OS thread and no traffic policing —
fine for a handful of trusted clients, wrong for the ROADMAP's sustained
mixed mutation+query traffic.  :class:`AsyncServiceServer` fronts the
*same* shared :class:`~repro.service.protocol.ServiceSession` with one
event loop and three policies:

* **Admission control** — a bounded count of in-flight requests across
  all connections (``max_pending``).  A request arriving over the bound
  is answered immediately with an ``overloaded`` error (503-style, in
  the request's own protocol version) instead of queueing without bound;
  the client retries with backoff.  Load shedding happens *before* any
  propagation work.
* **Backpressure** — a per-connection cap on requests admitted but not
  yet answered (``max_inflight``).  A connection pipelining past the cap
  is simply not read from until responses drain, so the kernel's TCP
  flow control pushes back on the sender — no buffering cliff.
  Responses are always written in request order per connection.
* **Staleness bounds** — request execution is off-loop (a worker-thread
  pool runs the blocking ``handle_line``), so queries never wait behind
  an in-progress mutation's lock; a query carrying ``"staleness": s``
  may additionally be served from a snapshot up to ``s`` versions old
  (see :meth:`repro.service.service.PropagationService.query`), keeping
  reads warm while a mutation's cold new version is computed.

Because every connection shares the session and requests run on a
thread pool, concurrent queries from different asyncio clients coalesce
in the service's micro-batcher exactly as threaded-server traffic does.

Usage::

    server = AsyncServiceServer(session, max_pending=64, max_inflight=8)
    await server.start(host="127.0.0.1", port=7155)
    await server.serve_until_shutdown()     # returns after {"op": "shutdown"}

or, from the CLI, ``repro serve --async --port 7155``.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Tuple

from repro.exceptions import ValidationError
from repro.obs import counter
from repro.service.protocol import ServiceSession

__all__ = ["AsyncServiceServer", "serve_async"]

#: Admission-control refusals (the per-instance ``stats["rejected"]``
#: dict entry remains the per-server source of truth).
REJECTIONS = counter(
    "repro_service_rejections_total",
    "Requests rejected by async admission control (overloaded).")

#: Default bound on in-flight requests across all connections.
DEFAULT_MAX_PENDING = 64
#: Default per-connection cap on admitted-but-unanswered requests.
DEFAULT_MAX_INFLIGHT = 8
#: Default worker threads executing requests (coalescing needs enough
#: workers for concurrent arrivals to overlap inside the batch window).
DEFAULT_WORKERS = 16


class AsyncServiceServer:
    """Asyncio TCP server with admission control and backpressure.

    Parameters
    ----------
    session:
        The shared :class:`ServiceSession`; built from
        ``session_options`` when omitted.
    max_pending:
        Global in-flight request bound; arrivals beyond it are rejected
        with an ``overloaded`` error (code ``overloaded`` in v1, an
        ``error server overloaded: ...`` line in v0).  ``0`` rejects
        everything — useful for drain/maintenance and tests.
    max_inflight:
        Per-connection cap on admitted-but-unanswered requests; a
        pipelining client is not read past it (TCP backpressure).
    workers:
        Threads executing ``handle_line`` off the event loop.
    """

    def __init__(self, session: Optional[ServiceSession] = None, *,
                 max_pending: int = DEFAULT_MAX_PENDING,
                 max_inflight: int = DEFAULT_MAX_INFLIGHT,
                 workers: int = DEFAULT_WORKERS, **session_options):
        if max_pending < 0:
            raise ValidationError("max_pending must be >= 0")
        if max_inflight < 1:
            raise ValidationError("max_inflight must be >= 1")
        if workers < 1:
            raise ValidationError("workers must be >= 1")
        self.session = session if session is not None \
            else ServiceSession(**session_options)
        self.max_pending = int(max_pending)
        self.max_inflight = int(max_inflight)
        self._executor = ThreadPoolExecutor(
            max_workers=int(workers), thread_name_prefix="aserve")
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown_event: Optional[asyncio.Event] = None
        self._pending = 0  # loop-thread-only; no lock needed
        self._connections: set = set()
        self.stats = {"connections": 0, "requests": 0, "rejected": 0}

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Bind and start accepting connections; return ``(host, port)``.

        Port ``0`` lets the OS pick a free port — read the actual one
        from the return value or :attr:`address`.
        """
        if self._server is not None:
            raise ValidationError("server is already started")
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host, port)
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` of a started server."""
        if self._server is None or not self._server.sockets:
            raise ValidationError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_until_shutdown` to return (idempotent)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` op (or :meth:`request_shutdown`)."""
        if self._shutdown_event is None:
            raise ValidationError("server is not started")
        await self._shutdown_event.wait()
        await self.close()

    async def close(self) -> None:
        """Stop accepting, close open connections, drain the pool."""
        self.request_shutdown()
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        connections = [task for task in self._connections if not task.done()]
        for task in connections:
            task.cancel()
        if connections:
            await asyncio.gather(*connections, return_exceptions=True)
        self._executor.shutdown(wait=True)

    # ------------------------------------------------------------------ #
    # per-connection machinery
    # ------------------------------------------------------------------ #
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self.stats["connections"] += 1
        loop = asyncio.get_event_loop()
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        # The in-order response queue doubles as the in-flight cap: when
        # ``max_inflight`` responses are admitted but unwritten, the
        # ``put`` below blocks, the reader stops reading, and TCP flow
        # control backpressures the client.
        responses: asyncio.Queue = asyncio.Queue(maxsize=self.max_inflight)
        writer_task = loop.create_task(self._write_responses(responses,
                                                             writer))
        try:
            while not self._shutdown_event.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace")
                if not text.strip():
                    continue
                await responses.put(self._submit(loop, text))
            await responses.put(None)
            await writer_task
        except asyncio.CancelledError:
            # close() tears down lingering connections; exit cleanly so
            # the streams machinery never logs a cancelled handler.
            writer_task.cancel()
            try:
                await writer_task
            except asyncio.CancelledError:
                pass
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    def _submit(self, loop: asyncio.AbstractEventLoop,
                line: str) -> "asyncio.Future":
        """Admit one request (or reject it) and return its future reply.

        Runs on the event-loop thread, so the pending counter needs no
        lock.  Admitted requests execute ``handle_line`` on the worker
        pool; rejected ones resolve immediately to an ``overloaded``
        error in the request's own protocol version.
        """
        if self._pending >= self.max_pending:
            self.stats["rejected"] += 1
            REJECTIONS.inc()
            future = loop.create_future()
            future.set_result((self.session.overload_response(
                line, f"server overloaded: {self._pending} requests in "
                      f"flight (max_pending={self.max_pending})"), True))
            return future
        self._pending += 1
        self.stats["requests"] += 1

        async def run():
            try:
                return await loop.run_in_executor(
                    self._executor, self.session.handle_line, line)
            finally:
                self._pending -= 1

        return loop.create_task(run())

    async def _write_responses(self, responses: asyncio.Queue,
                               writer: asyncio.StreamWriter) -> None:
        """Drain the response queue in admission order onto the socket."""
        while True:
            future = await responses.get()
            if future is None:
                return
            response, keep_running = await future
            writer.write((response + "\n").encode("utf-8"))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                return
            if not keep_running:
                # A shutdown op stops the whole server.  Closing this
                # connection's transport also unblocks its reader loop.
                self.request_shutdown()
                return


async def serve_async(session: Optional[ServiceSession] = None, *,
                      host: str = "127.0.0.1", port: int = 0,
                      max_pending: int = DEFAULT_MAX_PENDING,
                      max_inflight: int = DEFAULT_MAX_INFLIGHT,
                      workers: int = DEFAULT_WORKERS,
                      ready=None) -> None:
    """Run an :class:`AsyncServiceServer` until a ``shutdown`` op.

    The coroutine behind ``repro serve --async``.  ``ready`` (when
    given) is called with the bound ``(host, port)`` once the server is
    listening — the CLI uses it to print the actual port.
    """
    server = AsyncServiceServer(session, max_pending=max_pending,
                                max_inflight=max_inflight, workers=workers)
    address = await server.start(host=host, port=port)
    if ready is not None:
        ready(address)
    try:
        await server.serve_until_shutdown()
    finally:
        await server.close()
