"""Line protocol of ``repro serve``: JSON requests, plain-text responses.

One request per line, encoded as a JSON object with an ``"op"`` field;
one response per line, plain text, starting with ``ok`` or ``error`` —
the same pipe-friendly convention as the rest of the CLI.  The protocol
is transport-agnostic: the stdin loop and the TCP server in
:mod:`repro.service.server` both feed lines through one shared
:class:`ServiceSession` (so graphs loaded by one TCP client are visible
to every other client, which is what makes cross-client coalescing
possible).

Operations::

    {"op": "load_graph", "name": "g", "edges": [[0, 1], [1, 2, 0.5]]}
    {"op": "load_coupling", "name": "h", "stochastic": [[0.8, 0.2], [0.2, 0.8]],
     "epsilon": 0.3}
    {"op": "query", "graph": "g", "coupling": "h", "method": "linbp",
     "beliefs": [[0, 0, 0.1], [2, 1, 0.1]]}
    {"op": "view", "graph": "g", "name": "fraud", "coupling": "h",
     "method": "sbp", "beliefs": [[0, 0, 0.1]]}
    {"op": "read_view", "graph": "g", "name": "fraud"}
    {"op": "update", "graph": "g", "edges": [[2, 3]],
     "beliefs": [[3, 1, 0.1]]}
    {"op": "stats"}
    {"op": "ping"}
    {"op": "shutdown"}

Belief lists use the relational ``E(v, c, b)`` row layout of Section 5.3:
``[node, class, value]`` triples.  Query responses report the top label
per labeled node (``labels=node:class,...``, truncated at ``"limit"``,
default 10; ``0`` means all); pass ``"return_beliefs": true`` for the raw
residual belief rows instead.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.exceptions import ReproError, ValidationError
from repro.graphs.graph import Graph
from repro.service.service import PropagationService

__all__ = ["ServiceSession"]

#: Default number of per-node entries echoed by query/read_view responses.
DEFAULT_LIMIT = 10


def _truncate(entries: list, limit: int) -> str:
    """Join entries, marking truncation only when entries were dropped."""
    if not entries:
        return "-"
    if limit and len(entries) > limit:
        return ",".join(entries[:limit] + ["..."])
    return ",".join(entries)


def _format_labels(result, coupling: CouplingMatrix, limit: int) -> str:
    labels = result.hard_labels()
    shown = [f"{node}:{coupling.name_of(int(labels[node]))}"
             for node in range(labels.shape[0]) if labels[node] >= 0]
    return _truncate(shown, limit)


def _format_beliefs(result, limit: int) -> str:
    rows = [f"{node}:" + "|".join(f"{value:.6g}" for value in row)
            for node, row in enumerate(result.beliefs) if np.any(row != 0.0)]
    if not rows:
        return "-"
    if limit and len(rows) > limit:
        return ";".join(rows[:limit] + ["..."])
    return ";".join(rows)


def _belief_matrix(triples, num_nodes: int, num_classes: int) -> np.ndarray:
    matrix = np.zeros((num_nodes, num_classes))
    for triple in triples:
        if len(triple) != 3:
            raise ValidationError(
                "beliefs must be [node, class, value] triples")
        node, klass, value = int(triple[0]), int(triple[1]), float(triple[2])
        if not 0 <= node < num_nodes:
            raise ValidationError(f"node {node} out of range [0, {num_nodes})")
        if not 0 <= klass < num_classes:
            raise ValidationError(
                f"class {klass} out of range [0, {num_classes})")
        matrix[node, klass] = value
    return matrix


class ServiceSession:
    """Protocol state shared by every connection of one ``repro serve``.

    Holds the :class:`PropagationService` plus the named coupling
    registry (couplings are value objects, not graph state, so they live
    at the protocol layer).  All methods are thread-safe; the TCP server
    calls :meth:`handle_line` from one thread per connection.
    """

    def __init__(self, service: Optional[PropagationService] = None,
                 **service_options):
        self.service = service if service is not None \
            else PropagationService(**service_options)
        self._couplings: Dict[str, CouplingMatrix] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registries
    # ------------------------------------------------------------------ #
    def coupling(self, name: str) -> CouplingMatrix:
        with self._lock:
            coupling = self._couplings.get(name)
        if coupling is None:
            raise ValidationError(f"unknown coupling {name!r}")
        return coupling

    # ------------------------------------------------------------------ #
    # the dispatcher
    # ------------------------------------------------------------------ #
    def handle_line(self, line: str) -> Tuple[str, bool]:
        """Process one request line; return ``(response, keep_running)``."""
        line = line.strip()
        if not line:
            return "error empty request", True
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return f"error invalid JSON: {error.msg}", True
        if not isinstance(request, dict) or "op" not in request:
            return "error request must be a JSON object with an 'op' field", \
                True
        op = str(request["op"])
        handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
        if handler is None:
            return f"error unknown op {op!r}", True
        try:
            return handler(request)
        except KeyError as error:
            return f"error missing field {error.args[0]!r}", True
        except (ReproError, TypeError, OverflowError, ValueError) as error:
            return f"error {error}", True
        except Exception as error:
            # One response per request, whatever happens: a handler bug must
            # not kill the connection thread (TCP) or the serve loop (stdin)
            # without a reply line.
            return f"error internal: {type(error).__name__}: {error}", True

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def _op_load_graph(self, request: dict) -> Tuple[str, bool]:
        name = str(request["name"])
        graph = Graph.from_edges(
            [tuple(edge) for edge in request["edges"]],
            num_nodes=request.get("num_nodes"))
        snapshot = self.service.register_graph(name, graph)
        return (f"ok graph name={name} nodes={graph.num_nodes} "
                f"edges={graph.num_edges} version={snapshot.version}"), True

    def _op_load_coupling(self, request: dict) -> Tuple[str, bool]:
        name = str(request["name"])
        epsilon = float(request.get("epsilon", 1.0))
        class_names = request.get("classes")
        if "residual" in request:
            coupling = CouplingMatrix.from_residual(
                np.asarray(request["residual"], dtype=float),
                epsilon=epsilon, class_names=class_names)
        elif "stochastic" in request:
            coupling = CouplingMatrix.from_stochastic(
                np.asarray(request["stochastic"], dtype=float),
                epsilon=epsilon, class_names=class_names)
        else:
            raise ValidationError(
                "load_coupling needs a 'residual' or 'stochastic' matrix")
        with self._lock:
            self._couplings[name] = coupling
        return f"ok coupling name={name} classes={coupling.num_classes}", True

    def _op_query(self, request: dict) -> Tuple[str, bool]:
        graph_name = str(request["graph"])
        coupling = self.coupling(str(request["coupling"]))
        snapshot = self.service.snapshot(graph_name)
        explicit = _belief_matrix(request["beliefs"],
                                  snapshot.graph.num_nodes,
                                  coupling.num_classes)
        num_iterations = request.get("num_iterations")
        result = self.service.query(
            graph_name, coupling, explicit,
            method=str(request.get("method", "linbp")),
            max_iterations=int(request.get("max_iterations", 100)),
            tolerance=float(request.get("tolerance", 1e-10)),
            num_iterations=None if num_iterations is None
            else int(num_iterations))
        return self._format_result("query", result, coupling, request), True

    def _op_view(self, request: dict) -> Tuple[str, bool]:
        graph_name = str(request["graph"])
        view_name = str(request["name"])
        coupling = self.coupling(str(request["coupling"]))
        snapshot = self.service.snapshot(graph_name)
        explicit = _belief_matrix(request["beliefs"],
                                  snapshot.graph.num_nodes,
                                  coupling.num_classes)
        result = self.service.create_view(
            graph_name, view_name, coupling, explicit,
            method=str(request.get("method", "sbp")))
        return (f"ok view graph={graph_name} name={view_name} "
                f"method={result.method} iterations={result.iterations}"), True

    def _op_read_view(self, request: dict) -> Tuple[str, bool]:
        graph_name = str(request["graph"])
        view_name = str(request["name"])
        result = self.service.view_result(graph_name, view_name)
        limit = int(request.get("limit", DEFAULT_LIMIT))
        return (f"ok read_view graph={graph_name} name={view_name} "
                f"beliefs={_format_beliefs(result, limit)}"), True

    def _op_update(self, request: dict) -> Tuple[str, bool]:
        graph_name = str(request["graph"])
        edges = request.get("edges")
        beliefs = request.get("beliefs")
        new_beliefs = None
        if beliefs is not None:
            snapshot = self.service.snapshot(graph_name)
            new_beliefs = _belief_matrix(beliefs, snapshot.graph.num_nodes,
                                         self._update_classes(graph_name,
                                                              request))
        new_edges = None
        if edges is not None:
            new_edges = [tuple(edge) for edge in edges]
        snapshot = self.service.update(graph_name, new_beliefs=new_beliefs,
                                       new_edges=new_edges)
        return (f"ok update graph={graph_name} "
                f"version={snapshot.version}"), True

    def _update_classes(self, graph_name: str, request: dict) -> int:
        """Class count for an update's belief rows.

        An explicit ``"coupling"`` field wins; otherwise the graph's
        maintained views determine it (belief updates only affect views,
        so their class count is the authoritative one), falling back to
        a unanimous loaded-coupling registry.
        """
        if "coupling" in request:
            return self.coupling(str(request["coupling"])).num_classes
        classes = {self.service.view_result(graph_name, name).beliefs.shape[1]
                   for name in self.service.view_names(graph_name)}
        if len(classes) != 1:
            with self._lock:
                classes = {coupling.num_classes
                           for coupling in self._couplings.values()}
        if len(classes) != 1:
            raise ValidationError(
                "update with beliefs needs a 'coupling' field to "
                "determine the class count")
        return classes.pop()

    def _op_stats(self, request: dict) -> Tuple[str, bool]:
        stats = self.service.stats()
        coalescer = stats["coalescer"]
        cache = stats["result_cache"]
        return (f"ok stats queries={stats['queries']} "
                f"updates={stats['updates']} "
                f"batches={coalescer['batches']} "
                f"coalesced_requests={coalescer['coalesced_requests']} "
                f"largest_batch={coalescer['largest_batch']} "
                f"cache_hits={cache['hits']} "
                f"cache_size={cache['size']}"), True

    def _op_ping(self, request: dict) -> Tuple[str, bool]:
        return "ok pong", True

    def _op_shutdown(self, request: dict) -> Tuple[str, bool]:
        return "ok bye", False

    # ------------------------------------------------------------------ #
    # formatting
    # ------------------------------------------------------------------ #
    @staticmethod
    def _format_result(op: str, result, coupling: CouplingMatrix,
                       request: dict) -> str:
        limit = int(request.get("limit", DEFAULT_LIMIT))
        prefix = (f"ok {op} method={result.method} "
                  f"iterations={result.iterations} "
                  f"converged={str(result.converged).lower()}")
        if request.get("return_beliefs"):
            return f"{prefix} beliefs={_format_beliefs(result, limit)}"
        return f"{prefix} labels={_format_labels(result, coupling, limit)}"
