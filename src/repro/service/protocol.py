"""Line protocol of ``repro serve``: JSON requests, versioned responses.

One request per line, encoded as a JSON object with an ``"op"`` field;
one response per line.  The response *shape* is versioned by the request:

* **v0** (no ``"v"`` field) — plain text starting with ``ok`` or
  ``error``, byte-compatible with every release before the protocol was
  versioned.  Numeric payloads (belief rows) are truncated to ``%.6g``
  for human eyes.
* **v1** (``"v": 1`` in the request) — one JSON object per line:
  ``{"ok": true, "v": 1, "op": ..., ...}`` on success,
  ``{"ok": false, "v": 1, "error": {"code": ..., "message": ...}}`` on
  failure.  Error codes are a stable machine-readable taxonomy mapped
  from the :class:`~repro.exceptions.ReproError` hierarchy (see
  :func:`error_code`); belief values round-trip exact float64 (no
  ``%.6g`` truncation), so ``limit: 0, "return_beliefs": true`` is a
  lossless export.

A request that cannot be parsed at all (malformed JSON) is answered in
v0 text — its version field is unreadable by definition.

The protocol is transport-agnostic: the stdin loop, the threaded TCP
server (:mod:`repro.service.server`) and the asyncio front end
(:mod:`repro.service.aserve`) all feed lines through one shared
:class:`ServiceSession` (so graphs loaded by one client are visible to
every other client, which is what makes cross-client coalescing
possible).

Operations::

    {"op": "load_graph", "name": "g", "edges": [[0, 1], [1, 2, 0.5]]}
    {"op": "load_coupling", "name": "h", "stochastic": [[0.8, 0.2], [0.2, 0.8]],
     "epsilon": 0.3}
    {"op": "query", "graph": "g", "coupling": "h", "method": "linbp",
     "beliefs": [[0, 0, 0.1], [2, 1, 0.1]], "staleness": 1, "v": 1}
    {"op": "view", "graph": "g", "name": "fraud", "coupling": "h",
     "method": "sbp", "beliefs": [[0, 0, 0.1]]}
    {"op": "read_view", "graph": "g", "name": "fraud"}
    {"op": "update", "graph": "g", "edges": [[2, 3]],
     "beliefs": [[3, 1, 0.1]]}
    {"op": "stats"}
    {"op": "metrics", "v": 1}
    {"op": "ping"}
    {"op": "shutdown"}

Belief lists use the relational ``E(v, c, b)`` row layout of Section 5.3:
``[node, class, value]`` triples.  Query responses report the top label
per labeled node (truncated at ``"limit"``, default 10; ``0`` means
all); pass ``"return_beliefs": true`` for the raw residual belief rows
instead.  Query requests accept every :class:`~repro.service.spec
.QuerySpec` field (``method``, ``max_iterations``, ``tolerance``,
``num_iterations``, ``dtype``, ``precision``) plus ``"staleness"``, the
:meth:`~repro.service.service.PropagationService.query` staleness bound.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.exceptions import (
    BackendError,
    BackendStateError,
    BackendUnavailableError,
    ConvergenceError,
    DatasetError,
    NotConvergentParametersError,
    RelationalError,
    ReproError,
    SchemaError,
    UnknownBackendError,
    ValidationError,
)
from repro.graphs.graph import Graph
from repro.obs import iter_registries, obs_enabled, render_prometheus
from repro.service.service import PropagationService
from repro.service.spec import QuerySpec

__all__ = ["ServiceSession", "error_code", "ERROR_CODES"]

#: Default number of per-node entries echoed by query/read_view responses.
DEFAULT_LIMIT = 10

#: The machine-readable error taxonomy of v1 responses: exception class →
#: code, most specific first (the first isinstance match wins).  Codes are
#: wire-stable: clients switch on them, so renaming one is a breaking
#: protocol change.
ERROR_CODES: Tuple[Tuple[type, str], ...] = (
    (NotConvergentParametersError, "not-convergent"),
    (ConvergenceError, "convergence"),
    (ValidationError, "validation"),
    (UnknownBackendError, "unknown-backend"),
    (BackendUnavailableError, "backend-unavailable"),
    (BackendStateError, "backend-state"),
    (BackendError, "backend"),
    (SchemaError, "schema"),
    (RelationalError, "relational"),
    (DatasetError, "dataset"),
    (ReproError, "repro"),
)

#: Protocol-level codes (not mapped from exceptions): ``bad-json``,
#: ``bad-request``, ``bad-version``, ``unknown-op``, ``missing-field``,
#: ``overloaded``, ``internal``.


def error_code(exception: BaseException) -> str:
    """The v1 wire code for an exception, from the ReproError taxonomy.

    Unlisted builtin value errors (``TypeError``, ``ValueError``,
    ``OverflowError`` — malformed request payloads) map to
    ``bad-value``; anything else is ``internal``.
    """
    for exc_type, code in ERROR_CODES:
        if isinstance(exception, exc_type):
            return code
    if isinstance(exception, (TypeError, OverflowError, ValueError)):
        return "bad-value"
    return "internal"


def _truncate(entries: list, limit: int) -> str:
    """Join entries, marking truncation only when entries were dropped."""
    if not entries:
        return "-"
    if limit and len(entries) > limit:
        return ",".join(entries[:limit] + ["..."])
    return ",".join(entries)


def _format_labels(result, coupling: CouplingMatrix, limit: int) -> str:
    labels = result.hard_labels()
    shown = [f"{node}:{coupling.name_of(int(labels[node]))}"
             for node in range(labels.shape[0]) if labels[node] >= 0]
    return _truncate(shown, limit)


def _format_beliefs(result, limit: int) -> str:
    rows = [f"{node}:" + "|".join(f"{value:.6g}" for value in row)
            for node, row in enumerate(result.beliefs) if np.any(row != 0.0)]
    if not rows:
        return "-"
    if limit and len(rows) > limit:
        return ";".join(rows[:limit] + ["..."])
    return ";".join(rows)


def _label_rows(result, coupling: CouplingMatrix) -> List[list]:
    """v1 label payload: ``[node, class_name]`` per labeled node."""
    labels = result.hard_labels()
    return [[int(node), coupling.name_of(int(labels[node]))]
            for node in range(labels.shape[0]) if labels[node] >= 0]


def _belief_rows(result) -> List[list]:
    """v1 belief payload: ``[node, [values...]]`` per non-zero row.

    Values pass through Python ``float`` (exact for float64, the exact
    widened value for float32), so ``json.dumps`` emits ``repr``-style
    shortest-round-trip literals — ``json.loads`` recovers bit-identical
    float64s, unlike the v0 text's ``%.6g``.
    """
    return [[int(node), [float(value) for value in row]]
            for node, row in enumerate(result.beliefs) if np.any(row != 0.0)]


def _belief_matrix(triples, num_nodes: int, num_classes: int) -> np.ndarray:
    matrix = np.zeros((num_nodes, num_classes))
    for triple in triples:
        if len(triple) != 3:
            raise ValidationError(
                "beliefs must be [node, class, value] triples")
        node, klass, value = int(triple[0]), int(triple[1]), float(triple[2])
        if not 0 <= node < num_nodes:
            raise ValidationError(f"node {node} out of range [0, {num_nodes})")
        if not 0 <= klass < num_classes:
            raise ValidationError(
                f"class {klass} out of range [0, {num_classes})")
        matrix[node, klass] = value
    return matrix


def _json_safe(value):
    """Recursively coerce a stats payload into JSON-serialisable types."""
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _format_v0(value) -> str:
    """One ``key=value`` payload in the legacy plain-text rendering."""
    if isinstance(value, bool):
        return str(value).lower()
    return str(value)


class _Reply:
    """One successful response, rendered per protocol version.

    ``fields`` are ``(key, value)`` pairs shared by both renderings (v0
    as ``key=value`` tokens, v1 as JSON object members, in order);
    ``text_extra`` appends v0-only tokens (pre-formatted strings like
    the truncated label list), ``json_extra`` adds v1-only members (the
    structured equivalent).  ``text`` overrides the whole v0 line for
    the fieldless legacy responses (``ok pong``, ``ok bye``).
    """

    def __init__(self, kind: str, fields: Sequence[Tuple[str, object]] = (),
                 text_extra: Sequence[Tuple[str, str]] = (),
                 json_extra: Optional[dict] = None,
                 text: Optional[str] = None, keep_running: bool = True):
        self.kind = kind
        self.fields = list(fields)
        self.text_extra = list(text_extra)
        self.json_extra = dict(json_extra or {})
        self.text = text
        self.keep_running = keep_running

    def render(self, version: int) -> str:
        if version == 0:
            if self.text is not None:
                return self.text
            tokens = [f"{key}={_format_v0(value)}"
                      for key, value in [*self.fields, *self.text_extra]]
            payload = (" " + " ".join(tokens)) if tokens else ""
            return f"ok {self.kind}{payload}"
        body = {"ok": True, "v": 1, "op": self.kind}
        body.update(self.fields)
        body.update(self.json_extra)
        return json.dumps(body, separators=(",", ":"))


def _render_error(version: int, code: str, message: str) -> str:
    if version == 0:
        return f"error {message}"
    return json.dumps({"ok": False, "v": 1,
                       "error": {"code": code, "message": message}},
                      separators=(",", ":"))


class ServiceSession:
    """Protocol state shared by every connection of one ``repro serve``.

    Holds the :class:`PropagationService` plus the named coupling
    registry (couplings are value objects, not graph state, so they live
    at the protocol layer).  All methods are thread-safe; the TCP server
    calls :meth:`handle_line` from one thread per connection, the asyncio
    front end from a worker-thread pool.
    """

    def __init__(self, service: Optional[PropagationService] = None,
                 **service_options):
        self.service = service if service is not None \
            else PropagationService(**service_options)
        self._couplings: Dict[str, CouplingMatrix] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # registries
    # ------------------------------------------------------------------ #
    def coupling(self, name: str) -> CouplingMatrix:
        with self._lock:
            coupling = self._couplings.get(name)
        if coupling is None:
            raise ValidationError(f"unknown coupling {name!r}")
        return coupling

    # ------------------------------------------------------------------ #
    # the dispatcher
    # ------------------------------------------------------------------ #
    def handle_line(self, line: str) -> Tuple[str, bool]:
        """Process one request line; return ``(response, keep_running)``."""
        line = line.strip()
        if not line:
            return _render_error(0, "bad-request", "empty request"), True
        try:
            request = json.loads(line)
        except json.JSONDecodeError as error:
            return _render_error(0, "bad-json",
                                 f"invalid JSON: {error.msg}"), True
        version = request.get("v", 0) if isinstance(request, dict) else 0
        if version not in (0, 1):
            return _render_error(0, "bad-version",
                                 f"unsupported protocol version "
                                 f"{version!r} (supported: 0, 1)"), True
        if not isinstance(request, dict) or "op" not in request:
            return _render_error(
                version, "bad-request",
                "request must be a JSON object with an 'op' field"), True
        op = str(request["op"])
        handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
        if handler is None:
            return _render_error(version, "unknown-op",
                                 f"unknown op {op!r}"), True
        try:
            reply = handler(request)
        except KeyError as error:
            return _render_error(version, "missing-field",
                                 f"missing field {error.args[0]!r}"), True
        except (ReproError, TypeError, OverflowError, ValueError) as error:
            return _render_error(version, error_code(error), str(error)), True
        except Exception as error:
            # One response per request, whatever happens: a handler bug must
            # not kill the connection thread (TCP) or the serve loop (stdin)
            # without a reply line.
            return _render_error(
                version, "internal",
                f"internal: {type(error).__name__}: {error}"), True
        return reply.render(version), reply.keep_running

    def overload_response(self, line: str, detail: str) -> str:
        """A 503-style rejection for a request the server will not run.

        Used by the asyncio front end's admission control: the request
        is parsed only far enough to answer in its own protocol version
        (v0 text for v0/unparseable requests, v1 JSON with code
        ``overloaded`` otherwise) — no handler executes.
        """
        version = 0
        try:
            request = json.loads(line)
            if isinstance(request, dict) and request.get("v") == 1:
                version = 1
        except (json.JSONDecodeError, TypeError):
            pass
        return _render_error(version, "overloaded", detail)

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #
    def _op_load_graph(self, request: dict) -> _Reply:
        name = str(request["name"])
        graph = Graph.from_edges(
            [tuple(edge) for edge in request["edges"]],
            num_nodes=request.get("num_nodes"))
        snapshot = self.service.register_graph(name, graph)
        return _Reply("graph", fields=[
            ("name", name), ("nodes", graph.num_nodes),
            ("edges", graph.num_edges), ("version", snapshot.version)])

    def _op_load_coupling(self, request: dict) -> _Reply:
        name = str(request["name"])
        epsilon = float(request.get("epsilon", 1.0))
        class_names = request.get("classes")
        if "residual" in request:
            coupling = CouplingMatrix.from_residual(
                np.asarray(request["residual"], dtype=float),
                epsilon=epsilon, class_names=class_names)
        elif "stochastic" in request:
            coupling = CouplingMatrix.from_stochastic(
                np.asarray(request["stochastic"], dtype=float),
                epsilon=epsilon, class_names=class_names)
        else:
            raise ValidationError(
                "load_coupling needs a 'residual' or 'stochastic' matrix")
        with self._lock:
            self._couplings[name] = coupling
        return _Reply("coupling", fields=[
            ("name", name), ("classes", coupling.num_classes)])

    def _op_query(self, request: dict) -> _Reply:
        graph_name = str(request["graph"])
        coupling = self.coupling(str(request["coupling"]))
        snapshot = self.service.snapshot(graph_name)
        explicit = _belief_matrix(request["beliefs"],
                                  snapshot.graph.num_nodes,
                                  coupling.num_classes)
        spec = QuerySpec.from_request(
            request, defaults=self.service.default_spec)
        result = self.service.query(
            graph_name, coupling, explicit, spec,
            max_staleness=int(request.get("staleness", 0)))
        return self._result_reply("query", result, coupling, request)

    def _op_view(self, request: dict) -> _Reply:
        graph_name = str(request["graph"])
        view_name = str(request["name"])
        coupling = self.coupling(str(request["coupling"]))
        snapshot = self.service.snapshot(graph_name)
        explicit = _belief_matrix(request["beliefs"],
                                  snapshot.graph.num_nodes,
                                  coupling.num_classes)
        result = self.service.create_view(
            graph_name, view_name, coupling, explicit,
            method=str(request.get("method", "sbp")))
        return _Reply("view", fields=[
            ("graph", graph_name), ("name", view_name),
            ("method", result.method),
            ("iterations", int(result.iterations))])

    def _op_read_view(self, request: dict) -> _Reply:
        graph_name = str(request["graph"])
        view_name = str(request["name"])
        result = self.service.view_result(graph_name, view_name)
        limit = int(request.get("limit", DEFAULT_LIMIT))
        rows = _belief_rows(result)
        truncated = bool(limit) and len(rows) > limit
        return _Reply(
            "read_view",
            fields=[("graph", graph_name), ("name", view_name)],
            text_extra=[("beliefs", _format_beliefs(result, limit))],
            json_extra={"beliefs": rows[:limit] if truncated else rows,
                        "truncated": truncated})

    def _op_update(self, request: dict) -> _Reply:
        graph_name = str(request["graph"])
        edges = request.get("edges")
        beliefs = request.get("beliefs")
        new_beliefs = None
        if beliefs is not None:
            snapshot = self.service.snapshot(graph_name)
            new_beliefs = _belief_matrix(beliefs, snapshot.graph.num_nodes,
                                         self._update_classes(graph_name,
                                                              request))
        new_edges = None
        if edges is not None:
            new_edges = [tuple(edge) for edge in edges]
        snapshot = self.service.update(graph_name, new_beliefs=new_beliefs,
                                       new_edges=new_edges)
        return _Reply("update", fields=[
            ("graph", graph_name), ("version", snapshot.version)])

    def _update_classes(self, graph_name: str, request: dict) -> int:
        """Class count for an update's belief rows.

        An explicit ``"coupling"`` field wins; otherwise the graph's
        maintained views determine it (belief updates only affect views,
        so their class count is the authoritative one), falling back to
        a unanimous loaded-coupling registry.
        """
        if "coupling" in request:
            return self.coupling(str(request["coupling"])).num_classes
        classes = {self.service.view_result(graph_name, name).beliefs.shape[1]
                   for name in self.service.view_names(graph_name)}
        if len(classes) != 1:
            with self._lock:
                classes = {coupling.num_classes
                           for coupling in self._couplings.values()}
        if len(classes) != 1:
            raise ValidationError(
                "update with beliefs needs a 'coupling' field to "
                "determine the class count")
        return classes.pop()

    def _op_stats(self, request: dict) -> _Reply:
        stats = self.service.stats()
        coalescer = stats["coalescer"]
        cache = stats["result_cache"]
        text = (f"ok stats queries={stats['queries']} "
                f"updates={stats['updates']} "
                f"batches={coalescer['batches']} "
                f"coalesced_requests={coalescer['coalesced_requests']} "
                f"largest_batch={coalescer['largest_batch']} "
                f"cache_hits={cache['hits']} "
                f"cache_size={cache['size']}")
        return _Reply("stats", text=text,
                      json_extra={"stats": _json_safe(stats)})

    def _op_metrics(self, request: dict) -> _Reply:
        """Telemetry dump: default registry merged with the service's own.

        The v1 payload carries the full structured snapshot (per-series
        labels, histogram buckets); ``"format": "prometheus"`` adds the
        text exposition under ``"prometheus"``.  The v0 rendering is a
        one-line summary — scrape the ``--metrics-port`` endpoint or use
        v1 for actual values.
        """
        registries = list(iter_registries(self.service.registry))
        merged: Dict[str, dict] = {}
        for registry in registries:
            for name, entry in registry.snapshot().items():
                merged.setdefault(name, entry)
        series = sum(len(entry["series"]) for entry in merged.values())
        json_extra = {"metrics": _json_safe(merged)}
        if str(request.get("format", "")) == "prometheus":
            json_extra["prometheus"] = render_prometheus(registries)
        return _Reply("metrics",
                      fields=[("names", len(merged)), ("series", series),
                              ("enabled", obs_enabled())],
                      json_extra=json_extra)

    def _op_ping(self, request: dict) -> _Reply:
        return _Reply("ping", text="ok pong")

    def _op_shutdown(self, request: dict) -> _Reply:
        return _Reply("shutdown", text="ok bye", keep_running=False)

    # ------------------------------------------------------------------ #
    # formatting
    # ------------------------------------------------------------------ #
    @staticmethod
    def _result_reply(op: str, result, coupling: CouplingMatrix,
                      request: dict) -> _Reply:
        limit = int(request.get("limit", DEFAULT_LIMIT))
        fields = [("method", result.method),
                  ("iterations", int(result.iterations)),
                  ("converged", bool(result.converged))]
        if request.get("return_beliefs"):
            key, rows = "beliefs", _belief_rows(result)
            text_value = _format_beliefs(result, limit)
        else:
            key, rows = "labels", _label_rows(result, coupling)
            text_value = _format_labels(result, coupling, limit)
        truncated = bool(limit) and len(rows) > limit
        json_extra = {key: rows[:limit] if truncated else rows,
                      "truncated": truncated}
        snapshot_version = result.extra.get("snapshot_version")
        if snapshot_version is not None:
            json_extra["snapshot_version"] = int(snapshot_version)
        return _Reply(op, fields=fields,
                      text_extra=[(key, text_value)], json_extra=json_extra)
