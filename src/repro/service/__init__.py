"""The propagation service: batch kernels turned into a traffic-serving layer.

The paper's pitch is that linearized BP is cheap enough to run *as a
service* over standard infrastructure (Section 5.3).  This package is
that layer for the reproduction:

* :mod:`repro.service.service` — :class:`PropagationService`: versioned
  graph snapshots (mutations ride the existing ΔSBP / incremental-LinBP
  paths and bump a snapshot id), maintained views, a TTL+LRU result
  cache, and coalesced one-shot queries;
* :mod:`repro.service.coalescer` — :class:`MicroBatcher`, the
  leader/follower micro-batching primitive that turns concurrent
  single-query traffic into stacked :func:`repro.engine.batch.run_batch`
  / :func:`repro.engine.sbp_plan.run_sbp_batch` calls;
* :mod:`repro.service.protocol` / :mod:`repro.service.server` — the
  ``repro serve`` line protocol (JSON requests, plain-text responses)
  over stdin or TCP;
* :mod:`repro.service.harness` — :class:`ServiceHarness`, the
  closed-loop client driver used by the service benchmark and the
  equivalence tests.

See ``docs/performance.md`` for the serving guide and
``benchmarks/test_bench_service.py`` for the coalescing throughput
claim (≥ 2× one-query-at-a-time at 16 concurrent clients).
"""

from repro.service.coalescer import MicroBatcher
from repro.service.harness import HarnessRun, ServiceHarness
from repro.service.protocol import ServiceSession
from repro.service.server import LineProtocolServer, serve_stream
from repro.service.service import (
    GraphSnapshot,
    PropagationService,
    ShardedSnapshot,
)

__all__ = [
    "MicroBatcher",
    "HarnessRun",
    "ServiceHarness",
    "ServiceSession",
    "LineProtocolServer",
    "serve_stream",
    "GraphSnapshot",
    "ShardedSnapshot",
    "PropagationService",
]
