"""The propagation service: batch kernels turned into a traffic-serving layer.

The paper's pitch is that linearized BP is cheap enough to run *as a
service* over standard infrastructure (Section 5.3).  This package is
that layer for the reproduction:

* :mod:`repro.service.service` — :class:`PropagationService`: versioned
  graph snapshots (mutations ride the existing ΔSBP / incremental-LinBP
  paths and bump a snapshot id), bounded-staleness reads over a short
  snapshot history, incremental partition repair on sharded graphs with
  drift-triggered background re-partitioning, maintained views, a
  TTL+LRU result cache, and coalesced one-shot queries;
* :mod:`repro.service.spec` — :class:`QuerySpec`, the frozen parameter
  object shared by :meth:`PropagationService.query`, the coalescer's
  batch key, and the wire protocol;
* :mod:`repro.service.coalescer` — :class:`MicroBatcher`, the
  leader/follower micro-batching primitive that turns concurrent
  single-query traffic into stacked :func:`repro.engine.batch.run_batch`
  / :func:`repro.engine.sbp_plan.run_sbp_batch` calls;
* :mod:`repro.service.protocol` / :mod:`repro.service.server` — the
  ``repro serve`` line protocol (versioned: legacy plain-text v0 and
  JSON v1 responses with a stable error-code taxonomy) over stdin or
  TCP;
* :mod:`repro.service.aserve` — :class:`AsyncServiceServer`, the
  asyncio front end with admission control and per-connection
  backpressure (``repro serve --async``);
* :mod:`repro.service.harness` — :class:`ServiceHarness`, the
  closed-loop client driver used by the service benchmarks and the
  equivalence tests.

See ``docs/api.md`` for the request/response reference,
``docs/performance.md`` for the serving guide, and
``benchmarks/test_bench_service.py`` / ``test_bench_stream.py`` for the
coalescing-throughput and streaming-latency claims.
"""

from repro.service.aserve import AsyncServiceServer, serve_async
from repro.service.coalescer import MicroBatcher
from repro.service.harness import HarnessRun, ServiceHarness
from repro.service.protocol import ServiceSession, error_code
from repro.service.server import LineProtocolServer, serve_stream
from repro.service.service import (
    GraphSnapshot,
    PropagationService,
    ShardedSnapshot,
)
from repro.service.spec import QuerySpec

__all__ = [
    "MicroBatcher",
    "HarnessRun",
    "ServiceHarness",
    "ServiceSession",
    "error_code",
    "LineProtocolServer",
    "serve_stream",
    "AsyncServiceServer",
    "serve_async",
    "GraphSnapshot",
    "ShardedSnapshot",
    "PropagationService",
    "QuerySpec",
]
