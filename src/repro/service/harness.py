"""Closed-loop client harness for driving a :class:`PropagationService`.

Benchmarks and tests need the same traffic shape: ``N`` requests issued
by ``c`` concurrent clients, each client submitting its share one at a
time (a *closed loop* — a client only issues its next request after the
previous one returned, the way real callers behave).  The harness runs
that shape against a service and reports per-request results in input
order plus the elapsed wall-clock time, so a coalescing service can be
compared directly against a one-query-at-a-time baseline.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.results import PropagationResult
from repro.exceptions import ValidationError
from repro.service.service import PropagationService

__all__ = ["ServiceHarness", "HarnessRun"]


@dataclass
class HarnessRun:
    """Outcome of one harness drive: ordered results + timing."""

    results: List[PropagationResult]
    elapsed_seconds: float

    @property
    def throughput(self) -> float:
        """Completed requests per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return len(self.results) / self.elapsed_seconds


class ServiceHarness:
    """Drive a service with sequential or concurrent closed-loop clients.

    Every *request* is a keyword dict for
    :meth:`~repro.service.service.PropagationService.query`, e.g.
    ``{"graph_name": "g", "coupling": coupling, "explicit_residuals": e}``.
    """

    def __init__(self, service: PropagationService):
        self.service = service

    def run_sequential(self, requests: Sequence[Dict]) -> HarnessRun:
        """Issue every request one at a time from the calling thread."""
        start = time.perf_counter()
        results = [self.service.query(**request) for request in requests]
        return HarnessRun(results, time.perf_counter() - start)

    def run_concurrent(self, requests: Sequence[Dict],
                       num_clients: int = 16) -> HarnessRun:
        """Issue the requests from ``num_clients`` closed-loop threads.

        Requests are dealt round-robin to the clients; client ``j``
        issues requests ``j, j + c, j + 2c, ...`` sequentially.  The
        returned results are in the original request order.  The first
        worker error (if any) is re-raised after all clients stopped.
        """
        if num_clients < 1:
            raise ValidationError("num_clients must be >= 1")
        num_clients = min(num_clients, max(1, len(requests)))
        results: List[PropagationResult] = [None] * len(requests)
        errors: List[BaseException] = []
        error_lock = threading.Lock()
        barrier = threading.Barrier(num_clients)

        def client(offset: int) -> None:
            # Line every client up before the clock-relevant work so the
            # coalescer sees genuinely concurrent arrivals from the start.
            barrier.wait()
            try:
                for index in range(offset, len(requests), num_clients):
                    results[index] = self.service.query(**requests[index])
            except BaseException as exc:  # propagate to the caller
                with error_lock:
                    errors.append(exc)

        threads = [threading.Thread(target=client, args=(offset,),
                                    name=f"harness-client-{offset}")
                   for offset in range(num_clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        return HarnessRun(results, elapsed)
