"""Closed-loop client harness for driving a :class:`PropagationService`.

Benchmarks and tests need the same traffic shape: ``N`` requests issued
by ``c`` concurrent clients, each client submitting its share one at a
time (a *closed loop* — a client only issues its next request after the
previous one returned, the way real callers behave).  The harness runs
that shape against a service and reports per-request results and
latencies in input order plus the elapsed wall-clock time, so a
coalescing service can be compared directly against a
one-query-at-a-time baseline and tail latency (p99) can be gated.

Two traffic shapes:

* :meth:`ServiceHarness.run_sequential` / ``run_concurrent`` — queries
  only, the coalescing-throughput shape;
* :meth:`ServiceHarness.run_mixed` — queries interleaved with graph
  mutations (each request dict carries ``"op": "query"`` or
  ``"update"``), the streaming shape the async front end is built for.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.exceptions import ValidationError
from repro.service.service import PropagationService

__all__ = ["ServiceHarness", "HarnessRun"]


@dataclass
class HarnessRun:
    """Outcome of one harness drive: ordered results, latencies, timing."""

    results: List[object]
    elapsed_seconds: float
    #: Per-request wall-clock seconds, in input order (same length and
    #: order as ``results``).
    latencies: List[float] = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Completed requests per second."""
        if self.elapsed_seconds <= 0:
            return float("inf")
        return len(self.results) / self.elapsed_seconds

    def percentile(self, p: float) -> float:
        """Nearest-rank percentile of the per-request latencies (seconds).

        ``percentile(50)`` is the median, ``percentile(99)`` the p99 the
        streaming benchmark gates on.  Nearest-rank is exact on the
        recorded samples: the returned value is always one of the
        latencies, never an interpolation.
        """
        if not self.latencies:
            raise ValidationError("this run recorded no latencies")
        p = float(p)
        if not 0 < p <= 100:
            raise ValidationError("percentile must lie in (0, 100]")
        ordered = sorted(self.latencies)
        # Round before ceiling: binary float products like 29 / 100 * 100
        # land epsilon above the exact integer rank and would otherwise
        # ceil one rank too high; clamp guards the p == 100 boundary.
        rank = math.ceil(round(p / 100.0 * len(ordered), 9))
        rank = min(max(rank, 1), len(ordered))
        return ordered[rank - 1]

    @property
    def p99(self) -> float:
        """The 99th-percentile request latency in seconds."""
        return self.percentile(99.0)


class ServiceHarness:
    """Drive a service with sequential or concurrent closed-loop clients.

    Every *request* is a keyword dict for
    :meth:`~repro.service.service.PropagationService.query`, e.g.
    ``{"graph_name": "g", "coupling": coupling, "explicit_residuals": e}``.
    For :meth:`run_mixed` a request may additionally carry ``"op"``:
    ``"query"`` (default) or ``"update"``; the remaining keys are the
    keyword arguments of the corresponding service method.
    """

    def __init__(self, service: PropagationService):
        self.service = service

    def _issue(self, request: Dict) -> object:
        """Execute one mixed-traffic request against the service."""
        kwargs = dict(request)
        op = kwargs.pop("op", "query")
        if op == "query":
            return self.service.query(**kwargs)
        if op == "update":
            return self.service.update(**kwargs)
        raise ValidationError(
            f"unknown harness op {op!r} (expected 'query' or 'update')")

    def run_sequential(self, requests: Sequence[Dict]) -> HarnessRun:
        """Issue every request one at a time from the calling thread."""
        results: List[object] = []
        latencies: List[float] = []
        start = time.perf_counter()
        for request in requests:
            issued = time.perf_counter()
            results.append(self.service.query(**request))
            latencies.append(time.perf_counter() - issued)
        return HarnessRun(results, time.perf_counter() - start, latencies)

    def run_concurrent(self, requests: Sequence[Dict],
                       num_clients: int = 16) -> HarnessRun:
        """Issue the requests from ``num_clients`` closed-loop threads.

        Requests are dealt round-robin to the clients; client ``j``
        issues requests ``j, j + c, j + 2c, ...`` sequentially.  The
        returned results are in the original request order.  The first
        worker error (if any) is re-raised after all clients stopped.
        """
        return self._run_threaded(requests, num_clients, mixed=False)

    def run_mixed(self, requests: Sequence[Dict],
                  num_clients: int = 16) -> HarnessRun:
        """Drive a mixed query/update workload from closed-loop clients.

        Identical dealing and ordering to :meth:`run_concurrent`, but
        each request may carry ``"op": "update"`` to mutate the graph
        mid-stream — the shape that exercises snapshot versioning,
        incremental partition repair, and bounded-staleness reads all
        at once.  Query results are
        :class:`~repro.core.results.PropagationResult` objects, update
        results are the new snapshots.
        """
        return self._run_threaded(requests, num_clients, mixed=True)

    def _run_threaded(self, requests: Sequence[Dict], num_clients: int,
                      mixed: bool) -> HarnessRun:
        if num_clients < 1:
            raise ValidationError("num_clients must be >= 1")
        num_clients = min(num_clients, max(1, len(requests)))
        results: List[object] = [None] * len(requests)
        latencies: List[float] = [0.0] * len(requests)
        errors: List[BaseException] = []
        error_lock = threading.Lock()
        barrier = threading.Barrier(num_clients)

        def client(offset: int) -> None:
            # Line every client up before the clock-relevant work so the
            # coalescer sees genuinely concurrent arrivals from the start.
            barrier.wait()
            try:
                for index in range(offset, len(requests), num_clients):
                    issued = time.perf_counter()
                    if mixed:
                        results[index] = self._issue(requests[index])
                    else:
                        results[index] = self.service.query(
                            **requests[index])
                    latencies[index] = time.perf_counter() - issued
            except BaseException as exc:  # propagate to the caller
                with error_lock:
                    errors.append(exc)

        threads = [threading.Thread(target=client, args=(offset,),
                                    name=f"harness-client-{offset}")
                   for offset in range(num_clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise errors[0]
        return HarnessRun(results, elapsed, latencies)
