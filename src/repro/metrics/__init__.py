"""Quality metrics (precision/recall over top-belief sets, F1, accuracy)."""

from repro.metrics.quality import QualityScores, labeling_accuracy, precision_recall

__all__ = ["QualityScores", "labeling_accuracy", "precision_recall"]
