"""Classification-quality metrics exactly as defined in Section 7.

The paper measures how well LinBP / LinBP* / SBP reproduce the top-belief
assignment of standard BP (treated as ground truth, GT):

* Top beliefs are *sets* per node (ties are kept).
* ``B_∩ = B_GT ∩ B_O`` counts (node, class) pairs shared by GT and the other
  method O.
* Recall ``r = |B_∩| / |B_GT|`` and precision ``p = |B_∩| / |B_O|``.
* "Accuracy" in the text is the harmonic mean of precision and recall (F1).

The DBLP experiment (Fig. 11b) reports the F1-score of the induced hard
labels against BP's labels, which coincides with the same formula when both
methods predict singleton sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Set

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["QualityScores", "precision_recall", "labeling_accuracy"]


@dataclass(frozen=True)
class QualityScores:
    """Precision / recall / F1 of one method against a ground-truth labeling."""

    precision: float
    recall: float
    shared: int
    ground_truth_size: int
    predicted_size: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (the paper's "accuracy")."""
        if self.precision + self.recall == 0.0:
            return 0.0
        return 2.0 * self.precision * self.recall / (self.precision + self.recall)


def precision_recall(ground_truth: Sequence[Set[int]],
                     predicted: Sequence[Set[int]],
                     restrict_to: Optional[Sequence[int]] = None) -> QualityScores:
    """Precision and recall over top-belief sets (ties handled naturally).

    Parameters
    ----------
    ground_truth, predicted:
        Per-node sets of top classes (as returned by
        :meth:`repro.core.results.PropagationResult.top_beliefs`).
    restrict_to:
        Optional node subset to evaluate on — e.g. only unlabeled nodes, or
        only nodes for which the ground-truth method produced any prediction.

    The example from the paper: GT assigns ``{v1→{c1}, v2→{c2}, v3→{c3}}`` and
    the other method ``{v1→{c1, c2}, v2→{c2}, v3→{c2}}``; then ``r = 2/3`` and
    ``p = 2/4``.
    """
    if len(ground_truth) != len(predicted):
        raise ValidationError("ground truth and prediction must have the same length")
    nodes = range(len(ground_truth)) if restrict_to is None else restrict_to
    shared = 0
    total_truth = 0
    total_predicted = 0
    for node in nodes:
        truth = ground_truth[node]
        prediction = predicted[node]
        shared += len(truth & prediction)
        total_truth += len(truth)
        total_predicted += len(prediction)
    precision = shared / total_predicted if total_predicted else 0.0
    recall = shared / total_truth if total_truth else 0.0
    return QualityScores(precision=precision, recall=recall, shared=shared,
                         ground_truth_size=total_truth,
                         predicted_size=total_predicted)


def labeling_accuracy(ground_truth: np.ndarray, predicted: np.ndarray,
                      restrict_to: Optional[Sequence[int]] = None) -> float:
    """Plain accuracy of hard labels (−1 entries in either vector are skipped)."""
    truth = np.asarray(ground_truth)
    prediction = np.asarray(predicted)
    if truth.shape != prediction.shape:
        raise ValidationError("label vectors must have the same shape")
    if restrict_to is not None:
        truth = truth[list(restrict_to)]
        prediction = prediction[list(restrict_to)]
    valid = (truth >= 0) & (prediction >= 0)
    if not np.any(valid):
        return 0.0
    return float(np.mean(truth[valid] == prediction[valid]))
