"""A synthetic DBLP-like heterogeneous graph (substitution for Fig. 11).

The paper's DBLP experiment (Appendix F.2) uses the snapshot from Ji et al.
[20]: 36 138 nodes (papers, authors, conferences, terms), 341 564 directed
edge entries, and 3 750 nodes (~10.4 %) explicitly labeled with one of four
research areas (AI, DB, DM, IR).  Each paper is connected to its authors, its
conference and the terms in its title.

That snapshot cannot be redistributed here, so this module generates a
synthetic graph with the same *shape*:

* four node types — papers, authors, conferences, terms — in proportions
  close to the original (papers dominate, very few conferences);
* every paper links to 1–3 authors, exactly one conference and several terms;
* a planted 4-class community structure: papers belong to a research area,
  and pick their authors / conference / terms mostly from the same area
  (with a configurable noise level), which creates the homophily the paper's
  Fig. 11a coupling matrix encodes;
* ~10 % of the nodes receive explicit labels.

What drives the F1-vs-ε_H curves of Fig. 11b is exactly this structure
(homophilic label propagation over a heterogeneous bipartite-ish topology with
a 10 % label rate), so the substitution preserves the relevant behaviour while
keeping the generator laptop-sized and dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.coupling.presets import dblp_residual_matrix
from repro.exceptions import DatasetError
from repro.graphs.graph import Graph

__all__ = ["DblpLikeDataset", "generate_dblp_like"]

CLASS_NAMES = ("AI", "DB", "DM", "IR")
NODE_TYPES = ("paper", "author", "conference", "term")


@dataclass
class DblpLikeDataset:
    """A generated DBLP-like workload.

    Attributes
    ----------
    graph:
        The heterogeneous network (papers, authors, conferences, terms).
    node_types:
        Array of type indices into :data:`NODE_TYPES`, one per node.
    true_labels:
        Ground-truth class per node (0..3), used only for evaluation.
    explicit:
        ``n x 4`` centered explicit beliefs for the labeled fraction.
    coupling:
        The unscaled Fig. 11a homophily coupling matrix.
    """

    graph: Graph
    node_types: np.ndarray
    true_labels: np.ndarray
    explicit: np.ndarray
    coupling: CouplingMatrix

    @property
    def num_labeled(self) -> int:
        """Number of nodes with explicit beliefs."""
        return int(np.count_nonzero(np.any(self.explicit != 0.0, axis=1)))

    def describe(self) -> Dict[str, int]:
        """Node/edge/label counts, in the spirit of the paper's description."""
        type_counts = {name: int(np.sum(self.node_types == index))
                       for index, name in enumerate(NODE_TYPES)}
        summary = {"nodes": self.graph.num_nodes,
                   "edges": self.graph.num_directed_edges,
                   "labeled": self.num_labeled}
        summary.update(type_counts)
        return summary


def generate_dblp_like(num_papers: int = 3000, num_authors: int = 1800,
                       num_conferences: int = 20, num_terms: int = 800,
                       labeled_fraction: float = 0.104, noise: float = 0.15,
                       label_magnitude: float = 0.1,
                       seed: int = 0) -> DblpLikeDataset:
    """Generate the synthetic DBLP-like workload.

    Parameters
    ----------
    num_papers, num_authors, num_conferences, num_terms:
        Node counts per type.  Defaults give ~5.6 k nodes — a scaled-down
        version of the original 36 k-node snapshot with the same type mix.
    labeled_fraction:
        Fraction of *all* nodes that receive explicit beliefs (paper: 10.4 %).
    noise:
        Probability that a paper picks an author/conference/term from a
        different research area than its own; larger values blur the
        community structure.
    label_magnitude:
        Residual magnitude of the explicit beliefs.
    seed:
        RNG seed; the generator is fully deterministic given the seed.
    """
    if min(num_papers, num_authors, num_conferences, num_terms) < 4:
        raise DatasetError("every node type needs at least 4 nodes (one per class)")
    if not 0.0 < labeled_fraction <= 1.0:
        raise DatasetError("labeled_fraction must lie in (0, 1]")
    if not 0.0 <= noise < 1.0:
        raise DatasetError("noise must lie in [0, 1)")
    rng = np.random.default_rng(seed)
    num_classes = len(CLASS_NAMES)
    counts = (num_papers, num_authors, num_conferences, num_terms)
    offsets = np.cumsum((0,) + counts)
    num_nodes = int(offsets[-1])
    node_types = np.concatenate([np.full(count, index, dtype=np.int64)
                                 for index, count in enumerate(counts)])
    # Ground-truth areas: papers/authors/terms uniform over classes,
    # conferences split evenly so every area has venues.
    true_labels = np.empty(num_nodes, dtype=np.int64)
    for type_index, count in enumerate(counts):
        start = offsets[type_index]
        labels = rng.integers(0, num_classes, size=count) if type_index != 2 \
            else np.arange(count) % num_classes
        true_labels[start:start + count] = labels

    def nodes_of(type_index: int, class_index: int) -> np.ndarray:
        start, end = offsets[type_index], offsets[type_index + 1]
        members = np.arange(start, end)
        return members[true_labels[start:end] == class_index]

    by_type_and_class = {(t, c): nodes_of(t, c)
                         for t in range(len(NODE_TYPES))
                         for c in range(num_classes)}

    def pick(type_index: int, class_index: int, size: int) -> np.ndarray:
        """Pick nodes of a type, mostly from the given class (noise elsewhere)."""
        chosen = []
        for _ in range(size):
            if rng.random() < noise:
                target_class = int(rng.integers(0, num_classes))
            else:
                target_class = class_index
            pool = by_type_and_class[(type_index, target_class)]
            if pool.size == 0:
                pool = np.arange(offsets[type_index], offsets[type_index + 1])
            chosen.append(int(rng.choice(pool)))
        return np.array(chosen, dtype=np.int64)

    edges: List[Tuple[int, int]] = []
    paper_nodes = np.arange(offsets[0], offsets[1])
    for paper in paper_nodes:
        area = int(true_labels[paper])
        for author in pick(1, area, int(rng.integers(1, 4))):
            if author != paper:
                edges.append((int(paper), int(author)))
        conference = pick(2, area, 1)[0]
        edges.append((int(paper), int(conference)))
        for term in pick(3, area, int(rng.integers(2, 6))):
            edges.append((int(paper), int(term)))
    graph = Graph.from_edges(set((min(s, t), max(s, t)) for s, t in edges),
                             num_nodes=num_nodes)
    # Explicit beliefs on a random ~10 % of the nodes, centered around 1/k.
    num_labeled = max(1, int(round(labeled_fraction * num_nodes)))
    labeled_nodes = rng.choice(num_nodes, size=num_labeled, replace=False)
    explicit = np.zeros((num_nodes, num_classes))
    off_value = -label_magnitude / (num_classes - 1)
    for node in labeled_nodes:
        explicit[node, :] = off_value
        explicit[node, true_labels[node]] = label_magnitude
    return DblpLikeDataset(graph=graph, node_types=node_types,
                           true_labels=true_labels, explicit=explicit,
                           coupling=dblp_residual_matrix())
