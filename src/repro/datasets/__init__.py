"""Dataset generators: the Fig. 6a Kronecker suite and a DBLP-like workload."""

from repro.datasets.dblp import DblpLikeDataset, generate_dblp_like
from repro.datasets.kronecker_suite import (
    PAPER_SUITE_SIZES,
    SyntheticWorkload,
    kronecker_suite,
)
from repro.datasets.synthetic_labels import (
    belief_value_grid,
    sample_explicit_beliefs,
    sample_explicit_nodes,
    split_for_incremental_update,
)

__all__ = [
    "DblpLikeDataset",
    "generate_dblp_like",
    "PAPER_SUITE_SIZES",
    "SyntheticWorkload",
    "kronecker_suite",
    "belief_value_grid",
    "sample_explicit_beliefs",
    "sample_explicit_nodes",
    "split_for_incremental_update",
]
