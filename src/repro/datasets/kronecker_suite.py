"""The synthetic Kronecker-graph suite of Fig. 6a.

The paper evaluates on nine Kronecker graphs whose sizes grow from 243 nodes /
1 024 edge-entries to 1.6 M nodes / 67 M edge-entries (nodes triple and edge
entries roughly quadruple per step).  Each graph is seeded with explicit
beliefs on 5 % of its nodes; the incremental experiments additionally update
1 ‰ of all nodes.

:func:`kronecker_suite` regenerates the suite (by default only the sizes that
fit a laptop/CI budget — the scaling *shape* is already visible across three
orders of magnitude) and attaches the sampled explicit beliefs, so every
scalability experiment consumes the same workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.coupling.matrices import CouplingMatrix
from repro.coupling.presets import synthetic_residual_matrix
from repro.datasets.synthetic_labels import sample_explicit_beliefs, sample_explicit_nodes
from repro.exceptions import DatasetError
from repro.graphs.generators import kronecker_graph
from repro.graphs.graph import Graph

__all__ = ["SyntheticWorkload", "kronecker_suite", "PAPER_SUITE_SIZES"]

#: Node counts of the paper's nine graphs (Fig. 6a), i.e. 3 ** (power + 4).
PAPER_SUITE_SIZES = [243, 729, 2_187, 6_561, 19_683, 59_049,
                     177_147, 531_441, 1_594_323]


@dataclass
class SyntheticWorkload:
    """One row of Fig. 6a: a Kronecker graph plus its explicit beliefs.

    Attributes
    ----------
    index:
        1-based index matching the paper's numbering (#1 ... #9).
    graph:
        The generated Kronecker graph.
    explicit:
        ``n x k`` centered explicit beliefs for 5 % of the nodes.
    explicit_update:
        Additional beliefs for 1 ‰ of all nodes (the ΔSBP update workload);
        disjoint from the nodes labeled in ``explicit``.
    coupling:
        The unscaled coupling matrix of Fig. 6b (scale it per experiment).
    """

    index: int
    graph: Graph
    explicit: np.ndarray
    explicit_update: np.ndarray
    coupling: CouplingMatrix

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return self.graph.num_nodes

    @property
    def num_edges(self) -> int:
        """Number of adjacency entries (the paper's edge count convention)."""
        return self.graph.num_directed_edges

    @property
    def num_explicit(self) -> int:
        """Number of nodes with explicit beliefs."""
        return int(np.count_nonzero(np.any(self.explicit != 0.0, axis=1)))

    def describe(self) -> Dict[str, int]:
        """The Fig. 6a row for this workload."""
        return {
            "index": self.index,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "explicit_5pct": self.num_explicit,
            "explicit_1permille": int(np.count_nonzero(
                np.any(self.explicit_update != 0.0, axis=1))),
        }


def kronecker_suite(max_index: int = 4, explicit_fraction: float = 0.05,
                    update_fraction: float = 0.001, seed: int = 0,
                    num_classes: int = 3) -> List[SyntheticWorkload]:
    """Generate workloads #1 .. #``max_index`` of the synthetic suite.

    ``max_index`` may go up to 9 (the paper's largest graph); the default of 4
    (6 561 nodes, ~66 k edge entries) keeps test and benchmark times small
    while already spanning two orders of magnitude in edge count.
    """
    if not 1 <= max_index <= len(PAPER_SUITE_SIZES):
        raise DatasetError(f"max_index must be in [1, {len(PAPER_SUITE_SIZES)}]")
    if num_classes != 3:
        raise DatasetError("the Fig. 6 workload is defined for exactly 3 classes")
    coupling = synthetic_residual_matrix()
    workloads: List[SyntheticWorkload] = []
    for index in range(1, max_index + 1):
        power = index + 4  # 3 ** 5 == 243 is the paper's graph #1
        graph = kronecker_graph(power, seed=seed + index)
        nodes = sample_explicit_nodes(graph.num_nodes, explicit_fraction,
                                      seed=seed + 100 + index)
        explicit = sample_explicit_beliefs(graph.num_nodes, num_classes, nodes,
                                           seed=seed + 200 + index)
        update_nodes = sample_explicit_nodes(graph.num_nodes, update_fraction,
                                             seed=seed + 300 + index,
                                             exclude=nodes.tolist())
        update = sample_explicit_beliefs(graph.num_nodes, num_classes, update_nodes,
                                         seed=seed + 400 + index)
        workloads.append(SyntheticWorkload(index=index, graph=graph,
                                           explicit=explicit,
                                           explicit_update=update,
                                           coupling=coupling))
    return workloads
