"""Explicit-belief samplers used by the synthetic experiments.

Section 7 of the paper seeds 5 % of the nodes of each Kronecker graph with
explicit beliefs: each seeded node receives "two random numbers from
``{−0.1, −0.09, ..., 0.09, 0.1}`` as centered beliefs for two classes (the
belief in the third class is then their negative sum due to centering)".
For the incremental experiments an additional 1 ‰ (or a configurable
fraction) of the nodes receive *new* explicit beliefs.

This module reproduces that sampling for an arbitrary number of classes
(values for ``k − 1`` classes are drawn from the same grid and the last class
takes the negative sum), with a deterministic seed so experiments are
repeatable.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError

__all__ = [
    "belief_value_grid",
    "sample_explicit_nodes",
    "sample_explicit_beliefs",
    "split_for_incremental_update",
]


def belief_value_grid(step: float = 0.01, bound: float = 0.1) -> np.ndarray:
    """The paper's grid ``{−0.1, −0.09, ..., 0.09, 0.1}`` of belief residuals."""
    count = int(round(2 * bound / step)) + 1
    return np.round(np.linspace(-bound, bound, count), 10)


def sample_explicit_nodes(num_nodes: int, fraction: float,
                          seed: int = 0,
                          exclude: Optional[Iterable[int]] = None) -> np.ndarray:
    """Pick ``round(fraction * num_nodes)`` distinct nodes uniformly at random.

    At least one node is always selected (as in the paper's Fig. 6a, where the
    1 ‰ column never drops to zero).  Nodes listed in ``exclude`` are never
    selected.
    """
    if not 0.0 < fraction <= 1.0:
        raise DatasetError("fraction must lie in (0, 1]")
    excluded = set(int(node) for node in exclude) if exclude else set()
    candidates = np.array([node for node in range(num_nodes)
                           if node not in excluded], dtype=np.int64)
    if candidates.size == 0:
        raise DatasetError("no candidate nodes left to sample from")
    count = max(1, int(round(fraction * num_nodes)))
    count = min(count, candidates.size)
    rng = np.random.default_rng(seed)
    return np.sort(rng.choice(candidates, size=count, replace=False))


def sample_explicit_beliefs(num_nodes: int, num_classes: int, nodes: Sequence[int],
                            seed: int = 0, step: float = 0.01,
                            bound: float = 0.1) -> np.ndarray:
    """Random centered explicit beliefs for the given nodes (paper's scheme).

    For each selected node, ``k − 1`` residuals are drawn from the value grid
    and the final class receives their negative sum, so every row sums to
    zero.  Rows that would come out all-zero are redrawn (an "explicit" node
    must deviate from the uninformative prior).
    """
    if num_classes < 2:
        raise DatasetError("num_classes must be >= 2")
    rng = np.random.default_rng(seed)
    grid = belief_value_grid(step=step, bound=bound)
    beliefs = np.zeros((num_nodes, num_classes))
    for node in nodes:
        row = np.zeros(num_classes)
        while not np.any(row):
            draws = rng.choice(grid, size=num_classes - 1)
            row[:num_classes - 1] = draws
            row[num_classes - 1] = -draws.sum()
        beliefs[int(node)] = row
    return beliefs


def split_for_incremental_update(explicit: np.ndarray, new_fraction: float,
                                 seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Split an explicit-belief matrix into a "before" part and an update.

    Used by the ΔSBP experiments (Fig. 7e): of all labeled nodes, a fraction
    ``new_fraction`` is withheld from the initial computation and later added
    through the incremental Algorithm 3.  Returns ``(initial, update)`` whose
    sum is the original matrix.
    """
    if not 0.0 <= new_fraction <= 1.0:
        raise DatasetError("new_fraction must lie in [0, 1]")
    matrix = np.asarray(explicit, dtype=float)
    labeled = np.nonzero(np.any(matrix != 0.0, axis=1))[0]
    rng = np.random.default_rng(seed)
    count_new = int(round(new_fraction * labeled.size))
    new_nodes = rng.choice(labeled, size=count_new, replace=False) if count_new else \
        np.array([], dtype=np.int64)
    initial = matrix.copy()
    update = np.zeros_like(matrix)
    initial[new_nodes] = 0.0
    update[new_nodes] = matrix[new_nodes]
    return initial, update
