"""Reproduction of "Linearized and Single-Pass Belief Propagation" (VLDB 2015).

The package implements, from scratch and on top of ``numpy``/``scipy`` only:

* a standard multi-class loopy Belief Propagation baseline (:mod:`repro.core.bp`);
* **LinBP** and **LinBP*** — the paper's linearized BP, both as an iterative
  sparse-matrix algorithm and as a closed-form Kronecker-product linear
  system (:mod:`repro.core.linbp`), together with the exact and sufficient
  convergence criteria (:mod:`repro.core.convergence`);
* **SBP** — Single-Pass BP, the ``ε_H → 0`` limit of LinBP, with incremental
  maintenance under new labels and new edges (:mod:`repro.core.sbp`);
* the binary-class special case (FABP, :mod:`repro.core.fabp`);
* a shared propagation engine with cached per-graph plans and a batched,
  buffer-reuse iteration kernel that propagates many queries at once
  (:mod:`repro.engine`);
* an in-memory relational engine plus the paper's SQL-style implementations
  of LinBP and SBP (:mod:`repro.relational`);
* a thread-safe propagation *service* that fronts both engines: versioned
  graph snapshots, micro-batched concurrent queries, TTL+LRU result
  caching and a ``repro serve`` line protocol (:mod:`repro.service`);
* graph substrates, coupling-matrix handling, datasets, quality metrics, and
  one experiment module per table/figure of the paper
  (:mod:`repro.experiments`).

Quick start::

    from repro import Graph, CouplingMatrix, linbp, BeliefMatrix
    import numpy as np

    graph = Graph.from_edges([(0, 1), (1, 2), (2, 3)])
    coupling = CouplingMatrix.from_residual(
        np.array([[0.1, -0.1], [-0.1, 0.1]]), epsilon=0.5)
    explicit = BeliefMatrix.from_labels({0: 0, 3: 1}, num_nodes=4, num_classes=2)
    result = linbp(graph, coupling, explicit.residuals)
    print(result.hard_labels())
"""

from repro.beliefs import BeliefMatrix, standardize, top_belief_sets
from repro.coupling import (
    CouplingMatrix,
    dblp_residual_matrix,
    fraud_matrix,
    heterophily_matrix,
    homophily_matrix,
    synthetic_residual_matrix,
)
from repro.core import (
    SBP,
    BeliefPropagation,
    LinBP,
    PropagationResult,
    belief_propagation,
    fabp,
    fabp_batch,
    linbp,
    linbp_closed_form,
    linbp_star,
    sbp,
)
from repro.engine import (
    PropagationPlan,
    SBPPlan,
    get_plan,
    get_sbp_plan,
    run_batch,
    run_sbp_batch,
)
from repro.exceptions import (
    ConvergenceError,
    DatasetError,
    NotConvergentParametersError,
    RelationalError,
    ReproError,
    SchemaError,
    ValidationError,
)
from repro.graphs import Edge, Graph
from repro.service import PropagationService, ServiceHarness

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "BeliefMatrix",
    "standardize",
    "top_belief_sets",
    "CouplingMatrix",
    "dblp_residual_matrix",
    "fraud_matrix",
    "heterophily_matrix",
    "homophily_matrix",
    "synthetic_residual_matrix",
    "SBP",
    "BeliefPropagation",
    "LinBP",
    "PropagationResult",
    "belief_propagation",
    "fabp",
    "fabp_batch",
    "linbp",
    "linbp_closed_form",
    "linbp_star",
    "sbp",
    "PropagationPlan",
    "SBPPlan",
    "get_plan",
    "get_sbp_plan",
    "run_batch",
    "run_sbp_batch",
    "ConvergenceError",
    "DatasetError",
    "NotConvergentParametersError",
    "RelationalError",
    "ReproError",
    "SchemaError",
    "ValidationError",
    "Edge",
    "Graph",
    "PropagationService",
    "ServiceHarness",
]
