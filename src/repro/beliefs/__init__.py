"""Belief matrices: centering, standardization, and top-belief assignment."""

from repro.beliefs.beliefs import (
    BeliefMatrix,
    center_probability_matrix,
    explicit_beliefs_from_labels,
    explicit_residuals_from_labels,
    standardize,
    top_belief_sets,
    uncenter_residual_matrix,
)

__all__ = [
    "BeliefMatrix",
    "center_probability_matrix",
    "explicit_beliefs_from_labels",
    "explicit_residuals_from_labels",
    "standardize",
    "top_belief_sets",
    "uncenter_residual_matrix",
]
