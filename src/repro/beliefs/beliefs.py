"""Belief matrices: explicit priors, residual centering, standardization.

The paper distinguishes

* **explicit (prior) beliefs** ``E`` — an ``n x k`` matrix whose non-zero rows
  belong to the few labeled nodes; rows are probability vectors summing to 1;
* **residual beliefs** ``Ê = E − 1/k`` — what LinBP actually propagates
  (rows of labeled nodes sum to 0, rows of unlabeled nodes are all zero);
* **final (posterior) beliefs** ``B`` / ``B̂`` — the algorithm outputs;
* the **standardization** ``ζ(x) = (x − μ)/σ`` of a belief vector
  (Definition 11), which removes the absolute scale so that the limits of
  LinBP and SBP can be compared (Theorem 19);
* the **top-belief assignment** (Problem 1) — for each node, the set of
  classes attaining the maximal final belief (sets, to allow ties).

:class:`BeliefMatrix` wraps an ``n x k`` residual matrix and offers these
views; :func:`explicit_beliefs_from_labels` builds priors from hard labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Set

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "standardize",
    "center_probability_matrix",
    "uncenter_residual_matrix",
    "explicit_beliefs_from_labels",
    "explicit_residuals_from_labels",
    "top_belief_sets",
    "BeliefMatrix",
]

#: Ties closer than this (relative to the largest magnitude in the row) are
#: reported together by the top-belief assignment.
DEFAULT_TIE_TOLERANCE = 1e-10


def standardize(vector: np.ndarray) -> np.ndarray:
    """The standardization ``ζ(x)`` of Definition 11.

    Subtract the mean and divide by the (population) standard deviation;
    when the standard deviation is zero the result is the zero vector.

    Examples from the paper: ``ζ([1, 0]) = [1, −1]``, ``ζ([1, 1, 1]) = [0, 0, 0]``,
    ``ζ([1, 0, 0, 0, 0]) = [2, −0.5, −0.5, −0.5, −0.5]``.
    """
    array = np.asarray(vector, dtype=float)
    sigma = float(array.std())
    if sigma == 0.0:
        return np.zeros_like(array)
    return (array - array.mean()) / sigma


def center_probability_matrix(matrix: np.ndarray) -> np.ndarray:
    """Residuals ``X̂ = X − 1/k`` of a row-stochastic belief matrix."""
    array = np.asarray(matrix, dtype=float)
    if array.ndim != 2:
        raise ValidationError("belief matrix must be two-dimensional")
    k = array.shape[1]
    return array - 1.0 / k


def uncenter_residual_matrix(residual: np.ndarray) -> np.ndarray:
    """Inverse of :func:`center_probability_matrix`: ``X = X̂ + 1/k``."""
    array = np.asarray(residual, dtype=float)
    if array.ndim != 2:
        raise ValidationError("residual matrix must be two-dimensional")
    k = array.shape[1]
    return array + 1.0 / k


def explicit_beliefs_from_labels(labels: Mapping[int, int], num_nodes: int,
                                 num_classes: int,
                                 confidence: float = 1.0) -> np.ndarray:
    """Row-stochastic prior beliefs from hard labels.

    A labeled node receives probability ``confidence`` on its class and the
    remainder spread uniformly over the other classes; unlabeled nodes get the
    uninformative prior ``1/k`` in every class.
    """
    if not 0.0 < confidence <= 1.0:
        raise ValidationError("confidence must lie in (0, 1]")
    if num_classes < 2:
        raise ValidationError("num_classes must be >= 2")
    beliefs = np.full((num_nodes, num_classes), 1.0 / num_classes)
    off_value = (1.0 - confidence) / (num_classes - 1)
    for node, label in labels.items():
        if not 0 <= node < num_nodes:
            raise ValidationError(f"labeled node {node} out of range")
        if not 0 <= label < num_classes:
            raise ValidationError(f"label {label} out of range")
        beliefs[node, :] = off_value
        beliefs[node, label] = confidence
    return beliefs


def explicit_residuals_from_labels(labels: Mapping[int, int], num_nodes: int,
                                   num_classes: int,
                                   magnitude: float = 0.1) -> np.ndarray:
    """Centered explicit beliefs ``Ê`` from hard labels.

    A labeled node gets ``+magnitude`` on its class and ``−magnitude/(k−1)``
    elsewhere (so the row sums to zero); unlabeled nodes stay all-zero.  This
    is the representation the LinBP and SBP APIs consume directly.
    """
    if magnitude <= 0:
        raise ValidationError("magnitude must be positive")
    if num_classes < 2:
        raise ValidationError("num_classes must be >= 2")
    residuals = np.zeros((num_nodes, num_classes))
    off_value = -magnitude / (num_classes - 1)
    for node, label in labels.items():
        if not 0 <= node < num_nodes:
            raise ValidationError(f"labeled node {node} out of range")
        if not 0 <= label < num_classes:
            raise ValidationError(f"label {label} out of range")
        residuals[node, :] = off_value
        residuals[node, label] = magnitude
    return residuals


def top_belief_sets(beliefs: np.ndarray,
                    tie_tolerance: float = DEFAULT_TIE_TOLERANCE,
                    skip_all_zero: bool = True) -> List[Set[int]]:
    """Top-belief assignment with ties (Problem 1).

    For every node return the set of classes whose belief is within
    ``tie_tolerance`` — *relative* to the row's maximum absolute value — of
    the row maximum.  A relative tolerance matters because residual beliefs
    shrink geometrically with the distance from labeled nodes (Section 6), so
    far-away nodes have uniformly tiny but still well-ordered beliefs.  Rows
    that are entirely zero — typically nodes unreachable from any labeled
    node — yield an empty set when ``skip_all_zero`` is true (no prediction),
    or the set of all classes otherwise.
    """
    matrix = np.asarray(beliefs, dtype=float)
    if matrix.ndim != 2:
        raise ValidationError("belief matrix must be two-dimensional")
    assignments: List[Set[int]] = []
    for row in matrix:
        scale = float(np.max(np.abs(row)))
        if scale == 0.0:
            assignments.append(set() if skip_all_zero else set(range(matrix.shape[1])))
            continue
        threshold = float(row.max()) - tie_tolerance * scale
        assignments.append(set(np.nonzero(row >= threshold)[0].tolist()))
    return assignments


@dataclass
class BeliefMatrix:
    """An ``n x k`` residual belief matrix with convenience views.

    The residual convention means each labeled row sums to (approximately)
    zero; unlabeled rows of an explicit-belief matrix are all zero.
    """

    residuals: np.ndarray

    def __post_init__(self):
        array = np.asarray(self.residuals, dtype=float)
        if array.ndim != 2:
            raise ValidationError("belief matrix must be two-dimensional")
        self.residuals = array

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_labels(cls, labels: Mapping[int, int], num_nodes: int,
                    num_classes: int, magnitude: float = 0.1) -> "BeliefMatrix":
        """Centered explicit beliefs from hard labels (see module docs)."""
        return cls(explicit_residuals_from_labels(labels, num_nodes, num_classes,
                                                  magnitude=magnitude))

    @classmethod
    def from_probabilities(cls, matrix: np.ndarray) -> "BeliefMatrix":
        """Center a row-stochastic matrix around 1/k."""
        return cls(center_probability_matrix(matrix))

    # ------------------------------------------------------------------ #
    # views
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes (rows)."""
        return self.residuals.shape[0]

    @property
    def num_classes(self) -> int:
        """Number of classes (columns)."""
        return self.residuals.shape[1]

    @property
    def probabilities(self) -> np.ndarray:
        """Un-centered view ``B = B̂ + 1/k`` (not clipped)."""
        return uncenter_residual_matrix(self.residuals)

    def labeled_nodes(self) -> np.ndarray:
        """Indices of rows that carry any non-zero residual."""
        return np.nonzero(np.any(self.residuals != 0.0, axis=1))[0]

    def standardized(self) -> np.ndarray:
        """Row-wise standardization ``ζ`` of the residuals (Definition 11)."""
        return np.vstack([standardize(row) for row in self.residuals]) \
            if self.num_nodes else self.residuals.copy()

    def standard_deviations(self) -> np.ndarray:
        """Row-wise standard deviations ``σ(b̂_s)`` (used in Fig. 4d)."""
        return self.residuals.std(axis=1)

    def top_beliefs(self, tie_tolerance: float = DEFAULT_TIE_TOLERANCE) -> List[Set[int]]:
        """Top-belief assignment with ties for every node."""
        return top_belief_sets(self.residuals, tie_tolerance=tie_tolerance)

    def hard_labels(self) -> np.ndarray:
        """Single argmax label per node (ties broken towards the lowest class id).

        Nodes with all-zero rows receive label −1 ("no prediction").
        """
        labels = np.full(self.num_nodes, -1, dtype=np.int64)
        nonzero = np.any(self.residuals != 0.0, axis=1)
        labels[nonzero] = np.argmax(self.residuals[nonzero], axis=1)
        return labels

    def scaled(self, factor: float) -> "BeliefMatrix":
        """A copy with every residual multiplied by ``factor`` (Lemma 12)."""
        return BeliefMatrix(self.residuals * float(factor))

    def copy(self) -> "BeliefMatrix":
        """A deep copy."""
        return BeliefMatrix(self.residuals.copy())
