"""Shared plumbing for the experiment modules.

Every experiment module in :mod:`repro.experiments` produces a
:class:`ResultTable` — a list of homogeneous rows plus helpers to print the
table in the same layout as the corresponding table/figure of the paper.
Keeping the output as plain data (rather than plots) makes the experiments
usable from benchmarks, tests and the command line alike.

:func:`propagate_batch` is the experiments' front door to the batched
engine (:mod:`repro.engine`): timing and throughput studies that issue many
queries against one graph should go through it rather than looping over
:func:`repro.core.linbp.linbp`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

__all__ = ["ResultTable", "timed", "propagate_batch"]


def timed(function: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``function()`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = function()
    elapsed = time.perf_counter() - start
    return result, elapsed


def propagate_batch(graph, coupling, explicit_list: Sequence,
                    echo_cancellation: bool = True, **options) -> List:
    """Propagate many explicit-belief matrices over one graph in one batch.

    Thin convenience wrapper over :func:`repro.engine.batch.run_batch`
    using the cached plan for ``(graph, coupling, echo_cancellation)``.
    ``options`` are forwarded (``max_iterations``, ``tolerance``,
    ``num_iterations``, ``require_convergence``).  Returns one
    :class:`~repro.core.results.PropagationResult` per query, matching
    what sequential :func:`~repro.core.linbp.linbp` calls would produce.
    """
    from repro.engine import get_plan, run_batch

    plan = get_plan(graph, coupling, echo_cancellation=echo_cancellation)
    return run_batch(plan, explicit_list, **options)


@dataclass
class ResultTable:
    """A titled table of result rows (dictionaries with identical keys).

    The table preserves insertion order of both rows and columns and can be
    rendered as an aligned text table (used by the examples and by the
    benchmark harness to print the reproduced figures next to the measured
    numbers).
    """

    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row given as keyword arguments."""
        self.rows.append(dict(values))

    @property
    def columns(self) -> List[str]:
        """Column names in first-seen order across all rows."""
        names: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in names:
                    names.append(key)
        return names

    def column(self, name: str) -> List[Any]:
        """All values of one column (``None`` where a row lacks the key)."""
        return [row.get(name) for row in self.rows]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    @staticmethod
    def _format_value(value: Any) -> str:
        if isinstance(value, float):
            if value == 0.0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    def to_text(self) -> str:
        """Render as an aligned, pipe-separated text table."""
        columns = self.columns
        if not columns:
            return f"{self.title}\n(empty)"
        cells = [[self._format_value(row.get(column, "")) for column in columns]
                 for row in self.rows]
        widths = [max(len(column), *(len(line[i]) for line in cells)) if cells
                  else len(column) for i, column in enumerate(columns)]
        header = " | ".join(column.ljust(width)
                            for column, width in zip(columns, widths))
        separator = "-+-".join("-" * width for width in widths)
        body = "\n".join(" | ".join(value.ljust(width)
                                    for value, width in zip(line, widths))
                         for line in cells)
        return f"{self.title}\n{header}\n{separator}\n{body}"

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()
