"""Ablation experiments for the design choices called out in DESIGN.md.

Three ablations accompany the paper's main results:

* :func:`run_echo_cancellation_ablation` — what does the echo-cancellation
  term ``D B̂ Ĥ²`` buy?  LinBP vs LinBP* accuracy against BP and the price in
  runtime and convergence range (the paper discusses this when introducing
  Eq. 5 and in Fig. 7g).
* :func:`run_solver_ablation` — iterative updates (Eq. 6) versus the
  closed-form Kronecker solve (Prop. 7): the closed form is exact but scales
  with ``(nk)³`` worst-case for the sparse factorisation, the iteration is
  linear per step; this quantifies when each wins.
* :func:`run_baseline_comparison` — LinBP/SBP versus the homophily-only wvRN
  relational learner [29]: equivalent under homophily, diverging under
  heterophily, which is the motivation for the coupling matrix Ĥ.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.beliefs.beliefs import BeliefMatrix
from repro.coupling.presets import general_heterophily, general_homophily
from repro.core.bp import belief_propagation
from repro.core.linbp import LinBP, linbp, linbp_closed_form, linbp_star
from repro.core.relational_learner import weighted_vote_relational_neighbor
from repro.core.sbp import sbp
from repro.datasets.kronecker_suite import kronecker_suite
from repro.experiments.runner import ResultTable, timed
from repro.graphs.graph import Graph
from repro.metrics.quality import labeling_accuracy, precision_recall

__all__ = [
    "run_echo_cancellation_ablation",
    "run_solver_ablation",
    "run_baseline_comparison",
    "run_estimated_coupling_experiment",
    "run_incremental_linbp_experiment",
]


def run_echo_cancellation_ablation(graph_index: int = 3,
                                   epsilons: Sequence[float] = (1e-4, 1e-3, 5e-3),
                                   seed: int = 0) -> ResultTable:
    """LinBP vs LinBP*: accuracy against BP, runtime, and convergence radius."""
    workload = kronecker_suite(max_index=graph_index, seed=seed)[graph_index - 1]
    graph, explicit = workload.graph, workload.explicit
    table = ResultTable("Ablation — echo cancellation (LinBP vs LinBP*)")
    for epsilon in epsilons:
        coupling = workload.coupling.scaled(float(epsilon))
        bp_result = belief_propagation(graph, coupling, explicit)
        bp_top = bp_result.top_beliefs()
        evaluation = [node for node, classes in enumerate(bp_top)
                      if classes and np.abs(bp_result.beliefs[node]).max() > 1e-12]
        full_result, full_seconds = timed(
            lambda: linbp(graph, coupling, explicit, num_iterations=10))
        star_result, star_seconds = timed(
            lambda: linbp_star(graph, coupling, explicit, num_iterations=10))
        full_scores = precision_recall(bp_top, full_result.top_beliefs(),
                                       restrict_to=evaluation)
        star_scores = precision_recall(bp_top, star_result.top_beliefs(),
                                       restrict_to=evaluation)
        table.add_row(
            epsilon=float(epsilon),
            linbp_f1_vs_bp=full_scores.f1,
            linbp_star_f1_vs_bp=star_scores.f1,
            linbp_seconds=full_seconds,
            linbp_star_seconds=star_seconds,
            spectral_radius_linbp=LinBP(graph, coupling).spectral_radius(),
            spectral_radius_linbp_star=LinBP(graph, coupling,
                                             echo_cancellation=False).spectral_radius(),
        )
    return table


def run_solver_ablation(max_index: int = 3, epsilon: float = 1e-3,
                        seed: int = 0) -> ResultTable:
    """Iterative LinBP vs the closed-form Kronecker solve, per graph size."""
    table = ResultTable("Ablation — iterative updates vs closed-form solve")
    for workload in kronecker_suite(max_index=max_index, seed=seed):
        coupling = workload.coupling.scaled(epsilon)
        iterative_result, iterative_seconds = timed(
            lambda: linbp(workload.graph, coupling, workload.explicit,
                          max_iterations=200, tolerance=1e-12))
        closed_result, closed_seconds = timed(
            lambda: linbp_closed_form(workload.graph, coupling, workload.explicit))
        difference = float(np.max(np.abs(iterative_result.beliefs
                                         - closed_result.beliefs)))
        table.add_row(
            index=workload.index,
            nodes=workload.num_nodes,
            edges=workload.num_edges,
            iterative_seconds=iterative_seconds,
            iterative_iterations=iterative_result.iterations,
            closed_form_seconds=closed_seconds,
            max_belief_difference=difference,
        )
    return table


def _heterophily_chain_workload(num_nodes: int = 60, seed: int = 0):
    """A bipartite-ish workload where heterophily is the right assumption."""
    rng = np.random.default_rng(seed)
    # A long even cycle: perfectly 2-colourable, adjacent nodes in opposite
    # classes.  Label a handful of nodes with their true colour.
    edges = [(i, (i + 1) % num_nodes) for i in range(num_nodes)]
    graph = Graph.from_edges(edges, num_nodes=num_nodes)
    true_labels = np.arange(num_nodes) % 2
    labeled_nodes = rng.choice(num_nodes, size=max(2, num_nodes // 10), replace=False)
    explicit = BeliefMatrix.from_labels(
        {int(node): int(true_labels[node]) for node in labeled_nodes},
        num_nodes=num_nodes, num_classes=2, magnitude=0.1)
    return graph, true_labels, explicit.residuals, labeled_nodes


def _homophily_community_workload(num_nodes: int = 60, seed: int = 0):
    """Two planted communities where homophily is the right assumption."""
    rng = np.random.default_rng(seed)
    half = num_nodes // 2
    true_labels = np.array([0] * half + [1] * (num_nodes - half))
    edges = []
    for source in range(num_nodes):
        for target in range(source + 1, num_nodes):
            same = true_labels[source] == true_labels[target]
            if rng.random() < (0.15 if same else 0.01):
                edges.append((source, target))
    graph = Graph.from_edges(edges, num_nodes=num_nodes)
    labeled_nodes = rng.choice(num_nodes, size=max(2, num_nodes // 10), replace=False)
    explicit = BeliefMatrix.from_labels(
        {int(node): int(true_labels[node]) for node in labeled_nodes},
        num_nodes=num_nodes, num_classes=2, magnitude=0.1)
    return graph, true_labels, explicit.residuals, labeled_nodes


def run_estimated_coupling_experiment(num_papers: int = 600, seed: int = 0,
                                      epsilon: float = 1e-3,
                                      smoothing: float = 1.0) -> ResultTable:
    """Future-work extension: learn Ĥ from the labeled data (footnote 1).

    On the DBLP-like workload, estimate the coupling matrix from the edges
    between labeled nodes (:mod:`repro.core.estimation`) and compare LinBP /
    SBP accuracy under the estimated coupling against (i) the true Fig. 11a
    coupling and (ii) a coupling with the wrong sign (heterophily), which
    shows how much the coupling matters and how well it can be recovered.
    """
    from repro.core.estimation import estimate_coupling
    from repro.datasets.dblp import generate_dblp_like

    dataset = generate_dblp_like(num_papers=num_papers,
                                 num_authors=int(num_papers * 0.6),
                                 num_conferences=12,
                                 num_terms=int(num_papers * 0.27), seed=seed)
    graph, explicit = dataset.graph, dataset.explicit
    labeled_nodes = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
    labels = {int(node): int(np.argmax(explicit[node])) for node in labeled_nodes}
    evaluation = [node for node in range(graph.num_nodes)
                  if node not in set(labeled_nodes.tolist())]
    estimate = estimate_coupling(graph, labels, num_classes=4, smoothing=smoothing)
    candidates = {
        "true (Fig. 11a)": dataset.coupling,
        "estimated from labels": estimate.coupling,
        "mis-specified (heterophily)": general_heterophily(4, strength=0.06),
    }
    table = ResultTable("Extension — estimated vs given coupling matrix")
    for name, base_coupling in candidates.items():
        coupling = base_coupling.scaled(epsilon)
        linbp_labels = linbp(graph, coupling, explicit).hard_labels()
        sbp_labels = sbp(graph, base_coupling, explicit).hard_labels()
        table.add_row(
            coupling=name,
            observed_labeled_edges=estimate.num_observed_edges,
            linbp_truth_accuracy=labeling_accuracy(dataset.true_labels, linbp_labels,
                                                   evaluation),
            sbp_truth_accuracy=labeling_accuracy(dataset.true_labels, sbp_labels,
                                                 evaluation),
        )
    return table


def run_incremental_linbp_experiment(graph_index: int = 3, epsilon: float = 1e-3,
                                     num_new_labels: int = 10,
                                     num_new_edges: int = 20,
                                     seed: int = 0) -> ResultTable:
    """Future-work extension: incremental maintenance of LinBP (Section 8).

    Measures how many iterations the superposition update (new labels) and the
    warm-started re-solve (new edges) need, compared with solving from scratch
    — and verifies the maintained solution matches the fresh one.
    """
    from repro.core.incremental import IncrementalLinBP
    from repro.datasets.synthetic_labels import sample_explicit_beliefs, sample_explicit_nodes

    workload = kronecker_suite(max_index=graph_index, seed=seed)[graph_index - 1]
    graph = workload.graph
    coupling = workload.coupling.scaled(epsilon)
    explicit = workload.explicit
    rng = np.random.default_rng(seed + 1)
    table = ResultTable("Extension — incremental LinBP maintenance")
    maintainer = IncrementalLinBP(graph, coupling)
    initial_result, initial_seconds = timed(lambda: maintainer.run(explicit))

    # Label update: superposition solve for the delta right-hand side.
    new_nodes = sample_explicit_nodes(
        graph.num_nodes, num_new_labels / graph.num_nodes, seed=seed + 2,
        exclude=np.nonzero(np.any(explicit != 0.0, axis=1))[0].tolist())
    update = sample_explicit_beliefs(graph.num_nodes, 3, new_nodes, seed=seed + 3)
    label_result, label_seconds = timed(
        lambda: maintainer.add_explicit_beliefs(update))
    scratch_labels, scratch_label_seconds = timed(
        lambda: linbp(graph, coupling, explicit + update, max_iterations=200,
                      tolerance=1e-10))
    table.add_row(
        update="initial solve",
        iterations=initial_result.extra["update_iterations"],
        seconds=initial_seconds,
        scratch_seconds=initial_seconds,
        max_difference_vs_scratch=0.0,
    )
    table.add_row(
        update=f"+{len(new_nodes)} labels (superposition)",
        iterations=label_result.extra["update_iterations"],
        seconds=label_seconds,
        scratch_seconds=scratch_label_seconds,
        max_difference_vs_scratch=float(np.max(np.abs(label_result.beliefs
                                                      - scratch_labels.beliefs))),
    )

    # Edge update: warm-started iteration on the modified system.
    new_edges = []
    while len(new_edges) < num_new_edges:
        source, target = rng.integers(0, graph.num_nodes, size=2)
        if source != target and not maintainer.graph.has_edge(int(source), int(target)):
            new_edges.append((int(source), int(target)))
    edge_result, edge_seconds = timed(lambda: maintainer.add_edges(new_edges))
    extended = graph.with_edges_added(new_edges)
    scratch_edges, scratch_edge_seconds = timed(
        lambda: linbp(extended, coupling, explicit + update, max_iterations=200,
                      tolerance=1e-10))
    table.add_row(
        update=f"+{len(new_edges)} edges (warm start)",
        iterations=edge_result.extra["update_iterations"],
        seconds=edge_seconds,
        scratch_seconds=scratch_edge_seconds,
        max_difference_vs_scratch=float(np.max(np.abs(edge_result.beliefs
                                                      - scratch_edges.beliefs))),
    )
    return table


def run_baseline_comparison(num_nodes: int = 60, seed: int = 0) -> ResultTable:
    """LinBP / SBP / wvRN under homophily and under heterophily.

    The homophily-only wvRN baseline matches the propagation methods when the
    network is homophilic and collapses under heterophily, where LinBP and SBP
    keep working because the coupling matrix encodes "opposites attract".
    """
    table = ResultTable("Ablation — coupling-aware propagation vs wvRN [29]")
    scenarios = [
        ("homophily", _homophily_community_workload(num_nodes, seed),
         general_homophily(2, strength=0.1, epsilon=1.0)),
        ("heterophily", _heterophily_chain_workload(num_nodes, seed),
         general_heterophily(2, strength=0.1, epsilon=1.0)),
    ]
    for name, (graph, true_labels, explicit, labeled_nodes), base_coupling in scenarios:
        evaluation = [node for node in range(graph.num_nodes)
                      if node not in set(labeled_nodes.tolist())]
        safe_epsilon = 0.5 / max(base_coupling.spectral_radius(scaled=False)
                                 * graph.spectral_radius(), 1e-9)
        coupling = base_coupling.scaled(min(safe_epsilon, 1.0))
        linbp_labels = linbp(graph, coupling, explicit).hard_labels()
        sbp_labels = sbp(graph, coupling, explicit).hard_labels()
        wvrn_labels = weighted_vote_relational_neighbor(graph, explicit).hard_labels()
        table.add_row(
            scenario=name,
            linbp_accuracy=labeling_accuracy(true_labels, linbp_labels, evaluation),
            sbp_accuracy=labeling_accuracy(true_labels, sbp_labels, evaluation),
            wvrn_accuracy=labeling_accuracy(true_labels, wvrn_labels, evaluation),
        )
    return table
