"""One experiment module per table/figure of the paper (see DESIGN.md index)."""

from repro.experiments.ablations import (
    run_baseline_comparison,
    run_echo_cancellation_ablation,
    run_estimated_coupling_experiment,
    run_incremental_linbp_experiment,
    run_solver_ablation,
)
from repro.experiments.appendix_g_bounds import run_bound_comparison
from repro.experiments.fig10_sensitivity import (
    run_explicit_fraction_sweep,
    run_incremental_edges,
)
from repro.experiments.fig11_dblp import run_dblp_quality
from repro.experiments.fig4_torus import (
    run_torus_sweep,
    torus_reference_values,
    torus_workload,
)
from repro.experiments.fig6_datasets import run_dataset_table
from repro.experiments.fig7_incremental import run_incremental_beliefs
from repro.experiments.fig7_periteration import run_per_iteration_timing
from repro.experiments.fig7_quality import run_quality_sweep
from repro.experiments.fig7_scalability import (
    run_memory_scalability,
    run_relational_scalability,
    run_timing_table,
)
from repro.experiments.runner import ResultTable, propagate_batch, timed

__all__ = [
    "run_baseline_comparison",
    "run_echo_cancellation_ablation",
    "run_estimated_coupling_experiment",
    "run_incremental_linbp_experiment",
    "run_solver_ablation",
    "run_bound_comparison",
    "run_explicit_fraction_sweep",
    "run_incremental_edges",
    "run_dblp_quality",
    "run_torus_sweep",
    "torus_reference_values",
    "torus_workload",
    "run_dataset_table",
    "run_incremental_beliefs",
    "run_per_iteration_timing",
    "run_quality_sweep",
    "run_memory_scalability",
    "run_relational_scalability",
    "run_timing_table",
    "ResultTable",
    "propagate_batch",
    "timed",
]
