"""Experiment E11 — Fig. 11: quality on the DBLP-like heterogeneous graph.

The paper labels 10.4 % of a DBLP snapshot with one of four research areas
(AI, DB, DM, IR), assumes homophily (Fig. 11a), and sweeps the coupling scale
``ε_H``.  Fig. 11b reports the F1-score of LinBP, LinBP* and SBP against BP's
labels: LinBP/LinBP* track BP almost perfectly while both converge, and SBP
stays above ~0.95 but loses a few points to ties.

Because the original snapshot is not redistributable, the experiment runs on
the synthetic DBLP-like generator of :mod:`repro.datasets.dblp` (see DESIGN.md
for the substitution rationale).  As a bonus the table also reports accuracy
against the generator's planted ground-truth labels, which the paper cannot
do for the real data.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.bp import belief_propagation
from repro.core.linbp import linbp, linbp_star
from repro.core.sbp import sbp
from repro.datasets.dblp import DblpLikeDataset, generate_dblp_like
from repro.experiments.runner import ResultTable
from repro.metrics.quality import labeling_accuracy, precision_recall

__all__ = ["run_dblp_quality", "DEFAULT_DBLP_EPSILONS"]

DEFAULT_DBLP_EPSILONS = tuple(np.logspace(-6, -2.5, 6).tolist())


def run_dblp_quality(dataset: Optional[DblpLikeDataset] = None,
                     epsilons: Sequence[float] = DEFAULT_DBLP_EPSILONS,
                     max_iterations: int = 100, seed: int = 0,
                     num_papers: int = 1500) -> ResultTable:
    """Fig. 11b: F1 of LinBP / LinBP* / SBP against BP on the DBLP-like graph."""
    if dataset is None:
        dataset = generate_dblp_like(num_papers=num_papers,
                                     num_authors=int(num_papers * 0.6),
                                     num_conferences=20,
                                     num_terms=int(num_papers * 0.27),
                                     seed=seed)
    graph = dataset.graph
    explicit = dataset.explicit
    base_coupling = dataset.coupling
    labeled = set(np.nonzero(np.any(explicit != 0.0, axis=1))[0].tolist())
    table = ResultTable("Fig. 11b — F1 of LinBP/LinBP*/SBP w.r.t. BP (DBLP-like)")
    sbp_result = sbp(graph, base_coupling, explicit)
    sbp_top = sbp_result.top_beliefs()
    sbp_labels = sbp_result.hard_labels()
    for epsilon in epsilons:
        coupling = base_coupling.scaled(float(epsilon))
        bp_result = belief_propagation(graph, coupling, explicit,
                                       max_iterations=max_iterations)
        linbp_result = linbp(graph, coupling, explicit, max_iterations=max_iterations)
        star_result = linbp_star(graph, coupling, explicit,
                                 max_iterations=max_iterations)
        bp_top = bp_result.top_beliefs()
        # Evaluate on unlabeled nodes for which BP makes any prediction.
        evaluation_nodes = [node for node, classes in enumerate(bp_top)
                            if classes and node not in labeled]
        linbp_scores = precision_recall(bp_top, linbp_result.top_beliefs(),
                                        restrict_to=evaluation_nodes)
        star_scores = precision_recall(bp_top, star_result.top_beliefs(),
                                       restrict_to=evaluation_nodes)
        sbp_scores = precision_recall(bp_top, sbp_top,
                                      restrict_to=evaluation_nodes)
        table.add_row(
            epsilon=float(epsilon),
            linbp_f1=linbp_scores.f1,
            linbp_star_f1=star_scores.f1,
            sbp_f1=sbp_scores.f1,
            bp_truth_accuracy=labeling_accuracy(dataset.true_labels,
                                                bp_result.hard_labels(),
                                                restrict_to=evaluation_nodes),
            linbp_truth_accuracy=labeling_accuracy(dataset.true_labels,
                                                   linbp_result.hard_labels(),
                                                   restrict_to=evaluation_nodes),
            sbp_truth_accuracy=labeling_accuracy(dataset.true_labels, sbp_labels,
                                                 restrict_to=evaluation_nodes),
        )
    return table
