"""Experiments E9/E10 — Fig. 10: sensitivity to explicit-belief and edge updates.

* **Fig. 10a**: with the graph fixed, vary the fraction of explicitly labeled
  nodes.  LinBP gets slightly slower (more non-zero rows to propagate), SBP
  gets slightly faster (fewer levels to sweep) — both effects are minor.
* **Fig. 10b**: keep 10 % of the nodes labeled and vary the fraction of the
  final edges that arrive as an update.  Incremental ΔSBP (Algorithm 4) beats
  recomputation only for small fractions (~3 % in the paper) because edge
  insertions can force repeated repairs of the same nodes.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.core.linbp import linbp
from repro.core.sbp import SBP
from repro.datasets.kronecker_suite import kronecker_suite
from repro.datasets.synthetic_labels import sample_explicit_beliefs, sample_explicit_nodes
from repro.experiments.runner import ResultTable, timed
from repro.graphs.graph import Edge, Graph
from repro.relational.sbp_incremental import add_edges_sql
from repro.relational.sbp_sql import RelationalSBP

__all__ = ["run_explicit_fraction_sweep", "run_incremental_edges"]

DEFAULT_EXPLICIT_FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 0.95)
DEFAULT_EDGE_FRACTIONS = (0.005, 0.01, 0.02, 0.03, 0.05, 0.08, 0.10)


def run_explicit_fraction_sweep(graph_index: int = 3,
                                fractions: Sequence[float] = DEFAULT_EXPLICIT_FRACTIONS,
                                epsilon: float = 0.001, num_iterations: int = 5,
                                seed: int = 0) -> ResultTable:
    """Fig. 10a: runtime of LinBP and SBP as the labeled fraction grows."""
    workload = kronecker_suite(max_index=graph_index, seed=seed)[graph_index - 1]
    graph = workload.graph
    coupling = workload.coupling.scaled(epsilon)
    table = ResultTable("Fig. 10a — runtime vs fraction of explicit beliefs")
    for fraction in fractions:
        nodes = sample_explicit_nodes(graph.num_nodes, fraction, seed=seed + 31)
        explicit = sample_explicit_beliefs(graph.num_nodes, 3, nodes, seed=seed + 32)
        _, linbp_seconds = timed(lambda: linbp(graph, coupling, explicit,
                                               num_iterations=num_iterations))
        _, sbp_seconds = timed(lambda: SBP(graph, coupling).run(explicit))
        table.add_row(
            explicit_fraction=float(fraction),
            linbp_seconds=linbp_seconds,
            sbp_seconds=sbp_seconds,
        )
    return table


def _split_edges(graph: Graph, new_fraction: float,
                 seed: int) -> Tuple[Graph, List[Edge]]:
    """Remove a random fraction of edges; return (reduced graph, removed edges)."""
    edges = list(graph.edges())
    rng = np.random.default_rng(seed)
    count_new = int(round(new_fraction * len(edges)))
    if count_new == 0:
        return graph, []
    new_indices = set(rng.choice(len(edges), size=count_new, replace=False).tolist())
    kept = [edge for index, edge in enumerate(edges) if index not in new_indices]
    removed = [edges[index] for index in sorted(new_indices)]
    reduced = Graph.from_edges(kept, num_nodes=graph.num_nodes)
    return reduced, removed


def run_incremental_edges(graph_index: int = 3, explicit_fraction: float = 0.10,
                          fractions: Sequence[float] = DEFAULT_EDGE_FRACTIONS,
                          epsilon: float = 0.001, seed: int = 0,
                          engine: str = "memory") -> ResultTable:
    """Fig. 10b: ΔSBP edge updates vs recomputing SBP from scratch.

    With ``x`` % new edges, the initial SBP run sees the graph with those
    edges removed and Algorithm 4 then inserts them; the constant reference is
    a full SBP run on the complete graph.
    """
    workload = kronecker_suite(max_index=graph_index, seed=seed)[graph_index - 1]
    full_graph = workload.graph
    coupling = workload.coupling.scaled(epsilon)
    nodes = sample_explicit_nodes(full_graph.num_nodes, explicit_fraction,
                                  seed=seed + 41)
    explicit = sample_explicit_beliefs(full_graph.num_nodes, 3, nodes, seed=seed + 42)
    table = ResultTable("Fig. 10b — incremental edge insertion vs SBP from scratch")
    if engine == "relational":
        _, scratch_seconds = timed(lambda: RelationalSBP(full_graph, coupling).run(explicit))
    else:
        _, scratch_seconds = timed(lambda: SBP(full_graph, coupling).run(explicit))
    for fraction in fractions:
        reduced_graph, new_edges = _split_edges(full_graph, fraction, seed=seed + 43)
        if engine == "relational":
            runner = RelationalSBP(reduced_graph, coupling)
            runner.run(explicit)
            result, delta_seconds = timed(lambda: add_edges_sql(runner, new_edges))
        else:
            runner = SBP(reduced_graph, coupling)
            runner.run(explicit)
            result, delta_seconds = timed(lambda: runner.add_edges(new_edges))
        table.add_row(
            new_edge_fraction=float(fraction),
            num_new_edges=len(new_edges),
            delta_sbp_seconds=delta_seconds,
            sbp_scratch_seconds=scratch_seconds,
            nodes_updated=result.extra.get("nodes_updated"),
            delta_faster=delta_seconds < scratch_seconds,
        )
    return table
