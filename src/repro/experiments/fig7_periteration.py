"""Experiment E5 — Fig. 7d: time spent per iteration, LinBP vs SBP.

LinBP revisits every edge in every iteration, so its per-iteration cost is
flat.  SBP visits each edge at most once: iteration ``i`` touches only the
edges between geodesic levels ``i−1`` and ``i``, so its per-iteration cost
first grows with the frontier and then shrinks to zero.  The paper measures
this on graph #7; we default to a smaller graph but the shape is identical.

To keep the comparison implementation-neutral, the table reports both the
measured seconds and the number of edges processed per iteration (the paper's
explanation for the shape of the curves).
"""

from __future__ import annotations

import time
from typing import List

import numpy as np
from repro.datasets.kronecker_suite import kronecker_suite
from repro.engine import BatchWorkspace, get_plan
from repro.experiments.runner import ResultTable
from repro.graphs.geodesic import geodesic_levels, modified_adjacency

__all__ = ["run_per_iteration_timing"]


def run_per_iteration_timing(graph_index: int = 4, epsilon: float = 0.001,
                             num_iterations: int = 5, seed: int = 0) -> ResultTable:
    """Fig. 7d: per-iteration cost of LinBP vs the SBP level sweep."""
    workload = kronecker_suite(max_index=graph_index, seed=seed)[graph_index - 1]
    coupling = workload.coupling.scaled(epsilon)
    graph = workload.graph
    explicit = workload.explicit
    # LinBP: time each engine step (one full Eq. 6 update on preallocated
    # buffers) separately; buffer setup and the convergence reduction are
    # excluded so the measured quantity is the pure update equation, like
    # the paper excludes data loading.
    plan = get_plan(graph, coupling, echo_cancellation=True)
    workspace = BatchWorkspace(plan, num_queries=1)
    workspace.load([explicit])
    linbp_times: List[float] = []
    for _ in range(num_iterations):
        start = time.perf_counter()
        workspace.step(compute_changes=False)
        linbp_times.append(time.perf_counter() - start)
    # SBP: time each geodesic level of the single sweep separately.
    labeled = np.nonzero(np.any(explicit != 0.0, axis=1))[0]
    levels = geodesic_levels(graph, labeled.tolist())
    dag_t = modified_adjacency(graph, labeled.tolist()).T.tocsr()
    sbp_beliefs = np.zeros_like(explicit)
    sbp_beliefs[labeled] = explicit[labeled]
    residual = coupling.residual
    sbp_times: List[float] = []
    sbp_edges: List[int] = []
    for level in range(1, max(levels.max_level, num_iterations) + 1):
        nodes = levels.nodes_at(level)
        start = time.perf_counter()
        if nodes.size:
            block = dag_t[nodes]
            sbp_beliefs[nodes] = (block @ sbp_beliefs) @ residual
            edges = int(block.nnz)
        else:
            edges = 0
        sbp_times.append(time.perf_counter() - start)
        sbp_edges.append(edges)
    table = ResultTable("Fig. 7d — per-iteration time, LinBP vs SBP")
    total_edges = graph.num_directed_edges
    iterations = max(num_iterations, len(sbp_times))
    for iteration in range(1, iterations + 1):
        table.add_row(
            iteration=iteration,
            linbp_seconds=linbp_times[iteration - 1] if iteration <= len(linbp_times) else None,
            linbp_edges=total_edges if iteration <= len(linbp_times) else 0,
            sbp_seconds=sbp_times[iteration - 1] if iteration <= len(sbp_times) else 0.0,
            sbp_edges=sbp_edges[iteration - 1] if iteration <= len(sbp_edges) else 0,
        )
    return table
