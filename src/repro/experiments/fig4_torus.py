"""Experiment E1 — Fig. 4 / Example 20: the torus graph in detail.

The paper's detailed example runs BP, LinBP, LinBP* and SBP on the 8-node
torus graph of Fig. 5c with the Fig. 1c coupling matrix and explicit beliefs
on v1, v2 and v3, sweeping the coupling scale ``ε_H``.  The four panels show:

* **(a)–(c)** the standardized beliefs of node v4 for BP, LinBP and LinBP*:
  as ``ε_H`` decreases they converge to the SBP values
  ``[−0.069, 1.258, −1.189]``; the curves end at the exact convergence
  thresholds (``ε_H ≈ 0.488`` for LinBP, ``≈ 0.658`` for LinBP*).
* **(d)** the standard deviation ``σ(b̂_v4)``, which for small ``ε_H`` follows
  the SBP prediction ``3 · ε_H³ · 0.332`` (a straight line on log–log axes).

:func:`run_torus_sweep` reproduces all four panels as one table with a row per
``ε_H`` value, and :func:`torus_reference_values` returns the closed-form
quantities quoted in Example 20 so tests can assert them.
"""

from __future__ import annotations
from typing import Dict, Sequence

import numpy as np

from repro.beliefs.beliefs import standardize
from repro.coupling.presets import fraud_matrix
from repro.core import convergence
from repro.core.bp import belief_propagation
from repro.core.linbp import linbp, linbp_star
from repro.core.sbp import sbp
from repro.experiments.runner import ResultTable
from repro.graphs.generators import torus_graph

__all__ = ["torus_workload", "torus_reference_values", "run_torus_sweep",
           "DEFAULT_EPSILONS"]

#: Default sweep of the coupling scale, log-spaced like the paper's x-axis.
DEFAULT_EPSILONS = tuple(np.round(np.logspace(np.log10(0.01), np.log10(0.8), 13), 6))

#: Index (0-based) of the node the example focuses on: paper's v4.
FOCUS_NODE = 3


def torus_workload():
    """The Example 20 workload: graph, unscaled coupling, explicit beliefs."""
    graph = torus_graph()
    coupling = fraud_matrix()
    explicit = np.zeros((graph.num_nodes, 3))
    explicit[0] = [2.0, -1.0, -1.0]   # v1
    explicit[1] = [-1.0, 2.0, -1.0]   # v2
    explicit[2] = [-1.0, -1.0, 2.0]   # v3
    # Scale down so that even the largest epsilon keeps BP's potentials valid.
    explicit *= 0.1
    return graph, coupling, explicit


def torus_reference_values() -> Dict[str, object]:
    """Closed-form quantities quoted in Example 20 (for tests and reports)."""
    graph, coupling, explicit = torus_workload()
    unscaled = coupling.unscaled_residual
    # SBP's prediction for v4 comes from the two length-3 shortest paths
    # starting at v1 and v3 (Example 20): Ĥo³ (ê_v1 + ê_v3).  With the paper's
    # beliefs [2,-1,-1] and [-1,-1,2] the sum is [1,-2,1]; standardization
    # removes any overall scale.
    sbp_direction = np.linalg.matrix_power(unscaled, 3) @ np.array([1.0, -2.0, 1.0])
    sbp_standardized = standardize(sbp_direction)
    report = convergence.analyze(graph, coupling)
    return {
        "sbp_standardized_v4": sbp_standardized,
        # σ(Ĥo³ (ê_v1 + ê_v3)) for the paper's unit-scale beliefs: ≈ 0.332.
        "sigma_slope": float(np.std(sbp_direction)),
        "rho_adjacency": report.spectral_radius_adjacency,
        "rho_coupling_unscaled": report.spectral_radius_coupling_unscaled,
        "exact_threshold_linbp": report.exact_threshold_linbp,
        "exact_threshold_linbp_star": report.exact_threshold_linbp_star,
        "sufficient_threshold_linbp": report.sufficient_threshold_linbp,
        "sufficient_threshold_linbp_star": report.sufficient_threshold_linbp_star,
    }


def run_torus_sweep(epsilons: Sequence[float] = DEFAULT_EPSILONS,
                    max_iterations: int = 200) -> ResultTable:
    """Reproduce Fig. 4: standardized beliefs and σ of node v4 versus ``ε_H``.

    Each row contains, for one value of ``ε_H``: the three standardized belief
    components of v4 under BP, LinBP and LinBP*, the corresponding standard
    deviations, the SBP reference (independent of ``ε_H``), and whether the
    exact criteria of Lemma 8 predict convergence at that scale.
    """
    graph, coupling, explicit = torus_workload()
    reference = torus_reference_values()
    sbp_result = sbp(graph, coupling, explicit)
    sbp_standardized = sbp_result.standardized_beliefs()[FOCUS_NODE]
    table = ResultTable("Fig. 4 — standardized beliefs of v4 vs epsilon_H")
    for epsilon in epsilons:
        scaled = coupling.scaled(float(epsilon))
        row: Dict[str, object] = {"epsilon": float(epsilon)}
        row["linbp_converges"] = epsilon < reference["exact_threshold_linbp"]
        row["linbp_star_converges"] = epsilon < reference["exact_threshold_linbp_star"]
        linbp_result = linbp(graph, scaled, explicit, max_iterations=max_iterations)
        linbp_star_result = linbp_star(graph, scaled, explicit,
                                       max_iterations=max_iterations)
        try:
            bp_result = belief_propagation(graph, scaled, explicit,
                                           max_iterations=max_iterations)
        except Exception:  # BP's potentials become invalid for large epsilon
            bp_result = None
        for name, result in (("bp", bp_result), ("linbp", linbp_result),
                             ("linbp_star", linbp_star_result)):
            if result is None:
                row[f"{name}_std_beliefs"] = None
                row[f"{name}_sigma"] = None
                row[f"{name}_converged"] = False
                continue
            focus = result.beliefs[FOCUS_NODE]
            row[f"{name}_std_beliefs"] = np.round(standardize(focus), 6).tolist()
            row[f"{name}_sigma"] = float(np.std(focus))
            row[f"{name}_converged"] = bool(result.converged)
        row["sbp_std_beliefs"] = np.round(sbp_standardized, 6).tolist()
        # The workload scales the paper's beliefs by 0.1, so the predicted
        # standard deviation is epsilon³ · σ(Ĥo³[1,-2,1]) · 0.1.
        row["sbp_sigma_prediction"] = float(epsilon ** 3
                                            * reference["sigma_slope"] * 0.1)
        table.add_row(**row)
    return table
