"""Experiment E12 — Appendix G: comparing convergence bounds.

Appendix G contrasts the paper's exact LinBP* criterion ``ρ(Ĥ)·ρ(A) < 1`` with
the Mooij–Kappen sufficient bound for standard BP, ``c(H)·ρ(A_edge) < 1``:

* empirically ``ρ(A_edge) + 1 ≈ ρ(A)`` (so ``ρ(A_edge) < ρ(A)``), which can
  make the Mooij–Kappen bound admit couplings the LinBP criterion rejects;
* but in multi-class settings usually ``c(H) > ρ(Ĥ)``, pushing the comparison
  the other way — neither bound subsumes the other, and on realistic networks
  (large spectral radii) the LinBP criteria admit a wider range of ``Ĥ``.

:func:`run_bound_comparison` computes both quantities over the synthetic
suite and reports the largest admissible ``ε_H`` under each criterion.
"""

from __future__ import annotations

import numpy as np

from repro.core.convergence import (
    edge_adjacency_matrix,
    max_epsilon_exact,
    mooij_kappen_constant,
)
from repro.coupling.matrices import CouplingMatrix
from repro.datasets.kronecker_suite import kronecker_suite
from repro.experiments.runner import ResultTable
from repro.graphs import linalg

__all__ = ["run_bound_comparison", "mooij_kappen_epsilon_threshold"]


def mooij_kappen_epsilon_threshold(coupling: CouplingMatrix, edge_radius: float,
                                   tolerance: float = 1e-5,
                                   upper: float = 10.0) -> float:
    """Largest ``ε_H`` for which the Mooij–Kappen bound certifies BP convergence.

    ``c(ε·Ĥo + 1/k)`` grows monotonically with ``ε`` (it is 0 at ``ε = 0``),
    so the threshold is found by bisection on ``c(H_ε)·ρ(A_edge) = 1``.
    Couplings whose stochastic form develops non-positive entries before the
    bound is reached simply cap the search at that scale.
    """
    def bound(epsilon: float) -> float:
        scaled = coupling.scaled(epsilon) if epsilon > 0 else coupling.scaled(1e-12)
        if np.any(scaled.stochastic <= 0.0):
            return np.inf
        return mooij_kappen_constant(scaled) * edge_radius

    if bound(upper) < 1.0:
        return upper
    low, high = 0.0, upper
    while high - low > tolerance * max(high, 1e-9):
        middle = 0.5 * (low + high)
        if bound(middle) < 1.0:
            low = middle
        else:
            high = middle
    return 0.5 * (low + high)


def run_bound_comparison(max_index: int = 3, seed: int = 0) -> ResultTable:
    """Appendix G: LinBP / LinBP* exact thresholds vs the Mooij–Kappen bound."""
    table = ResultTable("Appendix G — convergence-bound comparison")
    for workload in kronecker_suite(max_index=max_index, seed=seed):
        graph = workload.graph
        coupling = workload.coupling
        rho_adjacency = graph.spectral_radius()
        edge_matrix = edge_adjacency_matrix(graph)
        rho_edge = linalg.spectral_radius(edge_matrix)
        linbp_threshold = max_epsilon_exact(graph, coupling, echo_cancellation=True)
        linbp_star_threshold = max_epsilon_exact(graph, coupling,
                                                 echo_cancellation=False)
        mooij_threshold = mooij_kappen_epsilon_threshold(coupling, rho_edge)
        table.add_row(
            index=workload.index,
            nodes=workload.num_nodes,
            edges=workload.num_edges,
            rho_adjacency=rho_adjacency,
            rho_edge_adjacency=rho_edge,
            rho_gap=rho_adjacency - rho_edge,
            linbp_epsilon_threshold=linbp_threshold,
            linbp_star_epsilon_threshold=linbp_star_threshold,
            mooij_kappen_epsilon_threshold=mooij_threshold,
            linbp_admits_more=linbp_star_threshold > mooij_threshold,
        )
    return table
