"""Experiment E2 — Fig. 6a: the synthetic-data table.

The paper's Fig. 6a lists, for each of the nine Kronecker graphs, the number
of nodes, edges (adjacency entries), edges-per-node ratio, and how many nodes
receive explicit beliefs at the 5 % and 1 ‰ levels.  :func:`run_dataset_table`
regenerates that table for the locally generated suite (smaller maximum size
by default; see DESIGN.md for the substitution note).
"""

from __future__ import annotations

from repro.datasets.kronecker_suite import kronecker_suite
from repro.experiments.runner import ResultTable

__all__ = ["run_dataset_table"]


def run_dataset_table(max_index: int = 4, seed: int = 0) -> ResultTable:
    """Regenerate Fig. 6a for graphs #1 .. #``max_index``."""
    table = ResultTable("Fig. 6a — synthetic Kronecker workloads")
    for workload in kronecker_suite(max_index=max_index, seed=seed):
        description = workload.describe()
        table.add_row(
            index=description["index"],
            nodes=description["nodes"],
            edges=description["edges"],
            edges_per_node=round(description["edges"] / description["nodes"], 1),
            explicit_5pct=description["explicit_5pct"],
            explicit_1permille=description["explicit_1permille"],
        )
    return table
