"""Experiment E6 — Fig. 7e: incremental ΔSBP vs recomputation from scratch.

The paper fixes 10 % of the nodes as explicitly labeled *after* the update and
varies which fraction of those labels is new: with ``x`` % new labels, the
initial SBP run sees ``(100 − x)`` % of the labels and the incremental
Algorithm 3 then adds the remaining ``x`` %.  Recomputing from scratch always
costs the same, so the two curves cross; the paper observes the crossover
around 50 % new labels.

Both the relational implementations (as in the paper's SQL experiment) and
the in-memory implementations are measured, so the crossover can be checked
independently of the engine.  Since the vectorised-SBP refactor every
variant routes through :mod:`repro.engine.sbp_plan`: the from-scratch runs
sweep a cached :class:`~repro.engine.sbp_plan.SBPPlan` and the ΔSBP runs
use its set-at-a-time frontier repairs (the relational engine through the
same numeric core), so the crossover reflects algorithmic cost rather than
Python interpretation overhead.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.sbp import SBP
from repro.datasets.kronecker_suite import kronecker_suite
from repro.datasets.synthetic_labels import (
    sample_explicit_beliefs,
    sample_explicit_nodes,
    split_for_incremental_update,
)
from repro.experiments.runner import ResultTable, timed
from repro.relational.sbp_incremental import add_explicit_beliefs_sql
from repro.relational.sbp_sql import RelationalSBP

__all__ = ["run_incremental_beliefs"]

DEFAULT_FRACTIONS = (0.01, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def run_incremental_beliefs(graph_index: int = 3, explicit_fraction: float = 0.10,
                            new_fractions: Sequence[float] = DEFAULT_FRACTIONS,
                            epsilon: float = 0.001, seed: int = 0,
                            engine: str = "relational") -> ResultTable:
    """Fig. 7e: ΔSBP update time vs full SBP recomputation.

    Parameters
    ----------
    graph_index:
        Which Kronecker workload to use (paper: graph #5).
    explicit_fraction:
        Fraction of nodes labeled after the update (paper: 10 %).
    new_fractions:
        Fractions of those labels that arrive through the update.
    engine:
        ``"relational"`` (paper's SQL setting) or ``"memory"`` for the
        NumPy implementation.
    """
    workload = kronecker_suite(max_index=graph_index, seed=seed)[graph_index - 1]
    graph = workload.graph
    coupling = workload.coupling.scaled(epsilon)
    nodes = sample_explicit_nodes(graph.num_nodes, explicit_fraction, seed=seed + 7)
    full_explicit = sample_explicit_beliefs(graph.num_nodes, 3, nodes, seed=seed + 8)
    table = ResultTable("Fig. 7e — incremental DSBP vs SBP from scratch")
    # Cost of recomputing from scratch with all labels present (constant line).
    if engine == "relational":
        _, scratch_seconds = timed(lambda: RelationalSBP(graph, coupling).run(full_explicit))
    else:
        _, scratch_seconds = timed(lambda: SBP(graph, coupling).run(full_explicit))
    for fraction in new_fractions:
        initial, update = split_for_incremental_update(full_explicit, fraction,
                                                       seed=seed + 11)
        if engine == "relational":
            runner = RelationalSBP(graph, coupling)
            runner.run(initial)
            result, delta_seconds = timed(lambda: add_explicit_beliefs_sql(runner, update))
        else:
            runner = SBP(graph, coupling)
            runner.run(initial)
            result, delta_seconds = timed(lambda: runner.add_explicit_beliefs(update))
        table.add_row(
            new_fraction=float(fraction),
            delta_sbp_seconds=delta_seconds,
            sbp_scratch_seconds=scratch_seconds,
            nodes_updated=result.extra.get("nodes_updated"),
            delta_faster=delta_seconds < scratch_seconds,
        )
    return table
