"""Experiments E3/E4 — Fig. 7a–c: scalability of BP, LinBP, SBP, ΔSBP.

The paper's timing experiments run each method for 5 iterations (SBP until
termination) on the Kronecker suite and report wall-clock times:

* **Fig. 7a** (main memory): LinBP is orders of magnitude faster than BP and
  scales nearly linearly in the number of edges.
* **Fig. 7b** (SQL/disk-bound): relational SBP is about an order of magnitude
  faster than relational LinBP; incremental ΔSBP (updating 1 ‰ of the nodes)
  is another factor faster.
* **Fig. 7c** combines both into one table (the ratios in the last columns
  are the headline numbers: "LinBP 600x faster than BP", "SBP 10x faster than
  LinBP in SQL", "ΔSBP ~2.5x faster than SBP").

:func:`run_memory_scalability` and :func:`run_relational_scalability`
reproduce the two panels; :func:`run_timing_table` joins them into Fig. 7c.
The in-memory implementations stand in for the paper's JAVA/Parallel Colt
code and the relational engine for PostgreSQL (see DESIGN.md §5).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.bp import belief_propagation
from repro.core.linbp import linbp
from repro.core.sbp import SBP
from repro.datasets.kronecker_suite import SyntheticWorkload, kronecker_suite
from repro.experiments.runner import ResultTable, timed
from repro.relational.linbp_sql import RelationalLinBP
from repro.relational.sbp_incremental import add_explicit_beliefs_sql
from repro.relational.sbp_sql import RelationalSBP

__all__ = [
    "run_memory_scalability",
    "run_relational_scalability",
    "run_timing_table",
]

#: Coupling scale used by all timing runs; well inside the convergence region
#: of every generated graph (the paper uses Lemma 9 to pick it).
DEFAULT_EPSILON = 0.001

#: Fixed iteration budget used by the paper's timing experiments.
TIMING_ITERATIONS = 5


def _workloads(max_index: int, seed: int) -> List[SyntheticWorkload]:
    return kronecker_suite(max_index=max_index, seed=seed)


def run_memory_scalability(max_index: int = 4, epsilon: float = DEFAULT_EPSILON,
                           include_bp: bool = True, seed: int = 0,
                           workloads: Optional[Sequence[SyntheticWorkload]] = None) -> ResultTable:
    """Fig. 7a: in-memory BP vs LinBP vs SBP/ΔSBP runtimes.

    Each row reports the number of edges, the wall-clock seconds for 5
    iterations of BP and of LinBP, the single sweep of SBP (through the
    engine's cached :class:`~repro.engine.sbp_plan.SBPPlan`), the
    incremental ΔSBP applying the 1 ‰ update workload, and the ratios.
    """
    table = ResultTable("Fig. 7a — main-memory scalability (5 iterations)")
    for workload in (workloads or _workloads(max_index, seed)):
        coupling = workload.coupling.scaled(epsilon)
        _, linbp_seconds = timed(lambda: linbp(workload.graph, coupling,
                                               workload.explicit,
                                               num_iterations=TIMING_ITERATIONS))
        sbp_runner = SBP(workload.graph, coupling)
        _, sbp_seconds = timed(lambda: sbp_runner.run(workload.explicit))
        # ΔSBP: apply the 1 permille update workload onto the SBP state.
        delta_result, delta_seconds = timed(
            lambda: sbp_runner.add_explicit_beliefs(workload.explicit_update))
        row: Dict[str, object] = {
            "index": workload.index,
            "nodes": workload.num_nodes,
            "edges": workload.num_edges,
            "linbp_seconds": linbp_seconds,
            "sbp_seconds": sbp_seconds,
            "delta_sbp_seconds": delta_seconds,
            "delta_nodes_updated": delta_result.extra.get("nodes_updated"),
            "linbp_over_sbp": linbp_seconds / sbp_seconds if sbp_seconds else float("inf"),
        }
        if include_bp:
            _, bp_seconds = timed(lambda: belief_propagation(
                workload.graph, coupling, workload.explicit,
                max_iterations=TIMING_ITERATIONS, tolerance=1e-300))
            row["bp_seconds"] = bp_seconds
            row["bp_over_linbp"] = bp_seconds / linbp_seconds if linbp_seconds else float("inf")
        table.add_row(**row)
    return table


def run_relational_scalability(max_index: int = 3, epsilon: float = DEFAULT_EPSILON,
                               seed: int = 0,
                               workloads: Optional[Sequence[SyntheticWorkload]] = None) -> ResultTable:
    """Fig. 7b: relational LinBP vs SBP vs ΔSBP runtimes.

    ΔSBP starts from the SBP result on the 5 % explicit beliefs and applies
    the 1 ‰ update workload through Algorithm 3.
    """
    table = ResultTable("Fig. 7b — relational (SQL-style) scalability")
    for workload in (workloads or _workloads(max_index, seed)):
        coupling = workload.coupling.scaled(epsilon)
        linbp_runner = RelationalLinBP(workload.graph, coupling)
        _, linbp_seconds = timed(lambda: linbp_runner.run(
            workload.explicit, num_iterations=TIMING_ITERATIONS))
        sbp_runner = RelationalSBP(workload.graph, coupling)
        _, sbp_seconds = timed(lambda: sbp_runner.run(workload.explicit))
        # ΔSBP: start from the already computed SBP state and add the 1 permille
        # update; the runner keeps its relations so this measures only the delta.
        _, delta_seconds = timed(lambda: add_explicit_beliefs_sql(
            sbp_runner, workload.explicit_update))
        table.add_row(
            index=workload.index,
            nodes=workload.num_nodes,
            edges=workload.num_edges,
            linbp_sql_seconds=linbp_seconds,
            sbp_sql_seconds=sbp_seconds,
            delta_sbp_sql_seconds=delta_seconds,
            linbp_over_sbp=linbp_seconds / sbp_seconds if sbp_seconds else float("inf"),
            sbp_over_delta=sbp_seconds / delta_seconds if delta_seconds else float("inf"),
        )
    return table


def run_timing_table(max_index: int = 3, epsilon: float = DEFAULT_EPSILON,
                     include_bp: bool = True, seed: int = 0) -> ResultTable:
    """Fig. 7c: the combined timing table over the largest generated graphs."""
    workloads = _workloads(max_index, seed)
    memory = run_memory_scalability(max_index=max_index, epsilon=epsilon,
                                    include_bp=include_bp, seed=seed,
                                    workloads=workloads)
    relational = run_relational_scalability(max_index=max_index, epsilon=epsilon,
                                            seed=seed, workloads=workloads)
    table = ResultTable("Fig. 7c — combined timing table")
    for memory_row, relational_row in zip(memory, relational):
        row = {
            "index": memory_row["index"],
            "nodes": memory_row["nodes"],
            "edges": memory_row["edges"],
            "bp_seconds": memory_row.get("bp_seconds"),
            "linbp_seconds": memory_row["linbp_seconds"],
            "sbp_seconds": memory_row["sbp_seconds"],
            "delta_sbp_seconds": memory_row["delta_sbp_seconds"],
            "linbp_sql_seconds": relational_row["linbp_sql_seconds"],
            "sbp_sql_seconds": relational_row["sbp_sql_seconds"],
            "delta_sbp_sql_seconds": relational_row["delta_sbp_sql_seconds"],
            "bp_over_linbp": memory_row.get("bp_over_linbp"),
            "linbp_sql_over_sbp": relational_row["linbp_over_sbp"],
            "sbp_over_delta_sbp": relational_row["sbp_over_delta"],
        }
        table.add_row(**row)
    return table
