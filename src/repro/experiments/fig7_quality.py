"""Experiments E7/E8 — Fig. 7f/7g: classification quality versus ``ε_H``.

The paper takes the top-belief assignment of standard BP as ground truth and
sweeps the coupling scale:

* **Fig. 7f**: recall and precision of LinBP with respect to BP stay above
  99.9 % throughout the convergence region (given by Lemma 9 / Lemma 8);
  degradation at very small ``ε_H`` is caused by floating-point round-off.
* **Fig. 7g**: LinBP* matches LinBP almost exactly (both produce unique top
  beliefs, so recall = precision), and SBP matches LinBP with recall ≈ 0.995 /
  precision ≈ 0.978 — the gap is caused by SBP's exact ties, which make it
  return two classes where LinBP returns one.

:func:`run_quality_sweep` reproduces both panels at once; each row holds one
``ε_H`` with the scores of LinBP vs BP, LinBP* vs LinBP and SBP vs LinBP.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bp import belief_propagation
from repro.core.convergence import max_epsilon_exact, max_epsilon_sufficient
from repro.core.linbp import linbp, linbp_star
from repro.core.sbp import sbp
from repro.datasets.kronecker_suite import kronecker_suite
from repro.experiments.runner import ResultTable
from repro.metrics.quality import precision_recall

__all__ = ["run_quality_sweep", "DEFAULT_QUALITY_EPSILONS"]

DEFAULT_QUALITY_EPSILONS = tuple(np.logspace(-6, -2.3, 8).tolist())


def run_quality_sweep(graph_index: int = 3,
                      epsilons: Sequence[float] = DEFAULT_QUALITY_EPSILONS,
                      max_iterations: int = 100, seed: int = 0,
                      bp_precision_floor: float = 1e-12) -> ResultTable:
    """Fig. 7f and Fig. 7g: precision/recall of the linearized methods.

    Scores are computed over the nodes for which the reference method makes a
    prediction (nodes unreachable from any labeled node are skipped, exactly
    like nodes missing from the SQL result relations).

    ``bp_precision_floor`` excludes nodes whose BP residual beliefs are below
    the floor: BP propagates multiplicatively around 1/k, so residuals smaller
    than ~1e-16 are pure floating-point noise.  This mirrors the paper's
    observation that quality losses at very small ``ε_H`` "result from
    roundoff errors due to limited precision of floating-point computations";
    the number of excluded nodes is reported per row.  Set the floor to 0 to
    score every reachable node regardless.
    """
    workload = kronecker_suite(max_index=graph_index, seed=seed)[graph_index - 1]
    graph = workload.graph
    explicit = workload.explicit
    base_coupling = workload.coupling
    table = ResultTable("Fig. 7f/7g — quality of LinBP/LinBP*/SBP vs BP")
    threshold_exact = max_epsilon_exact(graph, base_coupling)
    threshold_sufficient = max_epsilon_sufficient(graph, base_coupling)
    # SBP's standardized assignment is independent of epsilon, compute it once.
    sbp_result = sbp(graph, base_coupling, explicit)
    sbp_top = sbp_result.top_beliefs()
    for epsilon in epsilons:
        coupling = base_coupling.scaled(float(epsilon))
        bp_result = belief_propagation(graph, coupling, explicit,
                                       max_iterations=max_iterations)
        linbp_result = linbp(graph, coupling, explicit, max_iterations=max_iterations)
        star_result = linbp_star(graph, coupling, explicit,
                                 max_iterations=max_iterations)
        bp_top = bp_result.top_beliefs()
        linbp_top = linbp_result.top_beliefs()
        star_top = star_result.top_beliefs()
        reachable = [node for node, classes in enumerate(bp_top)
                     if classes and np.abs(bp_result.beliefs[node]).max() > bp_precision_floor]
        excluded = sum(1 for classes in bp_top if classes) - len(reachable)
        linbp_vs_bp = precision_recall(bp_top, linbp_top, restrict_to=reachable)
        reachable_lin = [node for node, classes in enumerate(linbp_top) if classes]
        star_vs_linbp = precision_recall(linbp_top, star_top, restrict_to=reachable_lin)
        sbp_vs_linbp = precision_recall(linbp_top, sbp_top, restrict_to=reachable_lin)
        table.add_row(
            epsilon=float(epsilon),
            within_sufficient_bound=float(epsilon) < threshold_sufficient,
            within_exact_bound=float(epsilon) < threshold_exact,
            nodes_below_bp_precision=excluded,
            linbp_vs_bp_recall=linbp_vs_bp.recall,
            linbp_vs_bp_precision=linbp_vs_bp.precision,
            linbp_vs_bp_f1=linbp_vs_bp.f1,
            linbp_star_vs_linbp_recall=star_vs_linbp.recall,
            linbp_star_vs_linbp_precision=star_vs_linbp.precision,
            sbp_vs_linbp_recall=sbp_vs_linbp.recall,
            sbp_vs_linbp_precision=sbp_vs_linbp.precision,
            sbp_vs_linbp_f1=sbp_vs_linbp.f1,
        )
    return table
