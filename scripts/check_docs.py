#!/usr/bin/env python3
"""Doc health checks: quickstart, links, API and metric-catalog coverage.

Four checks, all also enforced by the test suite (``tests/test_docs.py``):

1. **Quickstart doctest** — every fenced ````python`` block in ``README.md``
   is executed, in order, in one shared namespace (later blocks may build on
   earlier ones, exactly as a reader would type them).  Any exception fails
   the check, so the README can never drift from the actual API.
2. **Link check** — every relative Markdown link in ``README.md`` and
   ``docs/*.md`` must point at an existing file or directory inside the
   repository (anchors are stripped; ``http(s)``/``mailto`` links are
   ignored).
3. **Public-API coverage** — every name exported by
   ``repro.service.__all__`` must appear in ``docs/api.md``, so the
   reference can never silently fall behind the package's public surface.
4. **Metric-catalog accuracy** — every ``repro_…`` metric name written in
   ``docs/observability.md`` must exist in the live registries (the
   process-wide default registry plus a ``PropagationService`` instance's
   always-on registry), so the catalog can never document a metric that
   was renamed or removed.

Run with::

    PYTHONPATH=src python scripts/check_docs.py [repo_root]

Exit status 0 when everything passes, 1 otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import List, Tuple

FENCE_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)
# [text](target) — excluding images is unnecessary; image targets must exist too.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def python_blocks(markdown_path: Path) -> List[str]:
    """All fenced ```python code blocks of a Markdown file, in order."""
    return FENCE_PATTERN.findall(markdown_path.read_text(encoding="utf-8"))


def run_quickstart(root: Path) -> List[str]:
    """Execute the README's python blocks cumulatively; return error messages."""
    readme = root / "README.md"
    if not readme.exists():
        return [f"{readme} is missing"]
    blocks = python_blocks(readme)
    if not blocks:
        return [f"{readme} contains no ```python quickstart block"]
    namespace: dict = {"__name__": "__readme__"}
    errors = []
    for index, block in enumerate(blocks, start=1):
        try:
            exec(compile(block, f"README.md:block{index}", "exec"), namespace)
        except Exception as exc:  # noqa: BLE001 - report any failure
            errors.append(f"README.md python block #{index} failed: "
                          f"{type(exc).__name__}: {exc}")
            break
    return errors


def doc_files(root: Path) -> List[Path]:
    files = [root / "README.md"]
    files.extend(sorted((root / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """All (file, target) pairs whose relative link target does not exist."""
    broken = []
    for markdown_path in doc_files(root):
        text = markdown_path.read_text(encoding="utf-8")
        # Don't treat link-looking strings inside code fences as links.
        text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
        for target in LINK_PATTERN.findall(text):
            if target.startswith(EXTERNAL_SCHEMES) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (markdown_path.parent / relative).resolve()
            if not resolved.exists():
                broken.append((markdown_path.relative_to(root), target))
    return broken


def undocumented_service_api(root: Path) -> List[str]:
    """Names in ``repro.service.__all__`` that ``docs/api.md`` never mentions."""
    api_doc = root / "docs" / "api.md"
    if not api_doc.exists():
        return ["docs/api.md is missing"]
    source = str(root / "src")
    if source not in sys.path:
        sys.path.insert(0, source)
    import repro.service as service_module

    text = api_doc.read_text(encoding="utf-8")
    return [f"repro.service.{name} is not documented in docs/api.md"
            for name in service_module.__all__ if name not in text]


METRIC_NAME_PATTERN = re.compile(r"`(repro_[a-z0-9_]+)`")


def unknown_catalog_metrics(root: Path) -> List[str]:
    """Metric names in ``docs/observability.md`` missing from the registries."""
    obs_doc = root / "docs" / "observability.md"
    if not obs_doc.exists():
        return ["docs/observability.md is missing"]
    source = str(root / "src")
    if source not in sys.path:
        sys.path.insert(0, source)
    # Importing the packages registers every module-level metric on the
    # default registry; the service's always-on registry needs an instance.
    import repro.engine  # noqa: F401
    import repro.shard  # noqa: F401
    from repro.obs import iter_registries
    from repro.service import PropagationService

    service = PropagationService()
    known = set()
    for registry in iter_registries(service.registry):
        known.update(registry.names())
    documented = set(METRIC_NAME_PATTERN.findall(
        obs_doc.read_text(encoding="utf-8")))
    return [f"docs/observability.md names metric {name!r}, which no "
            f"registry defines"
            for name in sorted(documented - known)]


def main(argv: List[str] | None = None) -> int:
    arguments = list(sys.argv[1:]) if argv is None else list(argv)
    root = Path(arguments[0]).resolve() if arguments else repo_root()
    failures = 0
    errors = run_quickstart(root)
    if errors:
        failures += len(errors)
        for error in errors:
            print(f"FAIL {error}")
    else:
        print("ok   README quickstart blocks run cleanly")
    dangling = broken_links(root)
    if dangling:
        failures += len(dangling)
        for markdown_path, target in dangling:
            print(f"FAIL broken link in {markdown_path}: ({target})")
    else:
        print("ok   all intra-repo doc links resolve")
    missing = undocumented_service_api(root)
    if missing:
        failures += len(missing)
        for message in missing:
            print(f"FAIL {message}")
    else:
        print("ok   every repro.service public name is documented in "
              "docs/api.md")
    unknown = unknown_catalog_metrics(root)
    if unknown:
        failures += len(unknown)
        for message in unknown:
            print(f"FAIL {message}")
    else:
        print("ok   every metric in docs/observability.md exists in the "
              "registries")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
