#!/usr/bin/env python3
"""Record and compare kernel benchmark baselines (``BENCH_sbp.json``).

The benchmark harness under ``benchmarks/`` asserts *relative* claims
(batched ≥ 2× sequential, vectorised ≥ 5× the reference loops) but keeps
no memory of absolute kernel cost, so a slow regression that preserves
the ratios goes unnoticed.  This script closes that gap:

* ``--record`` runs the benchmark targets through pytest-benchmark,
  extracts the per-kernel minimum wall-clock times, and writes them to a
  baseline file (default ``BENCH_sbp.json`` at the repository root);
* without ``--record`` (or with the explicit ``--compare``) it re-runs
  the same targets and **fails with a clear per-kernel diff** when any
  recorded kernel got slower than the allowed threshold (default: 20 %
  over baseline);
* ``--smoke`` shrinks every workload (``REPRO_BENCH_SMOKE=1`` plus
  ``--bench-max-index 1``) and **skips the absolute-baseline diff**: on
  shared CI runners only the benchmarks' own *ratio* assertions (batched
  ≥ Nx sequential, coalesced ≥ Nx one-at-a-time) are trustworthy, so the
  smoke gate is "the ratio benchmarks pass at small sizes", nothing
  machine-dependent;
* ``--suite`` selects the benchmark suite.  Suites live in a single
  registry (:func:`register_suite`): each registration names its pytest
  targets, its committed baseline file, and a one-line description —
  and the ``--suite`` help text, the ``all`` expansion and the
  unknown-suite error all derive from that registry, so a suite cannot
  be half-registered.  ``--suite all`` runs every suite in sequence; an
  unknown suite name exits non-zero listing the valid choices.

A missing, malformed or incomplete baseline fails *before* the
benchmark run with a non-zero exit and an actionable message.

Typical usage::

    PYTHONPATH=src python scripts/bench_record.py --record   # refresh baseline
    PYTHONPATH=src python scripts/bench_record.py            # regression gate
    PYTHONPATH=src python scripts/bench_record.py --compare --smoke  # CI gate

Baselines are machine-dependent; re-record whenever the benchmark host
changes.  The default targets are the engine kernel benchmarks (the SBP
engine, the batched LinBP engine and the propagation service) — pass
explicit pytest targets to cover more of the suite.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Dict, List

#: Pseudo-suite: run every registered suite in sequence.
ALL_SUITES = "all"

#: The single suite registry: ``--suite`` resolution, the ``all``
#: expansion, the help text and the unknown-suite error all read from
#: here, so registering a suite *is* wiring it everywhere.
SUITES: Dict[str, dict] = {}


def register_suite(name: str, targets: List[str], baseline: str,
                   description: str) -> None:
    """Register one benchmark suite (targets + committed baseline file).

    Every suite must come through here — tests assert that each
    ``BENCH_*.json`` at the repository root belongs to exactly one
    registered suite and that every target file exists, so a forgotten
    or half-done registration is a test failure, not a silent omission.
    """
    if name == ALL_SUITES:
        raise ValueError(f"{ALL_SUITES!r} is the run-everything "
                         "pseudo-suite; pick another name")
    if name in SUITES:
        raise ValueError(f"benchmark suite {name!r} is already registered")
    if not targets or not baseline or not description:
        raise ValueError(f"suite {name!r} needs targets, a baseline file "
                         "and a description")
    SUITES[name] = {"targets": list(targets), "baseline": baseline,
                    "description": description}


register_suite(
    "engine",
    ["benchmarks/test_bench_sbp_engine.py",
     "benchmarks/test_bench_engine_batch.py",
     "benchmarks/test_bench_service.py"],
    "BENCH_sbp.json",
    "SBP/batched-LinBP/service kernels (the historical default)")
register_suite(
    "shard",
    ["benchmarks/test_bench_shard.py"],
    "BENCH_shard.json",
    "sharded propagation (timings depend on core count)")
register_suite(
    "sql",
    ["benchmarks/test_bench_sql_backend.py"],
    "BENCH_sql.json",
    "SQL execution backends (timings depend on the linked SQLite)")
register_suite(
    "precision",
    ["benchmarks/test_bench_precision.py"],
    "BENCH_precision.json",
    "mixed-precision kernels (float32 vs float64 SpMM throughput)")
register_suite(
    "stream",
    ["benchmarks/test_bench_stream.py"],
    "BENCH_stream.json",
    "streaming mixed update/query traffic with a p99 gate")
register_suite(
    "obs",
    ["benchmarks/test_bench_obs.py"],
    "BENCH_obs.json",
    "telemetry overhead (<5% over REPRO_OBS_DISABLED)")
register_suite(
    "tune",
    ["benchmarks/test_bench_tune.py"],
    "BENCH_tune.json",
    "ablation/autotune sweeps (determinism + no-worse-than-default "
    "gates)")

DEFAULT_SUITE = "engine"
DEFAULT_TARGETS = SUITES[DEFAULT_SUITE]["targets"]
DEFAULT_BASELINE = SUITES[DEFAULT_SUITE]["baseline"]


def suite_help() -> str:
    """The ``--suite`` help text, derived from the registry."""
    lines = "; ".join(
        f"'{name}' -> {suite['baseline']} ({suite['description']})"
        for name, suite in sorted(SUITES.items()))
    return (f"benchmark suite: default targets and baseline file "
            f"({lines}), or '{ALL_SUITES}' to run every suite in "
            f"sequence")
DEFAULT_THRESHOLD = 0.20
#: Absolute slowdown (seconds) a kernel must additionally exceed before the
#: percentage gate fails it — scheduler jitter routinely exceeds 20% on
#: sub-millisecond kernels, so tiny kernels are reported but never fatal.
DEFAULT_MIN_DELTA = 0.002


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def run_benchmarks(root: Path, targets: List[str],
                   smoke: bool = False) -> Dict[str, float]:
    """Run the pytest-benchmark targets; return kernel -> min seconds."""
    with tempfile.TemporaryDirectory() as scratch:
        json_path = Path(scratch) / "bench.json"
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = src + (os.pathsep + env["PYTHONPATH"]
                                   if env.get("PYTHONPATH") else "")
        command = [sys.executable, "-m", "pytest", *targets, "-q",
                   f"--benchmark-json={json_path}"]
        if smoke:
            env["REPRO_BENCH_SMOKE"] = "1"
            command += ["--bench-max-index", "1"]
        completed = subprocess.run(command, cwd=root, env=env)
        if completed.returncode != 0:
            raise SystemExit(f"benchmark run failed (exit {completed.returncode}); "
                             "fix the benchmarks before recording/comparing")
        payload = json.loads(json_path.read_text(encoding="utf-8"))
    kernels: Dict[str, float] = {}
    for record in payload.get("benchmarks", []):
        kernels[record["name"]] = float(record["stats"]["min"])
    if not kernels:
        raise SystemExit("no benchmark records produced - wrong targets?")
    return kernels


def record(baseline_path: Path, kernels: Dict[str, float],
           threshold: float, min_delta: float, targets: List[str]) -> None:
    baseline = {
        "comment": "Kernel benchmark baseline recorded by scripts/bench_record.py; "
                   "min wall-clock seconds per benchmark (machine-dependent - "
                   "re-record with --record when the benchmark host changes).",
        "threshold": threshold,
        "min_delta_seconds": min_delta,
        "targets": targets,
        "kernels": {name: {"min_seconds": seconds}
                    for name, seconds in sorted(kernels.items())},
    }
    baseline_path.write_text(json.dumps(baseline, indent=2) + "\n",
                             encoding="utf-8")
    print(f"recorded {len(kernels)} kernel baselines to {baseline_path}")
    for name, seconds in sorted(kernels.items()):
        print(f"  {name}: {seconds * 1e3:.3f} ms")


def load_baseline(baseline_path: Path) -> dict:
    """Load and validate a baseline file, exiting non-zero on any defect.

    Called *before* the (slow) benchmark run so a missing or malformed
    baseline fails immediately with an actionable message instead of a
    raw ``KeyError`` after minutes of benchmarking.
    """
    if not baseline_path.exists():
        raise SystemExit(f"{baseline_path} does not exist - run with --record "
                         "first to establish a baseline")
    try:
        baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise SystemExit(f"{baseline_path} is not valid JSON ({error}); "
                         "re-record it with --record")
    if not isinstance(baseline, dict):
        raise SystemExit(f"{baseline_path} must contain a JSON object, "
                         f"got {type(baseline).__name__}; re-record it "
                         "with --record")
    kernels = baseline.get("kernels")
    if not isinstance(kernels, dict) or not kernels:
        raise SystemExit(f"{baseline_path} has no 'kernels' table - it is "
                         "not a bench_record baseline; re-record it with "
                         "--record")
    for name, entry in kernels.items():
        if not isinstance(entry, dict) or "min_seconds" not in entry:
            raise SystemExit(f"{baseline_path}: kernel {name!r} has no "
                             "'min_seconds' entry; re-record the baseline "
                             "with --record")
        try:
            float(entry["min_seconds"])
        except (TypeError, ValueError):
            raise SystemExit(f"{baseline_path}: kernel {name!r} has a "
                             f"non-numeric min_seconds "
                             f"({entry['min_seconds']!r}); re-record the "
                             "baseline with --record")
    return baseline


def compare(baseline: dict, kernels: Dict[str, float],
            threshold_override: float | None = None,
            min_delta_override: float | None = None) -> int:
    threshold = threshold_override if threshold_override is not None \
        else float(baseline.get("threshold", DEFAULT_THRESHOLD))
    min_delta = min_delta_override if min_delta_override is not None \
        else float(baseline.get("min_delta_seconds", DEFAULT_MIN_DELTA))
    recorded: Dict[str, Dict[str, float]] = baseline["kernels"]
    failures = 0
    print(f"comparing {len(recorded)} recorded kernels "
          f"(regression threshold: +{threshold:.0%}, "
          f"noise floor: {min_delta * 1e3:.1f} ms)")
    for name, entry in sorted(recorded.items()):
        old = float(entry["min_seconds"])
        if name not in kernels:
            failures += 1
            print(f"FAIL {name}: recorded in baseline but missing from the "
                  "current run (renamed or deleted? re-record if intended)")
            continue
        new = kernels[name]
        ratio = new / old if old else float("inf")
        regressed = ratio > 1.0 + threshold and new - old > min_delta
        noisy = ratio > 1.0 + threshold and not regressed
        verdict = "FAIL" if regressed else "ok  "
        if regressed:
            failures += 1
        suffix = " [within noise floor]" if noisy else ""
        print(f"{verdict} {name}: baseline {old * 1e3:.3f} ms, "
              f"now {new * 1e3:.3f} ms ({ratio:.2f}x){suffix}")
    for name in sorted(set(kernels) - set(recorded)):
        print(f"note {name}: not in the baseline (new kernel; "
              "run --record to start tracking it)")
    if failures:
        print(f"\n{failures} kernel(s) regressed beyond +{threshold:.0%}; "
              "optimise or re-record the baseline with --record if the "
              "slowdown is intended")
        return 1
    print("\nall recorded kernels within the regression threshold")
    return 0


def resolve_suites(name: str) -> List[str]:
    """Map a ``--suite`` value to suite names, exiting non-zero when unknown.

    ``all`` expands to every registered suite; anything else must name a
    suite exactly.  The error message lists the valid choices so a typo'd
    CI configuration fails with the fix in hand.
    """
    if name == ALL_SUITES:
        return sorted(SUITES)
    if name not in SUITES:
        valid = ", ".join(sorted(SUITES))
        raise SystemExit(f"unknown benchmark suite {name!r}; valid suites: "
                         f"{valid} (or '{ALL_SUITES}' to run every suite)")
    return [name]


def run_suite(arguments: argparse.Namespace, root: Path, name: str) -> int:
    """Record or compare one suite; return a process-style exit code."""
    suite = SUITES[name]
    baseline_path = Path(arguments.baseline if arguments.baseline is not None
                         else suite["baseline"])
    if not baseline_path.is_absolute():
        baseline_path = root / baseline_path
    baseline = None
    if not arguments.record and not arguments.smoke:
        # Validate the baseline *before* the slow benchmark run: a
        # missing file or malformed table exits non-zero right here.
        baseline = load_baseline(baseline_path)
    targets = list(arguments.targets)
    if not targets:
        targets = list(suite["targets"])
        if baseline is not None:
            # Compare against exactly what the baseline recorded, so a
            # baseline taken over custom targets is not spuriously failed
            # for kernels the default targets never run.
            recorded_targets = baseline.get("targets")
            if recorded_targets:
                targets = list(recorded_targets)
    kernels = run_benchmarks(root, targets, smoke=arguments.smoke)
    if arguments.smoke:
        print(f"smoke mode: {len(kernels)} benchmark(s) passed their "
              "ratio assertions at smoke sizes; absolute kernel baselines "
              "skipped (not meaningful on shared runners)")
        return 0
    if arguments.record:
        record(baseline_path, kernels,
               arguments.threshold if arguments.threshold is not None
               else DEFAULT_THRESHOLD,
               arguments.min_delta if arguments.min_delta is not None
               else DEFAULT_MIN_DELTA,
               targets)
        return 0
    return compare(baseline, kernels,
                   threshold_override=arguments.threshold,
                   min_delta_override=arguments.min_delta)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--record", action="store_true",
                        help="write a fresh baseline instead of comparing")
    parser.add_argument("--compare", action="store_true",
                        help="compare against the baseline (the default "
                             "mode; the flag exists so CI invocations are "
                             "explicit)")
    parser.add_argument("--smoke", action="store_true",
                        help="shrink every workload (REPRO_BENCH_SMOKE=1, "
                             "--bench-max-index 1) and gate only on the "
                             "benchmarks' ratio assertions - no absolute "
                             "baselines (for shared CI runners)")
    parser.add_argument("--suite", default=DEFAULT_SUITE,
                        help=suite_help())
    parser.add_argument("--baseline", default=None,
                        help="baseline file path (default: the suite's "
                             f"baseline, e.g. {DEFAULT_BASELINE})")
    parser.add_argument("--threshold", type=float, default=None,
                        help="allowed slowdown fraction (default: 0.20 = 20%% "
                             "when recording; the baseline's recorded value "
                             "when comparing, unless overridden here)")
    parser.add_argument("--min-delta", type=float, default=None,
                        help="absolute slowdown in seconds a kernel must "
                             "also exceed to fail the gate (default: 0.002 "
                             "when recording; the baseline's recorded value "
                             "when comparing, unless overridden here)")
    parser.add_argument("targets", nargs="*", default=None,
                        help="pytest benchmark targets "
                             f"(default: {' '.join(DEFAULT_TARGETS)})")
    arguments = parser.parse_args(argv)
    if arguments.record and arguments.compare:
        parser.error("--record and --compare are mutually exclusive")
    if arguments.record and arguments.smoke:
        parser.error("--smoke baselines would be meaningless - record on a "
                     "quiet host at full size instead")
    suite_names = resolve_suites(arguments.suite)
    if len(suite_names) > 1 and (arguments.baseline or arguments.targets):
        parser.error("--suite all uses each suite's own baseline and "
                     "targets; drop --baseline and positional targets")
    root = repo_root()
    exit_code = 0
    for name in suite_names:
        if len(suite_names) > 1:
            print(f"=== suite: {name} ===")
        exit_code = max(exit_code, run_suite(arguments, root, name))
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
