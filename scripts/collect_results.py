#!/usr/bin/env python3
"""Regenerate every experiment table and write them to results/ as text files.

This is the script behind EXPERIMENTS.md: it runs each experiment module at
the default (laptop-scale) settings and stores the resulting tables so the
measured numbers can be compared against the ones reported in the paper.

Run with::

    python scripts/collect_results.py [output_directory]
"""

from __future__ import annotations
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments import (
    run_bound_comparison,
    run_dataset_table,
    run_dblp_quality,
    run_explicit_fraction_sweep,
    run_incremental_beliefs,
    run_incremental_edges,
    run_memory_scalability,
    run_per_iteration_timing,
    run_quality_sweep,
    run_relational_scalability,
    run_timing_table,
    run_torus_sweep,
    torus_reference_values,
)


def main() -> None:
    output_directory = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("results")
    output_directory.mkdir(parents=True, exist_ok=True)
    jobs = [
        ("example20_reference", lambda: _reference_table()),
        ("fig4_torus", lambda: run_torus_sweep(
            epsilons=np.round(np.logspace(np.log10(0.01), np.log10(0.6), 8), 4))),
        ("fig6a_datasets", lambda: run_dataset_table(max_index=4)),
        ("fig7a_memory", lambda: run_memory_scalability(max_index=4)),
        ("fig7b_relational", lambda: run_relational_scalability(max_index=3)),
        ("fig7c_combined", lambda: run_timing_table(max_index=3)),
        ("fig7d_periteration", lambda: run_per_iteration_timing(graph_index=3)),
        ("fig7e_incremental_beliefs", lambda: run_incremental_beliefs(
            graph_index=3, engine="memory")),
        ("fig7fg_quality", lambda: run_quality_sweep(graph_index=3)),
        ("fig10a_explicit_fraction", lambda: run_explicit_fraction_sweep(graph_index=3)),
        ("fig10b_incremental_edges", lambda: run_incremental_edges(
            graph_index=3, engine="memory")),
        ("fig11_dblp", lambda: run_dblp_quality(num_papers=1200)),
        ("appendix_g_bounds", lambda: run_bound_comparison(max_index=3)),
    ]
    for name, job in jobs:
        start = time.perf_counter()
        table = job()
        elapsed = time.perf_counter() - start
        path = output_directory / f"{name}.txt"
        path.write_text(table.to_text() + f"\n\n(generated in {elapsed:.1f}s)\n")
        print(f"wrote {path} ({elapsed:.1f}s)")


def _reference_table():
    from repro.experiments.runner import ResultTable

    reference = torus_reference_values()
    table = ResultTable("Example 20 reference quantities (paper vs measured)")
    paper = {
        "rho_adjacency": 2.414,
        "rho_coupling_unscaled": 0.629,
        "exact_threshold_linbp": 0.488,
        "exact_threshold_linbp_star": 0.658,
        "sufficient_threshold_linbp": 0.360,
        "sufficient_threshold_linbp_star": 0.455,
        "sigma_slope": 0.332,
    }
    for key, paper_value in paper.items():
        table.add_row(quantity=key, paper=paper_value,
                      measured=round(float(reference[key]), 4))
    table.add_row(quantity="sbp_standardized_v4",
                  paper="[-0.069, 1.258, -1.189]",
                  measured=str(np.round(reference["sbp_standardized_v4"], 3).tolist()))
    return table


if __name__ == "__main__":
    main()
