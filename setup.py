"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists only so
that ``pip install -e .`` also works in offline environments where pip cannot
create an isolated build environment (legacy editable installs go through
``setup.py develop`` and need no network access).
"""

from setuptools import setup

setup()
