"""Coordinate descent and the serving-config artifact it emits."""

from __future__ import annotations

import json

import pytest

from repro.coupling import synthetic_residual_matrix
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.service import PropagationService
from repro.tune import (
    ARTIFACT_KIND,
    ARTIFACT_VERSION,
    QUERY_KEYS,
    SERVICE_KEYS,
    AblationRunner,
    RunMetrics,
    config_id,
    make_artifact,
    make_mixed_workload,
    select_config,
    service_config_space,
)


@pytest.fixture(scope="module")
def workload():
    graph = random_graph(80, 0.08, seed=7)
    coupling = synthetic_residual_matrix(epsilon=0.005)
    return make_mixed_workload(graph, coupling, seed=0, num_clients=4,
                               requests_per_client=3, max_iterations=20)


def _metrics(p99, throughput):
    return RunMetrics(
        requests=12, queries=11, updates=1, elapsed_seconds=0.12,
        throughput_rps=throughput, p50_seconds=p99 / 2, p99_seconds=p99,
        query_p99_seconds=p99, cache_hits=5, cache_misses=6,
        cache_hit_rate=0.45, sweeps=30, plan_builds=1,
        repairs_incremental=0, repairs_full=0, stale_hits=1,
        coalesced_batches=4)


def _window_measure(workload, config):
    """Smaller windows are strictly better; everything else is neutral."""
    penalty = 1.0 + float(config["window_ms"]) / 10.0
    return _metrics(p99=0.010 * penalty, throughput=100.0 / penalty)


def _flat_measure(workload, config):
    return _metrics(p99=0.010, throughput=100.0)


def _tradeoff_measure(workload, config):
    """max_batch=32 trades p99 up for throughput — never a dominator."""
    if config["max_batch"] == 32:
        return _metrics(p99=0.020, throughput=150.0)
    return _metrics(p99=0.010, throughput=100.0)


class TestSelectConfig:
    def test_descends_to_the_dominating_value(self, workload):
        runner = AblationRunner(workload, measure=_window_measure)
        selection = select_config(runner, rounds=2, margin=0.02)
        assert selection.improved
        assert selection.config["window_ms"] == 0.0
        # Only the rewarded knob moved off the default.
        default = service_config_space().default_config()
        changed = {key for key in selection.config
                   if selection.config[key] != default[key]}
        assert changed == {"window_ms"}
        assert selection.run_id == config_id(selection.config)

    def test_selected_weakly_dominates_baseline(self, workload):
        runner = AblationRunner(workload, measure=_window_measure)
        selection = select_config(runner, rounds=2, margin=0.02)
        assert selection.selected.metrics.p99_seconds \
            <= selection.baseline.metrics.p99_seconds
        assert selection.selected.metrics.throughput_rps \
            >= selection.baseline.metrics.throughput_rps

    def test_flat_landscape_keeps_the_default(self, workload):
        runner = AblationRunner(workload, measure=_flat_measure)
        selection = select_config(runner, rounds=2, margin=0.02)
        assert not selection.improved
        assert selection.config == service_config_space().default_config()
        assert selection.selected.run_id == selection.baseline.run_id

    def test_pareto_rule_rejects_latency_for_throughput_trades(
            self, workload):
        runner = AblationRunner(workload, measure=_tradeoff_measure)
        selection = select_config(runner, rounds=2, margin=0.02)
        assert not selection.improved
        rejected = [entry for entry in selection.trace
                    if entry["parameter"] == "max_batch"
                    and entry["value"] == 32]
        assert rejected and all("p99 regressed" in entry["reason"]
                                for entry in rejected)

    def test_margin_suppresses_noise_sized_wins(self, workload):
        # The best window gain is ~16.7% relative p99; a 50% margin
        # makes every move sub-threshold.
        runner = AblationRunner(workload, measure=_window_measure)
        selection = select_config(runner, rounds=2, margin=0.5)
        assert not selection.improved
        below = [entry for entry in selection.trace
                 if entry.get("reason", "").startswith(
                     "improvement below margin")]
        assert below

    def test_trace_records_every_evaluation(self, workload):
        runner = AblationRunner(workload, measure=_window_measure)
        selection = select_config(runner, rounds=1, margin=0.02)
        statuses = {entry["status"] for entry in selection.trace}
        assert "skipped" in statuses  # sharded moves on an 80-node graph
        accepted = [entry for entry in selection.trace
                    if entry["accepted"]]
        assert accepted and accepted[0]["parameter"] == "window_ms"
        for entry in selection.trace:
            assert {"round", "parameter", "value", "run_id",
                    "status", "accepted"} <= set(entry)

    def test_determinism_same_measure_same_selection(self, workload):
        first = select_config(
            AblationRunner(workload, measure=_window_measure),
            rounds=2, margin=0.02)
        second = select_config(
            AblationRunner(workload, measure=_window_measure),
            rounds=2, margin=0.02)
        assert first.config == second.config
        assert first.run_id == second.run_id
        assert first.trace == second.trace

    def test_validates_arguments_and_baseline(self, workload):
        runner = AblationRunner(workload, measure=_window_measure)
        with pytest.raises(ValidationError, match="rounds"):
            select_config(runner, rounds=0)
        with pytest.raises(ValidationError, match="margin"):
            select_config(runner, margin=-0.1)

        def broken(workload, config):
            raise RuntimeError("no baseline for you")

        with pytest.raises(ValidationError, match="failed to measure"):
            select_config(AblationRunner(workload, measure=broken))


class TestArtifact:
    def test_artifact_shape_and_provenance(self, workload):
        runner = AblationRunner(workload, measure=_window_measure)
        selection = select_config(runner, rounds=1, margin=0.02)
        artifact = selection.artifact(graph_name="web", workload="demo")
        assert artifact["version"] == ARTIFACT_VERSION
        assert artifact["kind"] == ARTIFACT_KIND
        assert sorted(artifact["service"]) == sorted(SERVICE_KEYS)
        assert sorted(artifact["query"]) == sorted(QUERY_KEYS)
        meta = artifact["meta"]
        assert meta["graph_name"] == "web"
        assert meta["workload"] == "demo"
        assert meta["run_id"] == selection.run_id
        assert meta["baseline"]["run_id"] == selection.baseline.run_id
        json.dumps(artifact)  # artifacts are written to disk as JSON

    def test_artifact_round_trips_through_from_config(self, workload):
        runner = AblationRunner(workload, measure=_window_measure)
        selection = select_config(runner, rounds=1, margin=0.02)
        service = PropagationService.from_config(selection.artifact())
        try:
            assert service.default_spec is not None
            assert service.default_spec.tolerance == \
                selection.config["tolerance"]
            assert service.batcher.window_seconds == pytest.approx(
                selection.config["window_ms"] / 1000.0)
        finally:
            service.close()

    def test_rejects_incomplete_configs(self):
        partial = service_config_space().default_config()
        partial.pop("tolerance")
        with pytest.raises(ValidationError, match="missing parameters"):
            make_artifact(partial)
