"""The ablation report: deltas, ranking, schema, rendering."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ValidationError
from repro.tune import (
    REPORT_SCHEMA_VERSION,
    RunMetrics,
    RunRecord,
    build_report,
    render_report,
)


def _metrics(p99=0.010, throughput=100.0, cache_hit_rate=0.5, sweeps=40):
    return RunMetrics(
        requests=24, queries=21, updates=3, elapsed_seconds=0.24,
        throughput_rps=throughput, p50_seconds=p99 / 2, p99_seconds=p99,
        query_p99_seconds=p99, cache_hits=10, cache_misses=11,
        cache_hit_rate=cache_hit_rate, sweeps=sweeps, plan_builds=1,
        repairs_incremental=0, repairs_full=0, stale_hits=2,
        coalesced_batches=5)


def _ok(run_id, **metric_overrides):
    return RunRecord(run_id=run_id, config={"knob": run_id}, status="ok",
                     metrics=_metrics(**metric_overrides))


def _skipped(run_id, reason):
    return RunRecord(run_id=run_id, config={"knob": run_id},
                     status="skipped", error=reason)


@pytest.fixture
def sweep():
    baseline = _ok("run-base")
    runs = [
        # window_ms: one value doubles p99 → importance 1.0.
        ("window_ms", 0.0, _ok("run-w0", p99=0.020)),
        ("window_ms", 5.0, _ok("run-w5", p99=0.011)),
        # max_batch: mild throughput change → importance 0.05.
        ("max_batch", 4, _ok("run-b4", throughput=105.0)),
        # shard_method: gated out entirely → importance None.
        ("shard_method", "hash",
         _skipped("run-sm", "only meaningful when shards > 1")),
        # dtype: one failed, one measured → importance from the survivor.
        ("dtype", "float32",
         RunRecord(run_id="run-f32", config={"knob": "f32"},
                   status="failed", error="Traceback: boom")),
    ]
    return baseline, runs


class TestBuildReport:
    def test_requires_a_measured_baseline(self):
        bad = _skipped("run-base", "gate said no")
        with pytest.raises(ValidationError,
                           match="without a measured baseline"):
            build_report(bad, [])
        assert "gate said no" not in repr(build_report)  # sanity: no crash

    def test_deltas_are_signed_relative_changes(self, sweep):
        baseline, runs = sweep
        report = build_report(baseline, runs)
        by_name = {name: variants
                   for name, _, variants in report.parameters}
        doubled = by_name["window_ms"][0]
        assert doubled.value == 0.0
        assert doubled.deltas["p99_seconds"] == pytest.approx(1.0)
        assert doubled.deltas["throughput_rps"] == pytest.approx(0.0)
        assert doubled.score == pytest.approx(1.0)

    def test_importance_is_max_headline_change(self, sweep):
        baseline, runs = sweep
        report = build_report(baseline, runs)
        importance = {name: value
                      for name, value, _ in report.parameters}
        assert importance["window_ms"] == pytest.approx(1.0)
        assert importance["max_batch"] == pytest.approx(0.05)
        assert importance["shard_method"] is None
        assert importance["dtype"] is None  # only a failed variant

    def test_ranking_measured_first_then_alphabetical(self, sweep):
        baseline, runs = sweep
        report = build_report(baseline, runs)
        assert report.ranking() == [
            "window_ms", "max_batch", "dtype", "shard_method"]

    def test_skipped_and_failed_rows_are_carried_with_reasons(self, sweep):
        baseline, runs = sweep
        report = build_report(baseline, runs)
        document = report.as_dict()
        rows = {variant["run_id"]: variant
                for parameter in document["parameters"]
                for variant in parameter["variants"]}
        assert rows["run-sm"]["status"] == "skipped"
        assert "shards > 1" in rows["run-sm"]["error"]
        assert rows["run-sm"]["deltas"] is None
        assert rows["run-f32"]["status"] == "failed"
        assert "boom" in rows["run-f32"]["error"]

    def test_schema_versioned_and_json_serialisable(self, sweep):
        baseline, runs = sweep
        document = build_report(baseline, runs, workload="w").as_dict()
        assert document["version"] == REPORT_SCHEMA_VERSION
        assert document["kind"] == "repro-ablation-report"
        assert document["workload"] == "w"
        assert document["baseline"]["run_id"] == "run-base"
        json.dumps(document)  # must round-trip to JSON as-is

    def test_identical_sweeps_render_identical_reports(self, sweep):
        baseline, runs = sweep
        first = build_report(baseline, runs, workload="w")
        second = build_report(baseline, runs, workload="w")
        assert first.as_dict() == second.as_dict()
        assert first.render() == second.render()

    def test_equal_importance_breaks_ties_by_name(self):
        baseline = _ok("run-base")
        runs = [("zeta", 1, _ok("run-z", p99=0.012)),
                ("alpha", 1, _ok("run-a", p99=0.012))]
        report = build_report(baseline, runs)
        assert report.ranking() == ["alpha", "zeta"]


class TestRender:
    def test_render_shows_baseline_ranking_and_reasons(self, sweep):
        baseline, runs = sweep
        text = render_report(build_report(baseline, runs, workload="demo"))
        assert "Ablation report — demo" in text
        assert "baseline run-base" in text
        assert "p99 10.00ms" in text
        lines = text.splitlines()
        rank_rows = [line for line in lines
                     if line.strip() and line.split()[0].isdigit()]
        assert rank_rows[0].split()[1] == "window_ms"
        assert "+100.0%" in text           # the doubled-p99 delta
        assert "only meaningful when shards > 1" in text
        assert "failed: Traceback: boom" in text
