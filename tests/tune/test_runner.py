"""The ablation runner: isolation, timeouts, memoisation, registry reads."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.coupling import synthetic_residual_matrix
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.tune import (
    AblationRunner,
    RunMetrics,
    Workload,
    config_id,
    make_engine_workload,
    make_mixed_workload,
    measure_config,
    service_config_space,
)


@pytest.fixture(scope="module")
def workload():
    graph = random_graph(80, 0.08, seed=7)
    coupling = synthetic_residual_matrix(epsilon=0.005)
    return make_mixed_workload(graph, coupling, seed=0, num_clients=4,
                               requests_per_client=3, max_iterations=20)


def _fake_metrics(p99=0.01, throughput=100.0):
    return RunMetrics(
        requests=10, queries=9, updates=1, elapsed_seconds=0.1,
        throughput_rps=throughput, p50_seconds=p99 / 2, p99_seconds=p99,
        query_p99_seconds=p99, cache_hits=3, cache_misses=6,
        cache_hit_rate=0.33, sweeps=12, plan_builds=1,
        repairs_incremental=0, repairs_full=0, stale_hits=0,
        coalesced_batches=2)


def _deterministic_measure(workload, config):
    """A pure function of the config: slower with bigger windows."""
    penalty = 1.0 + float(config["window_ms"]) / 10.0
    return _fake_metrics(p99=0.01 * penalty, throughput=100.0 / penalty)


class TestWorkloads:
    def test_mixed_workload_is_a_pure_function_of_its_arguments(self):
        graph = random_graph(60, 0.1, seed=3)
        coupling = synthetic_residual_matrix(epsilon=0.005)
        first = make_mixed_workload(graph, coupling, seed=5)
        second = make_mixed_workload(graph, coupling, seed=5)
        assert len(first.requests) == len(second.requests)
        for a, b in zip(first.requests, second.requests):
            assert a["op"] == b["op"]
            if a["op"] == "update":
                assert a["new_edges"] == b["new_edges"]
            else:
                np.testing.assert_array_equal(a["explicit"], b["explicit"])
                assert a["max_staleness"] == b["max_staleness"]

    def test_mixed_workload_updates_use_absent_edges(self):
        graph = random_graph(60, 0.1, seed=3)
        coupling = synthetic_residual_matrix(epsilon=0.005)
        workload = make_mixed_workload(graph, coupling, seed=5)
        adjacency = graph.adjacency
        for request in workload.requests:
            if request["op"] == "update":
                for u, v in request["new_edges"]:
                    assert adjacency[u, v] == 0

    def test_engine_workload_shape(self):
        graph = random_graph(60, 0.1, seed=3)
        coupling = synthetic_residual_matrix(epsilon=0.005)
        workload = make_engine_workload(graph, coupling, seed=5,
                                        batch_width=3)
        assert workload.kind == "engine"
        assert len(workload.explicits) == 3

    def test_workload_validation(self):
        graph = random_graph(10, 0.2, seed=1)
        coupling = synthetic_residual_matrix(epsilon=0.005)
        with pytest.raises(ValidationError, match="unknown workload kind"):
            Workload(kind="weird", graph=graph, coupling=coupling)
        with pytest.raises(ValidationError, match="needs requests"):
            Workload(kind="mixed", graph=graph, coupling=coupling)


class TestMeasureConfig:
    def test_metrics_come_off_the_registries(self, workload):
        metrics = measure_config(workload,
                                 service_config_space().default_config())
        updates = sum(1 for r in workload.requests if r["op"] == "update")
        assert metrics.requests == len(workload.requests)
        assert metrics.updates == updates
        assert metrics.queries == len(workload.requests) - updates
        assert metrics.sweeps > 0
        assert metrics.plan_builds >= 0
        assert metrics.cache_hits + metrics.cache_misses == metrics.queries
        assert metrics.p99_seconds >= metrics.p50_seconds > 0

    def test_cacheless_config_reports_zero_hit_rate(self, workload):
        config = dict(service_config_space().default_config(),
                      result_cache_size=0)
        metrics = measure_config(workload, config)
        assert metrics.cache_hits == 0
        assert metrics.cache_hit_rate == 0.0

    def test_engine_workload_counts_sweeps(self):
        graph = random_graph(60, 0.1, seed=3)
        coupling = synthetic_residual_matrix(epsilon=0.005)
        workload = make_engine_workload(graph, coupling, seed=5,
                                        batch_width=2, rounds=2,
                                        max_iterations=10)
        metrics = measure_config(workload,
                                 service_config_space().default_config())
        assert metrics.sweeps > 0
        assert metrics.requests == 2  # one per engine round
        assert metrics.updates == 0

    def test_restores_global_obs_state(self, workload):
        from repro.obs import obs_enabled, set_obs_enabled

        previous = obs_enabled()
        try:
            set_obs_enabled(False)
            measure_config(workload,
                           service_config_space().default_config())
            assert obs_enabled() is False
        finally:
            set_obs_enabled(previous)


class TestRunnerIsolation:
    def test_crashing_config_is_recorded_failed_and_sweep_completes(
            self, workload):
        calls = []

        def measure(workload, config):
            calls.append(config_id(config))
            if config["max_batch"] == 4:
                raise RuntimeError("engine exploded mid-run")
            return _deterministic_measure(workload, config)

        runner = AblationRunner(workload, measure=measure)
        baseline, runs = runner.run_ablation()
        assert baseline.ok
        failed = [r for _, _, r in runs if r.status == "failed"]
        assert len(failed) == 1
        assert "engine exploded mid-run" in failed[0].error
        assert failed[0].config["max_batch"] == 4
        # The sweep completed: every non-skipped neighbour was attempted.
        attempted = [r for _, _, r in runs if r.status != "skipped"]
        assert len(calls) == len(attempted) + 1  # + the baseline

    def test_hanging_config_times_out_and_sweep_continues(self, workload):
        def measure(workload, config):
            if config["max_batch"] == 4:
                time.sleep(30.0)
            return _deterministic_measure(workload, config)

        runner = AblationRunner(workload, measure=measure,
                                run_timeout_seconds=0.2)
        record = runner.run_config(
            dict(service_config_space().default_config(), max_batch=4))
        assert record.status == "timeout"
        assert "exceeded" in record.error
        # The runner is still serviceable after a timeout.
        assert runner.run_baseline().ok

    def test_gated_config_is_skipped_not_run(self, workload):
        def measure(workload, config):  # pragma: no cover - must not run
            raise AssertionError("measured a gated config")

        runner = AblationRunner(workload, measure=measure)
        config = dict(service_config_space().default_config(),
                      shards=4)  # 80-node graph: inadmissible
        record = runner.run_config(config)
        assert record.status == "skipped"
        assert "requires a graph of at least" in record.error

    def test_records_are_memoised_by_run_id(self, workload):
        calls = []

        def measure(workload, config):
            calls.append(1)
            return _deterministic_measure(workload, config)

        runner = AblationRunner(workload, measure=measure)
        config = service_config_space().default_config()
        first = runner.run_config(config)
        second = runner.run_config(dict(config))
        assert first is second
        assert len(calls) == 1

    def test_rejects_nonpositive_timeout(self, workload):
        with pytest.raises(ValidationError, match="run_timeout_seconds"):
            AblationRunner(workload, run_timeout_seconds=0)


class TestRunnerDeterminism:
    def test_identical_sweeps_produce_identical_records(self, workload):
        first = AblationRunner(workload, measure=_deterministic_measure)
        second = AblationRunner(workload, measure=_deterministic_measure)
        baseline1, runs1 = first.run_ablation()
        baseline2, runs2 = second.run_ablation()
        assert baseline1.run_id == baseline2.run_id
        assert [(p, v, r.run_id, r.status) for p, v, r in runs1] == \
               [(p, v, r.run_id, r.status) for p, v, r in runs2]
        assert [r.metrics.as_dict() for _, _, r in runs1 if r.ok] == \
               [r.metrics.as_dict() for _, _, r in runs2 if r.ok]

    def test_progress_callback_sees_every_record(self, workload):
        seen = []
        runner = AblationRunner(workload, measure=_deterministic_measure,
                                progress=seen.append)
        _, runs = runner.run_ablation()
        assert len(seen) == len(runs) + 1  # + the baseline
        statuses = {record.status for record in seen}
        assert statuses <= {"ok", "skipped"}


class TestRunMetricsRoundTrip:
    def test_as_dict_from_dict(self):
        metrics = _fake_metrics()
        assert RunMetrics.from_dict(metrics.as_dict()) == metrics
