"""The config-space model: parameters, gates, validation, stable IDs."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.tune import (
    MIN_NODES_PER_SHARD,
    QUERY_KEYS,
    SERVICE_KEYS,
    ConfigSpace,
    Parameter,
    TuneContext,
    config_id,
    service_config_space,
)


def _context(num_nodes=1000, cpu_count=1, capabilities=()):
    return TuneContext(num_nodes=num_nodes, num_edges=4 * num_nodes,
                       cpu_count=cpu_count,
                       capabilities=tuple(capabilities))


class TestParameter:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="unknown kind"):
            Parameter("x", "enum", (1,), 1)

    def test_rejects_default_outside_values(self):
        with pytest.raises(ValidationError, match="not.*among its values"):
            Parameter("x", "int", (1, 2), 3)

    def test_check_rejects_non_candidate_value(self):
        parameter = Parameter("x", "int", (1, 2), 1)
        reason = parameter.check(9, {"x": 9}, _context())
        assert "not a candidate value" in reason
        assert parameter.check(2, {"x": 2}, _context()) is None


class TestConfigSpace:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ValidationError, match="duplicate"):
            ConfigSpace([Parameter("x", "int", (1,), 1),
                         Parameter("x", "int", (2,), 2)])

    def test_default_config_is_total_and_valid(self):
        space = service_config_space()
        config = space.default_config()
        assert sorted(config) == sorted(space.names())
        assert space.validate(config, _context()) == []

    def test_unknown_and_missing_keys_are_defects(self):
        space = service_config_space()
        config = space.default_config()
        config.pop("shards")
        config["bogus"] = 1
        reasons = space.validate(config, _context())
        assert any("unknown parameter" in r and "bogus" in r
                   for r in reasons)
        assert any("missing parameter 'shards'" in r for r in reasons)

    def test_one_factor_keeps_inadmissible_changes_with_reasons(self):
        space = service_config_space()
        baseline = space.default_config()
        # Too small for any sharded variant: every shards>1 change must
        # still be *returned*, carrying the gate's reason.
        neighbours = space.one_factor_configs(
            baseline, _context(num_nodes=MIN_NODES_PER_SHARD))
        sharded = [(v, reason) for name, v, _, reason in neighbours
                   if name == "shards"]
        assert sharded and all(reason is not None for _, reason in sharded)
        for _, reason in sharded:
            assert "requires a graph of at least" in reason

    def test_one_factor_changes_exactly_one_knob(self):
        space = service_config_space()
        baseline = space.default_config()
        for name, value, config, _ in space.one_factor_configs(
                baseline, _context()):
            changed = {key for key in config
                       if config[key] != baseline[key]}
            assert changed == {name}
            assert config[name] == value


class TestGates:
    def test_shards_gate_scales_with_graph_size(self):
        space = service_config_space()
        baseline = space.default_config()
        big = _context(num_nodes=4 * MIN_NODES_PER_SHARD)
        neighbours = {(n, v): reason for n, v, _, reason in
                      space.one_factor_configs(baseline, big)}
        assert neighbours[("shards", 2)] is None
        assert neighbours[("shards", 4)] is None

    def test_shard_knobs_inert_at_one_shard_but_default_admissible(self):
        space = service_config_space()
        baseline = space.default_config()
        assert baseline["shards"] == 1
        # The default config itself is valid even though it carries
        # shard_method etc. — the knobs are inert, not invalid.
        assert space.validate(baseline, _context()) == []
        neighbours = {(n, v): reason for n, v, _, reason in
                      space.one_factor_configs(baseline, _context())}
        assert "only meaningful when shards > 1" in \
            neighbours[("shard_method", "hash")]

    def test_pool_executor_needs_capability_and_cores(self):
        space = service_config_space()
        sharded = dict(space.default_config(), shards=2)
        no_pool = _context(num_nodes=1000, cpu_count=4, capabilities=())
        reasons = space.validate(dict(sharded, shard_executor="pool"),
                                 no_pool)
        assert any("multiprocessing" in r for r in reasons)
        one_cpu = _context(num_nodes=1000, cpu_count=1,
                           capabilities=(("pool", True),))
        reasons = space.validate(dict(sharded, shard_executor="pool"),
                                 one_cpu)
        assert any(">= 2 CPUs" in r for r in reasons)
        capable = _context(num_nodes=1000, cpu_count=4,
                           capabilities=(("pool", True),))
        assert space.validate(dict(sharded, shard_executor="pool"),
                              capable) == []

    def test_float32_requires_strict_precision(self):
        space = service_config_space()
        config = dict(space.default_config(), dtype="float32",
                      precision="auto")
        reasons = space.validate(config, _context())
        assert any("auto precision" in r for r in reasons)
        config["precision"] = "strict"
        assert space.validate(config, _context()) == []


class TestConfigId:
    def test_stable_and_order_independent(self):
        config = service_config_space().default_config()
        shuffled = dict(reversed(list(config.items())))
        assert config_id(config) == config_id(shuffled)
        assert config_id(config).startswith("run-")

    def test_sensitive_to_every_key(self):
        space = service_config_space()
        baseline = space.default_config()
        seen = {config_id(baseline)}
        for _, _, config, _ in space.one_factor_configs(
                baseline, _context()):
            run_id = config_id(config)
            assert run_id not in seen, config
            seen.add(run_id)

    def test_rejects_non_scalar_values(self):
        with pytest.raises(ValidationError):
            config_id({"x": [1, 2]})


class TestContext:
    def test_detect_reads_graph_and_host(self):
        from repro.graphs import random_graph

        graph = random_graph(40, 0.1, seed=1)
        context = TuneContext.detect(graph)
        assert context.num_nodes == 40
        assert context.cpu_count >= 1
        # Capability probes answer definitively either way.
        assert isinstance(context.capability("pool"), bool)
        assert isinstance(context.capability("duckdb"), bool)

    def test_service_and_query_keys_cover_the_space(self):
        assert sorted(SERVICE_KEYS + QUERY_KEYS) == \
            sorted(service_config_space().names())
