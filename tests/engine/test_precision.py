"""The Lemma-8-certified mixed-precision layer: a cross-dtype differential suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.coupling import synthetic_residual_matrix
from repro.engine import (
    clear_plan_cache,
    get_plan,
    run_batch,
    run_batch_auto,
    run_sbp_batch,
    run_sbp_batch_auto,
)
from repro.engine import precision
from repro.exceptions import ValidationError
from repro.graphs import random_graph
from repro.beliefs import BeliefMatrix


@pytest.fixture(autouse=True)
def fresh_caches():
    # clear_plan_cache also clears the SBP plan cache (registered as an
    # auxiliary cache in repro.engine.sbp_plan).
    clear_plan_cache()
    yield
    clear_plan_cache()


def _workload(num_queries: int = 3, epsilon: float = 0.05):
    graph = random_graph(40, 0.12, seed=7)
    coupling = synthetic_residual_matrix(epsilon=epsilon)
    rng = np.random.default_rng(11)
    explicit_list = []
    for _ in range(num_queries):
        explicit = np.zeros((graph.num_nodes, 3))
        for node in rng.choice(graph.num_nodes, size=6, replace=False):
            values = rng.uniform(-0.1, 0.1, size=2)
            explicit[node] = [values[0], values[1], -values.sum()]
        explicit_list.append(explicit)
    return graph, coupling, explicit_list


class TestDtypePlans:
    def test_float64_dtype_is_the_same_cached_plan(self):
        graph, coupling, _ = _workload()
        assert get_plan(graph, coupling) is \
            get_plan(graph, coupling, dtype="float64")

    def test_float32_plan_coexists_and_is_distinct(self):
        graph, coupling, _ = _workload()
        plan64 = get_plan(graph, coupling)
        plan32 = get_plan(graph, coupling, dtype=np.float32)
        assert plan32 is not plan64
        assert plan32.dtype == np.float32
        assert plan32.adjacency.dtype == np.float32
        assert plan64.adjacency.dtype == np.float64

    def test_strict_float64_results_bit_identical_to_default_engine(self):
        graph, coupling, explicit_list = _workload()
        default = run_batch(get_plan(graph, coupling), explicit_list)
        strict = run_batch(get_plan(graph, coupling, dtype="float64"),
                           explicit_list)
        for a, b in zip(default, strict):
            assert np.array_equal(a.beliefs, b.beliefs)
            assert a.iterations == b.iterations

    def test_strict_float32_runs_in_float32_and_stays_close(self):
        graph, coupling, explicit_list = _workload()
        exact = run_batch(get_plan(graph, coupling), explicit_list)
        narrow = run_batch(get_plan(graph, coupling, dtype=np.float32),
                           explicit_list)
        for a, b in zip(exact, narrow):
            assert b.beliefs.dtype == np.float32
            assert np.abs(a.beliefs - b.beliefs).max() < 1e-5
            assert b.extra["dtype"] == "float32"


class TestLinBPCertificate:
    def test_loose_tolerance_certifies_float32(self):
        graph, coupling, explicit_list = _workload()
        plan = get_plan(graph, coupling)
        decision = precision.decide_linbp(
            plan, 1e-3, precision.explicit_scale(explicit_list))
        assert decision.certified and decision.dtype == "float32"
        assert decision.error_bound <= 1e-3
        assert decision.spectral_radius < 1.0

    def test_default_tolerance_refuses_float32(self):
        # Honesty check: u32 ~ 1.19e-7 alone exceeds 1e-10, so the
        # certificate must refuse - auto never hand-waves.
        graph, coupling, explicit_list = _workload()
        plan = get_plan(graph, coupling)
        decision = precision.decide_linbp(
            plan, 1e-10, precision.explicit_scale(explicit_list))
        assert not decision.certified and decision.dtype == "float64"
        assert "falling back" in decision.reason

    def test_divergent_radius_has_no_bound(self):
        graph, coupling, explicit_list = _workload(epsilon=2.0)
        plan = get_plan(graph, coupling)
        assert plan.update_spectral_radius() >= 1.0
        decision = precision.decide_linbp(plan, 1e-3)
        assert not decision.certified
        assert math.isinf(decision.error_bound)
        assert precision.linbp_float32_bound(plan) == math.inf

    def test_certified_run_honours_its_own_bound(self):
        """The empirical float32 deviation must sit inside the certificate."""
        graph, coupling, explicit_list = _workload()
        results, decision = run_batch_auto(graph, coupling, explicit_list,
                                           tolerance=1e-3)
        assert decision.certified
        exact = run_batch(get_plan(graph, coupling), explicit_list,
                          tolerance=1e-13)
        worst = max(float(np.abs(a.beliefs.astype(np.float64)
                                 - b.beliefs).max())
                    for a, b in zip(results, exact))
        assert worst <= decision.error_bound, (
            f"float32 deviated {worst:.3e} from the exact fixed point; "
            f"certificate promised {decision.error_bound:.3e}")

    def test_matched_iterations_rounding_within_pure_rounding_bound(self):
        """With identical sweep counts the only error source is rounding."""
        graph, coupling, explicit_list = _workload()
        plan64 = get_plan(graph, coupling)
        plan32 = get_plan(graph, coupling, dtype=np.float32)
        sweeps = 20
        exact = run_batch(plan64, explicit_list, num_iterations=sweeps)
        narrow = run_batch(plan32, explicit_list, num_iterations=sweeps)
        bound = precision.linbp_float32_bound(
            plan64, scale=precision.explicit_scale(explicit_list))
        worst = max(float(np.abs(a.beliefs
                                 - b.beliefs.astype(np.float64)).max())
                    for a, b in zip(exact, narrow))
        assert worst <= bound


class TestRunBatchAuto:
    def test_certified_batch_runs_float32_with_decision_extras(self):
        graph, coupling, explicit_list = _workload()
        results, decision = run_batch_auto(graph, coupling, explicit_list,
                                           tolerance=1e-3)
        assert decision.certified
        for result in results:
            assert result.beliefs.dtype == np.float32
            payload = result.extra["precision"]
            assert payload["dtype"] == "float32"
            assert payload["certified"] is True
            assert payload["error_bound"] == decision.error_bound

    def test_refused_batch_refines_in_float64_to_the_same_answer(self):
        graph, coupling, explicit_list = _workload()
        results, decision = run_batch_auto(graph, coupling, explicit_list,
                                           tolerance=1e-10)
        assert not decision.certified
        assert "presolve seeded" in decision.reason
        strict = run_batch(get_plan(graph, coupling), explicit_list,
                           tolerance=1e-10)
        for refined, exact in zip(results, strict):
            assert refined.beliefs.dtype == np.float64
            assert np.abs(refined.beliefs - exact.beliefs).max() < 1e-9
            # The presolve pays for itself: fewer float64 sweeps than a
            # cold-start exact run.
            assert refined.iterations <= exact.iterations

    def test_fixed_sweep_count_skips_the_presolve(self):
        graph, coupling, explicit_list = _workload()
        results, decision = run_batch_auto(graph, coupling, explicit_list,
                                           tolerance=1e-10, num_iterations=7)
        assert "presolve" not in decision.reason
        exact = run_batch(get_plan(graph, coupling), explicit_list,
                          num_iterations=7)
        for a, b in zip(results, exact):
            assert np.array_equal(a.beliefs, b.beliefs)

    def test_empty_batch_returns_empty_results(self):
        graph, coupling, _ = _workload()
        results, decision = run_batch_auto(graph, coupling, [])
        assert results == []
        assert decision.mode == "auto"

    def test_non_positive_tolerance_rejected(self):
        graph, coupling, explicit_list = _workload()
        with pytest.raises(ValidationError):
            run_batch_auto(graph, coupling, explicit_list, tolerance=0.0)


class TestSBP:
    def _sbp_workload(self):
        graph = random_graph(40, 0.12, seed=7)
        coupling = synthetic_residual_matrix(epsilon=0.05)
        beliefs = BeliefMatrix.from_labels(
            {0: 0, 7: 1, 19: 2}, num_nodes=graph.num_nodes, num_classes=3,
            magnitude=0.1)
        return graph, coupling, [beliefs.residuals]

    def test_certified_sweep_honours_the_single_pass_budget(self):
        graph, coupling, explicit_list = self._sbp_workload()
        decision = precision.decide_sbp(graph, coupling, explicit_list, 1e-3)
        assert decision.certified
        exact = run_sbp_batch(graph, coupling, explicit_list)
        narrow = run_sbp_batch(graph, coupling, explicit_list,
                               dtype=np.float32)
        worst = max(float(np.abs(a.beliefs
                                 - b.beliefs.astype(np.float64)).max())
                    for a, b in zip(exact, narrow))
        assert worst <= decision.error_bound

    def test_auto_attaches_decision_and_picks_float32(self):
        graph, coupling, explicit_list = self._sbp_workload()
        results, decision = run_sbp_batch_auto(graph, coupling, explicit_list,
                                               tolerance=1e-3)
        assert decision.certified
        for result in results:
            assert result.beliefs.dtype == np.float32
            assert result.extra["precision"]["certified"] is True

    def test_default_tolerance_falls_back_to_float64(self):
        graph, coupling, explicit_list = self._sbp_workload()
        results, decision = run_sbp_batch_auto(graph, coupling, explicit_list)
        assert not decision.certified
        assert results[0].beliefs.dtype == np.float64


class TestModeValidation:
    def test_unknown_mode_rejected_listing_choices(self):
        with pytest.raises(ValidationError) as excinfo:
            precision.validate_precision("fast")
        assert "strict" in str(excinfo.value)
        assert "auto" in str(excinfo.value)

    def test_strict_decision_never_certifies(self):
        decision = precision.strict_decision(np.float32, 1e-10)
        assert decision.mode == "strict"
        assert decision.dtype == "float32"
        assert not decision.certified
        payload = decision.as_extra()
        assert payload["mode"] == "strict" and payload["dtype"] == "float32"
