"""Unit tests for the propagation-plan cache (repro.engine.plan)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.coupling import fraud_matrix, homophily_matrix
from repro.engine import (
    PropagationPlan,
    clear_plan_cache,
    get_binary_solver,
    get_plan,
    plan_cache_info,
)
from repro.graphs import chain_graph, random_graph, torus_graph
from repro.graphs import linalg


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_plan_cache()
    yield
    clear_plan_cache()


class TestPlanArtifacts:
    def test_plan_precomputes_canonical_artifacts(self):
        graph = torus_graph()
        coupling = fraud_matrix(epsilon=0.1)
        plan = PropagationPlan(graph, coupling)
        assert plan.adjacency.dtype == np.float64
        assert plan.adjacency.has_canonical_format
        assert np.allclose(plan.degrees, graph.degree_vector())
        assert np.allclose(plan.residual, coupling.residual)
        assert np.allclose(plan.residual_squared,
                           coupling.residual @ coupling.residual)
        assert plan.num_nodes == graph.num_nodes
        assert plan.num_classes == coupling.num_classes
        assert plan.method_name == "LinBP"

    def test_star_plan_has_no_degrees(self):
        plan = PropagationPlan(torus_graph(), fraud_matrix(epsilon=0.1),
                               echo_cancellation=False)
        assert plan.degrees is None
        assert plan.method_name == "LinBP*"

    def test_lemma8_radius_matches_direct_computation(self):
        graph = torus_graph()
        coupling = fraud_matrix(epsilon=0.1)
        plan = get_plan(graph, coupling)
        direct = linalg.kron_spectral_radius(coupling.residual, graph.adjacency,
                                             degree=graph.degree_matrix())
        assert plan.update_spectral_radius() == pytest.approx(direct)
        assert plan.is_exactly_convergent() == (direct < 1.0)

    def test_star_radius_is_product_of_radii(self):
        graph = torus_graph()
        coupling = fraud_matrix(epsilon=0.1)
        plan = get_plan(graph, coupling, echo_cancellation=False)
        expected = coupling.spectral_radius() * graph.spectral_radius()
        assert plan.update_spectral_radius() == pytest.approx(expected)


class TestPlanCache:
    def test_same_configuration_returns_same_plan(self):
        graph = torus_graph()
        coupling = fraud_matrix(epsilon=0.1)
        assert get_plan(graph, coupling) is get_plan(graph, coupling)
        info = plan_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1

    def test_equal_coupling_values_share_a_plan(self):
        graph = torus_graph()
        first = get_plan(graph, fraud_matrix(epsilon=0.1))
        second = get_plan(graph, fraud_matrix(epsilon=0.1))
        assert first is second

    def test_scaling_epsilon_invalidates_the_cached_plan(self):
        graph = torus_graph()
        coupling = fraud_matrix(epsilon=0.1)
        stale = get_plan(graph, coupling)
        rescaled = coupling.scaled(0.05)
        fresh = get_plan(graph, rescaled)
        assert fresh is not stale
        assert np.allclose(fresh.residual, rescaled.residual)
        assert np.allclose(fresh.residual_squared,
                           rescaled.residual @ rescaled.residual)
        # The original scale still resolves to its own (cached) plan.
        assert get_plan(graph, coupling) is stale

    def test_echo_flag_is_part_of_the_key(self):
        graph = torus_graph()
        coupling = fraud_matrix(epsilon=0.1)
        assert get_plan(graph, coupling, echo_cancellation=True) is not \
            get_plan(graph, coupling, echo_cancellation=False)

    def test_different_graphs_do_not_share_plans(self):
        coupling = homophily_matrix(epsilon=0.1)
        plan_a = get_plan(chain_graph(5), coupling)
        plan_b = get_plan(chain_graph(5), coupling)
        assert plan_a is not plan_b  # identity keying, not value keying

    def test_plan_is_evicted_when_its_graph_dies(self):
        import gc
        coupling = homophily_matrix(epsilon=0.1)
        graph = chain_graph(5)
        plan = get_plan(graph, coupling)
        assert plan_cache_info()["size"] == 1
        assert plan.graph is graph
        del graph
        gc.collect()
        # The cache holds no strong reference to the graph wrapper: the
        # entry disappears and the plan's weak graph handle goes dark,
        # while the plan's own artifacts stay usable.
        assert plan_cache_info()["size"] == 0
        assert plan.graph is None
        assert plan.adjacency.shape == (5, 5)

    def test_cache_is_bounded(self):
        from repro.engine import plan as plan_module
        coupling = homophily_matrix(epsilon=0.1)
        graphs = [chain_graph(4) for _ in range(plan_module.PLAN_CACHE_SIZE + 5)]
        for graph in graphs:
            get_plan(graph, coupling)
        assert plan_cache_info()["size"] <= plan_module.PLAN_CACHE_SIZE

    def test_clear_plan_cache_resets_stats(self):
        get_plan(torus_graph(), fraud_matrix(epsilon=0.1))
        clear_plan_cache()
        info = plan_cache_info()
        assert info == {"size": 0, "binary_size": 0, "hits": 0, "misses": 0,
                        "sbp_size": 0, "sbp_hits": 0, "sbp_misses": 0,
                        "shard_size": 0, "shard_hits": 0, "shard_misses": 0}


class TestBinarySolverCache:
    def test_solver_is_cached_per_graph_and_h(self):
        graph = random_graph(30, 0.15, seed=3)
        first = get_binary_solver(graph, 0.01)
        assert get_binary_solver(graph, 0.01) is first
        assert get_binary_solver(graph, 0.02) is not first
        assert get_binary_solver(graph, 0.01, variant="exact") is not first

    def test_solver_solves_the_binary_system(self):
        graph = chain_graph(6)
        h = 0.05
        solve = get_binary_solver(graph, h)
        rhs = np.arange(6, dtype=float)
        solution = solve(rhs)
        adjacency = graph.adjacency.toarray()
        degrees = np.diag(graph.degree_vector())
        system = np.eye(6) - 2 * h * adjacency + 4 * h * h * degrees
        assert np.allclose(system @ solution, rhs, atol=1e-12)

    def test_multi_rhs_solve(self):
        graph = chain_graph(6)
        solve = get_binary_solver(graph, 0.05)
        stacked = np.column_stack([np.arange(6.0), np.ones(6)])
        combined = solve(stacked)
        assert combined.shape == (6, 2)
        assert np.allclose(combined[:, 0], solve(stacked[:, 0]), atol=1e-14)
